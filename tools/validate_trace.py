#!/usr/bin/env python
"""Validate the observability artifacts the CLI writes.

Three kinds of document, selected with ``--kind`` (default ``auto``,
which sniffs the file):

* ``trace`` — Chrome trace-event JSON from ``repro trace``:
  structural validation (the checks Chrome/Perfetto actually need to
  load the file) plus trace-specific sanity — every simulator interval
  lies inside the recorded total-cycle span and each core's tracks
  carry name metadata.  Harness-span tracks (pid ≥
  ``SPAN_PID_BASE``) are exempt from the total-cycles containment
  check: their timestamps are wall-clock microseconds, not cycles.
* ``spans`` — a ``--emit-spans`` document: schema, unique ids,
  parents seen before children, non-negative times, same-origin
  ordering (:func:`repro.observability.validate_span_rows`).
* ``heartbeat-log`` — a ``--heartbeat-log`` JSONL history (or a queue
  ``workers/*.jsonl`` file): one JSON object per line, numeric
  non-decreasing timestamps, ``done`` never exceeding ``total``.

Run from the repo root::

    PYTHONPATH=src python tools/validate_trace.py trace.json
    PYTHONPATH=src python tools/validate_trace.py --kind spans spans.json
    PYTHONPATH=src python tools/validate_trace.py hb.jsonl

Exit status 0 when the document is valid, 1 with one problem per line
on stderr otherwise — made for CI smoke jobs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.observability import (  # noqa: E402
    SPAN_PID_BASE,
    validate_span_rows,
    validate_trace_events,
)


def extra_checks(doc: dict) -> list[str]:
    """Checks beyond the trace-event format that hold for our exporter."""
    problems: list[str] = []
    events = doc.get("traceEvents", [])
    total = doc.get("otherData", {}).get("total_cycles")
    named_pids = {
        e.get("pid") for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    for i, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        if event.get("pid") not in named_pids:
            problems.append(
                f"traceEvents[{i}]: interval on unnamed pid "
                f"{event.get('pid')!r}"
            )
        if isinstance(event.get("pid"), int) and event["pid"] >= SPAN_PID_BASE:
            # harness-span lanes: wall-clock microseconds, unrelated to
            # the simulated-cycle axis below
            continue
        if total is not None and event["ts"] + event["dur"] > total:
            problems.append(
                f"traceEvents[{i}]: interval ends at "
                f"{event['ts'] + event['dur']} past total_cycles {total}"
            )
    return problems


def validate_heartbeat_lines(lines: list[str]) -> list[str]:
    """Problems in a heartbeat JSONL history (``--heartbeat-log`` or a
    queue's ``workers/<id>.jsonl``)."""
    problems: list[str] = []
    last_ts: float | None = None
    n_docs = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i + 1}: not JSON ({exc})")
            continue
        if not isinstance(doc, dict):
            problems.append(f"line {i + 1}: not a JSON object")
            continue
        n_docs += 1
        ts = doc.get("timestamp")
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            problems.append(
                f"line {i + 1}: timestamp {ts!r} is not a number"
            )
        else:
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"line {i + 1}: timestamp {ts} goes backwards "
                    f"(previous {last_ts})"
                )
            last_ts = ts
        done, total = doc.get("done"), doc.get("total")
        if (
            isinstance(done, int) and isinstance(total, int)
            and done > total
        ):
            problems.append(
                f"line {i + 1}: done {done} exceeds total {total}"
            )
    if n_docs == 0:
        problems.append("no heartbeat documents in file")
    return problems


def _sniff_kind(path: str, text: str) -> str:
    if path.endswith(".jsonl"):
        return "heartbeat-log"
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # many JSON objects on separate lines parse as JSONL only
        return "heartbeat-log"
    if isinstance(doc, dict) and "spans" in doc and "traceEvents" not in doc:
        return "spans"
    return "trace"


def _validate_one(path: str, forced_kind: str) -> int:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    kind = forced_kind if forced_kind != "auto" else _sniff_kind(path, text)

    if kind == "heartbeat-log":
        problems = validate_heartbeat_lines(text.splitlines())
        summary = f"{len(text.splitlines())} heartbeat lines"
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if kind == "spans":
            rows = doc.get("spans") if isinstance(doc, dict) else None
            if not isinstance(rows, list):
                problems = ["document has no 'spans' list"]
                rows = []
            else:
                problems = validate_span_rows(rows)
            summary = f"{len(rows)} spans"
        else:
            problems = validate_trace_events(doc) + extra_checks(doc)
            events = doc.get("traceEvents", [])
            n_intervals = sum(1 for e in events if e.get("ph") == "X")
            summary = f"{len(events)} events, {n_intervals} intervals"

    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {len(problems)} problem(s) in {path}",
              file=sys.stderr)
        return 1

    print(f"{path}: valid {kind} ({summary})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+", metavar="path",
        help="artifact file(s) to validate",
    )
    parser.add_argument(
        "--kind", choices=("auto", "trace", "spans", "heartbeat-log"),
        default="auto",
        help="artifact type (default: sniff from extension/contents)",
    )
    args = parser.parse_args(argv)
    return max(_validate_one(path, args.kind) for path in args.paths)


if __name__ == "__main__":
    sys.exit(main())
