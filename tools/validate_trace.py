#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file written by ``repro trace``.

Structural validation (the checks Chrome/Perfetto actually need to load
the file) plus trace-specific sanity: every interval lies inside the
recorded total-cycle span and each core's tracks carry name metadata.
Run from the repo root::

    PYTHONPATH=src python tools/validate_trace.py trace.json

Exit status 0 when the document is valid, 1 with one problem per line
on stderr otherwise — made for CI smoke jobs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.observability import validate_trace_events  # noqa: E402


def extra_checks(doc: dict) -> list[str]:
    """Checks beyond the trace-event format that hold for our exporter."""
    problems: list[str] = []
    events = doc.get("traceEvents", [])
    total = doc.get("otherData", {}).get("total_cycles")
    named_pids = {
        e.get("pid") for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    for i, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        if event.get("pid") not in named_pids:
            problems.append(
                f"traceEvents[{i}]: interval on unnamed pid "
                f"{event.get('pid')!r}"
            )
        if total is not None and event["ts"] + event["dur"] > total:
            problems.append(
                f"traceEvents[{i}]: interval ends at "
                f"{event['ts'] + event['dur']} past total_cycles {total}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace-event JSON file to validate")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    problems = validate_trace_events(doc) + extra_checks(doc)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {len(problems)} problem(s) in {args.path}",
              file=sys.stderr)
        return 1

    events = doc["traceEvents"]
    n_intervals = sum(1 for e in events if e.get("ph") == "X")
    print(f"{args.path}: valid ({len(events)} events, "
          f"{n_intervals} intervals)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
