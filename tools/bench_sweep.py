#!/usr/bin/env python
"""Measure sweep wall-clock (serial + parallel) and write BENCH_sweep.json.

Thin wrapper over :mod:`repro.experiments.bench`; run from the repo
root::

    PYTHONPATH=src python tools/bench_sweep.py --jobs-list 1,2,4

The default jobs list is ``1,<cpu_count>``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.experiments.bench import (  # noqa: E402
    DEFAULT_MAX_CYCLES,
    DEFAULT_SCALE,
    DEFAULT_THREADS,
    render_bench,
    run_bench,
    write_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated full names (default: suite)")
    parser.add_argument("-n", "--threads",
                        default=",".join(str(n) for n in DEFAULT_THREADS),
                        help="comma-separated thread counts")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--jobs-list", default=None,
                        help="comma-separated --jobs levels to time "
                             "(default: 1,<cpu_count>)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per configuration (best-of)")
    parser.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES)
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path (default: BENCH_sweep.json)")
    parser.add_argument("--profile", action="store_true",
                        help="profile one serial cell with the "
                             "deterministic profiler (adds a `profile` "
                             "section and a collapsed-stack file)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="collapsed-stack output path (default "
                             "profile_collapsed.txt; implies --profile)")
    parser.add_argument("--max-observability-overhead", type=float,
                        default=None, metavar="PCT",
                        help="fail (exit 1) when enabled-instrumentation "
                             "overhead exceeds this percentage")
    parser.add_argument("--max-checkpoint-overhead", type=float,
                        default=None, metavar="PCT",
                        help="fail (exit 1) when periodic-checkpointing "
                             "overhead exceeds this percentage")
    parser.add_argument("--min-warm-speedup", action="append", default=[],
                        metavar="JOBS:FACTOR",
                        help="fail (exit 1) when the --jobs JOBS sweep "
                             "speedup vs serial is below FACTOR; skipped "
                             "with a note when the host has fewer than "
                             "JOBS CPUs (repeatable)")
    parser.add_argument("--min-vec-speedup", type=float, default=None,
                        metavar="FACTOR",
                        help="fail (exit 1) when the vectorized engine's "
                             "single-cell speedup over the reference "
                             "engine is below FACTOR; skipped with a "
                             "note when numpy is not installed")
    args = parser.parse_args(argv)
    warm_gates = []
    for raw in args.min_warm_speedup:
        try:
            jobs_s, factor_s = raw.split(":", 1)
            warm_gates.append((int(jobs_s), float(factor_s)))
        except ValueError:
            parser.error(
                f"--min-warm-speedup expects JOBS:FACTOR, got {raw!r}"
            )

    if args.jobs_list:
        jobs_list = tuple(int(j) for j in args.jobs_list.split(","))
    else:
        jobs_list = (1, os.cpu_count() or 1)
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    profile = args.profile or args.profile_out is not None
    doc = run_bench(
        benchmarks=benchmarks,
        thread_counts=tuple(int(n) for n in args.threads.split(",")),
        scale=args.scale,
        jobs_list=jobs_list,
        repeats=args.repeats,
        max_cycles=args.max_cycles,
        profile=profile,
    )
    if profile:
        collapsed = doc["profile"].pop("collapsed")
        profile_out = args.profile_out or "profile_collapsed.txt"
        with open(profile_out, "w") as handle:
            handle.write("\n".join(collapsed) + "\n")
    write_bench(doc, args.out)
    print(render_bench(doc))
    if profile:
        print(f"collapsed stacks written to {profile_out}")
    print(f"written to {args.out}")
    if args.max_observability_overhead is not None:
        overhead = doc["observability"]["overhead_pct"]
        if overhead > args.max_observability_overhead:
            print(
                f"FAIL: instrumentation overhead {overhead:.1f}% exceeds "
                f"the {args.max_observability_overhead:.1f}% budget",
                file=sys.stderr,
            )
            return 1
    if args.max_checkpoint_overhead is not None:
        overhead = doc["checkpoint"]["overhead_pct"]
        if overhead > args.max_checkpoint_overhead:
            print(
                f"FAIL: checkpoint overhead {overhead:.1f}% exceeds "
                f"the {args.max_checkpoint_overhead:.1f}% budget",
                file=sys.stderr,
            )
            return 1
    cpu_count = os.cpu_count() or 1
    speedups = {
        run["jobs"]: run["speedup_vs_serial"] for run in doc["sweep"]
    }
    for jobs, factor in warm_gates:
        if cpu_count < jobs:
            # a host without the cores cannot show the speedup; this is
            # "can't tell", not "failed" — note it and move on
            print(
                f"note: skipping --min-warm-speedup {jobs}:{factor:g} "
                f"(host has {cpu_count} CPU(s), needs >= {jobs})"
            )
            continue
        speedup = speedups.get(jobs)
        if speedup is None:
            print(
                f"FAIL: --min-warm-speedup {jobs}:{factor:g} but "
                f"--jobs {jobs} was not in the jobs list",
                file=sys.stderr,
            )
            return 1
        if speedup < factor:
            print(
                f"FAIL: --jobs {jobs} speedup {speedup:.2f}x vs serial "
                f"is below the {factor:g}x gate",
                file=sys.stderr,
            )
            return 1
    if args.min_vec_speedup is not None:
        vec = doc["engine_vec"]
        if not vec["gate"]["enforced"]:
            # same can't-tell/failed split as the warm gate: a host
            # without numpy cannot run the vectorized engine at all
            print(
                f"note: skipping --min-vec-speedup "
                f"{args.min_vec_speedup:g} ({vec['gate']['note']})"
            )
        elif vec["speedup"] < args.min_vec_speedup:
            print(
                f"FAIL: vectorized engine speedup {vec['speedup']:.2f}x "
                f"on {vec['cell']} is below the "
                f"{args.min_vec_speedup:g}x gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
