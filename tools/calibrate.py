"""Calibration harness: compare the suite against its Figure 6 targets.

Run:  python tools/calibrate.py [name ...]

For every benchmark (or just the named ones) this runs the reference
and the 16-thread accounted simulation, then prints target vs achieved
speedup, the estimation error, and expected vs achieved top components.
Used during development to tune the suite's knobs; the shipped
regression bench is benchmarks/test_fig6_classification.py.
"""

from __future__ import annotations

import sys
import time

from repro.config import MachineConfig
from repro.core.components import TREE_LABELS
from repro.experiments.runner import run_experiment
from repro.workloads.spec import build_program
from repro.workloads.suite import SUITE

SIGNIFICANCE = 0.35  # speedup units below which a component is noise


def top_components(stack, k=3):
    ranked = stack.ranked_delimiters(SIGNIFICANCE)
    out = []
    for comp, _ in ranked[:k]:
        label = TREE_LABELS.get(comp)
        if label and label != "imbalance":
            out.append(label)
    return tuple(out)


def main(names: list[str]) -> None:
    machine = MachineConfig(n_cores=16)
    total_err = 0.0
    n_run = 0
    for spec in SUITE:
        if names and spec.full_name not in names:
            continue
        t0 = time.time()
        result = run_experiment(
            spec.full_name, machine,
            build_program(spec, 16), build_program(spec, 1),
        )
        stack = result.stack
        achieved = top_components(stack)
        err = stack.estimation_error * 100
        total_err += abs(err)
        n_run += 1
        delim = {
            TREE_LABELS[c]: round(v, 2)
            for c, v in stack.delimiters().items()
            if abs(v) > 0.2
        }
        ok_s = "OK " if abs(stack.actual_speedup - spec.target_speedup_16) < 0.8 else "TUNE"
        ok_c = "OK " if achieved[:len(spec.expected_top)] == spec.expected_top or achieved == spec.expected_top else "COMP"
        print(
            f"{spec.full_name:22s} S={stack.actual_speedup:5.2f} "
            f"(tgt {spec.target_speedup_16:5.2f}) {ok_s} "
            f"err={err:+5.1f}% top={achieved} exp={spec.expected_top} {ok_c} "
            f"pos={stack.positive_llc:.2f} {delim} [{time.time()-t0:.0f}s]"
        )
    if n_run:
        print(f"\nmean |err| = {total_err / n_run:.2f}%  over {n_run} benchmarks")


if __name__ == "__main__":
    main(sys.argv[1:])
