"""Identifying scaling bottlenecks (the paper's Section 7.1 use case).

blackscholes, facesim and cholesky have very different scaling
behaviour — and facesim and cholesky have *similar speedups for
different reasons*, which the speedup curves of Figure 1 cannot show
but the speedup stacks of Figure 5 can.  This example reproduces that
comparison at 2-16 threads.

    python examples/identify_bottlenecks.py
"""

from repro import (
    ExperimentCache,
    FIG5_BENCHMARKS,
    render_speedup_curve,
    render_stack_series,
    speedup_curves,
    stack_series,
)


def main() -> None:
    cache = ExperimentCache()

    print("=== speedup curves (Figure 1) ===")
    curves = speedup_curves(cache)
    print(render_speedup_curve(curves))
    print()
    print("facesim and cholesky reach almost the same 16-thread speedup, "
          "but WHY they stop scaling is invisible here.")
    print()

    print("=== speedup stacks (Figure 5) ===")
    for name in FIG5_BENCHMARKS:
        stacks = stack_series(cache, name)
        print(render_stack_series(stacks, title=f"--- {name} ---"))
        print()

    print("reading the stacks:")
    facesim = stack_series(cache, "facesim_medium")[-1]
    cholesky = stack_series(cache, "cholesky")[-1]
    print(f"  facesim's largest delimiter:  "
          f"{facesim.ranked_delimiters()[0][0].label}")
    print(f"  cholesky's largest delimiter: "
          f"{cholesky.ranked_delimiters()[0][0].label}")
    print("  -> same speedup, different bottleneck: facesim needs less "
          "blocking (finer-grained work), cholesky needs less lock "
          "contention (shorter critical sections).")


if __name__ == "__main__":
    main()
