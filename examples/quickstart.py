"""Quickstart: compute one speedup stack.

Runs the ``facesim_medium`` benchmark single-threaded (the reference)
and 16-threaded with the cycle-accounting hardware attached, then
prints the speedup stack — the paper's Figure 2, for real data.

    python examples/quickstart.py [benchmark] [n_threads]
"""

import sys

from repro import (
    MachineConfig,
    build_program,
    by_name,
    render_stack,
    run_experiment,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "facesim_medium"
    n_threads = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    spec = by_name(benchmark)
    machine = MachineConfig(n_cores=n_threads)

    print(f"running {spec.full_name} with {n_threads} threads "
          f"on a {n_threads}-core CMP ...")
    result = run_experiment(
        spec.full_name,
        machine,
        build_program(spec, n_threads),
        build_program(spec, 1),
    )

    print()
    print(render_stack(result.stack))
    print()
    ranked = result.stack.ranked_delimiters(significance=0.2)
    if ranked:
        top, value = ranked[0]
        print(f"largest scaling bottleneck: {top.label} "
              f"({value:.2f} speedup units — removing it entirely would "
              f"raise speedup by about that much)")
    else:
        print("no significant scaling bottleneck: the benchmark scales "
              "almost perfectly.")
    overhead = result.parallelization_overhead
    if overhead is not None:
        print(f"parallelization overhead (extra instructions vs 1-thread "
              f"run): {overhead * 100:.1f}%")


if __name__ == "__main__":
    main()
