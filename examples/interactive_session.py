"""Interactive perturb -> measure loop on one simulated run.

The batch path answers "what is the speedup stack of this cell?"; a
Session answers the follow-up diagnostic questions: what does the stack
look like *so far*, what happens to it if the LLC goes cold or memory
latency doubles mid-run, and does the bottleneck ranking survive the
perturbation?  Run with::

    PYTHONPATH=src python examples/interactive_session.py
"""

from repro import Session
from repro.core.rendering import render_stack

BENCH = "cholesky"
N_THREADS = 4
SCALE = 0.2
BUDGET = 50_000_000


def main() -> None:
    # -- 1. step a clean run and watch the partial stack form ----------
    session = Session.from_config(
        BENCH, N_THREADS, scale=SCALE, max_cycles=BUDGET,
    )
    session.step(5_000)
    print(session)
    print()
    print(session.render_stack())
    print()

    # -- 2. snapshot here so the perturbed run can be replayed ---------
    midpoint = session.snapshot()

    clean = session.run().stack()
    print("clean run:")
    print(render_stack(clean))
    print()

    # -- 3. same run, but the LLC goes cold at the midpoint ------------
    perturbed = Session.from_config(
        BENCH, N_THREADS, scale=SCALE, max_cycles=BUDGET,
    ).load(midpoint)
    perturbed.inject("llc_flush")
    perturbed.inject("mem_spike", factor=2.0)
    shocked = perturbed.run().stack()
    print(f"after llc_flush + mem_spike at cycle "
          f"{perturbed.perturbations[0].split('@')[1]}:")
    print(render_stack(shocked))
    print()

    # -- 4. compare: which components absorbed the shock? --------------
    print(f"{'component':<22s}{'clean':>12s}{'shocked':>12s}{'delta':>10s}")
    shocked_segments = shocked.segments()
    for component, before in clean.segments().items():
        after = shocked_segments[component]
        print(f"{component.value:<22s}{before:>12.3f}{after:>12.3f}"
              f"{after - before:>+10.3f}")
    print()
    print(f"clean   Tp = {clean.tp_cycles:,} cycles "
          f"(actual speedup {clean.actual_speedup:.2f})")
    print(f"shocked Tp = {shocked.tp_cycles:,} cycles "
          "(no reference: perturbed runs are estimate-only)")


if __name__ == "__main__":
    main()
