"""Analyze your own workload with speedup stacks.

The library is not limited to the built-in suite: any multi-threaded
program expressed in the op IR (compute / load / store / lock /
barrier) can be run through the accounting hardware.  This example
writes a small work-queue application by hand — workers pull tasks
from a queue guarded by one mutex, process them over a private buffer,
and publish results to a shared table — and asks the speedup stack
where the time went.

    python examples/custom_workload.py [n_threads]
"""

import sys

from repro import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    MachineConfig,
    Program,
    Store,
    render_stack,
    run_experiment,
)

QUEUE_LOCK = 0
TOTAL_TASKS = 240
TASK_WORK_INSTRS = 8000
QUEUE_POP_INSTRS = 150

PRIVATE_BASE = 0x2000_0000
PRIVATE_STRIDE = 0x100_0000
RESULT_TABLE = 0x6000_0000


def worker(tid: int, n_threads: int):
    """One worker thread: pop task -> compute -> publish.

    The total number of tasks is fixed (strong scaling), so the
    single-threaded run executes the same work as all workers together.
    """
    buffer = PRIVATE_BASE + tid * PRIVATE_STRIDE + tid * 13 * 4096
    tasks = TOTAL_TASKS // n_threads
    for task in range(tasks):
        # Pop a task from the shared queue (serialized on the mutex).
        yield LockAcquire(QUEUE_LOCK)
        yield Compute(QUEUE_POP_INSTRS)
        yield Store(RESULT_TABLE + ((tid * tasks + task) % 64) * 64)
        yield LockRelease(QUEUE_LOCK)
        # Process it over the private buffer.
        for step in range(TASK_WORK_INSTRS // 200):
            yield Compute(200)
            yield Load(buffer + ((task * 7 + step) % 512) * 64)
    yield BarrierWait(0)


def build(n_threads: int) -> Program:
    return Program(
        "work-queue",
        [worker(tid, n_threads) for tid in range(n_threads)],
        lock_fifo_handoff=True,
    )


def main() -> None:
    n_threads = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    machine = MachineConfig(n_cores=n_threads)
    result = run_experiment(
        "work-queue", machine, build(n_threads), build(1)
    )
    print(render_stack(result.stack))
    print()
    stack = result.stack
    serial_cost = stack.yielding + stack.spinning
    print(f"synchronization (spin + yield) costs {serial_cost:.2f} of "
          f"{n_threads} possible speedup units: the queue mutex is the "
          f"bottleneck — shard the queue or batch the pops.")


if __name__ == "__main__":
    main()
