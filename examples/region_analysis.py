"""Drill into one benchmark with the full toolbox.

The whole-program speedup stack answers *what* limits scaling; this
example shows the follow-up workflow on a barrier-phased benchmark:

1. the whole-program stack and automated optimization advice;
2. per-region stacks (the paper's Section 4.6 refinement) that expose
   the barrier imbalance the whole-program stack folds into yielding;
3. the scheduling timeline, where the phase structure and the idle
   tails before each barrier are directly visible;
4. per-core CPI stacks — the complementary single-core view.

    python examples/region_analysis.py [benchmark] [n_threads]
"""

import sys

from repro import (
    MachineConfig,
    Simulation,
    TraceRecorder,
    advice,
    build_program,
    by_name,
    cpi_stacks,
    render_cpi_stacks,
    render_stack,
    render_stack_series,
    run_experiment,
    run_region_experiment,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "lud"
    n_threads = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    spec = by_name(benchmark)
    machine = MachineConfig(n_cores=n_threads)

    print(f"=== 1. whole-program stack: {spec.full_name} ===")
    result = run_experiment(
        spec.full_name, machine,
        build_program(spec, n_threads), build_program(spec, 1),
    )
    print(render_stack(result.stack))
    print()
    print(advice(result.stack))
    print()

    print("=== 2. per-region stacks (between consecutive barriers) ===")
    regions = run_region_experiment(
        machine, build_program(spec, n_threads), name=spec.full_name
    )
    shown = regions.stacks[: min(6, len(regions.stacks))]
    if shown:
        print(render_stack_series(shown))
        worst = max(shown, key=lambda s: s.imbalance)
        print()
        print(f"worst barrier: {worst.name} loses {worst.imbalance:.2f} "
              "speedup units to arrival imbalance — that is the paper's "
              "'imbalance before each barrier quantifies barrier overhead'.")
    else:
        print("(no barriers in this benchmark)")
    print()

    print("=== 3. scheduling timeline ===")
    trace = TraceRecorder()
    Simulation(machine, build_program(spec, n_threads), trace=trace).run()
    print(trace.render_timeline(n_threads, width=72))
    print()

    print("=== 4. per-core CPI stacks ===")
    print(render_cpi_stacks(cpi_stacks(regions.sim_result)))


if __name__ == "__main__":
    main()
