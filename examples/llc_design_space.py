"""Hardware design-space exploration with speedup stacks (Section 7.3).

Should the next chip spend area on a bigger LLC?  The speedup stack
answers quantitatively: sweep the LLC from 2MB to 16MB and watch the
negative interference component shrink while positive interference
stays constant — for cholesky the *net* effect of cache sharing flips
from harmful to beneficial (the paper's Figure 9).

    python examples/llc_design_space.py [benchmark]
"""

import sys

from repro import (
    ExperimentCache,
    render_interference,
    llc_size_sweep,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "cholesky"
    cache = ExperimentCache()
    print(f"sweeping LLC size for {benchmark} at 16 threads ...")
    points = llc_size_sweep(cache, benchmark)
    print()
    print(render_interference([p.interference for p in points]))
    print()
    first, last = points[0].interference, points[-1].interference
    print(f"negative interference: {first.negative:.2f} -> "
          f"{last.negative:.2f} speedup units as the LLC grows "
          f"(fewer capacity misses)")
    print(f"positive interference: {first.positive:.2f} -> "
          f"{last.positive:.2f} (a program property, roughly constant)")
    if last.net < 0:
        print("net interference turned NEGATIVE: with the largest LLC, "
              "sharing the cache is a net performance win.")


if __name__ == "__main__":
    main()
