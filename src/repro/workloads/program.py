"""Threaded-program intermediate representation.

A *program* is a set of per-thread instruction streams.  Streams are
Python generators yielding lightweight micro-ops; the simulator executes
them one at a time.  This plays the role the Alpha binaries play in the
paper's gem5 setup: the simulator only ever sees dynamic instructions
(compute slots, loads, stores) and synchronization API calls — exactly
the surface the cycle-accounting hardware observes.

Ops carry an integer ``TAG`` class attribute for fast dispatch in the
engine's hot loop.
"""

from __future__ import annotations

from typing import Callable, Iterator

# Op tags (engine dispatch).
TAG_COMPUTE = 0
TAG_LOAD = 1
TAG_STORE = 2
TAG_LOCK_ACQUIRE = 3
TAG_LOCK_RELEASE = 4
TAG_BARRIER_WAIT = 5
TAG_YIELD_CPU = 6
TAG_FUTEX_WAIT = 7
TAG_FUTEX_WAKE = 8


class Compute:
    """``n`` dynamic non-memory instructions (dispatch-bound)."""

    __slots__ = ("n",)
    TAG = TAG_COMPUTE

    def __init__(self, n: int) -> None:
        self.n = n

    def __repr__(self) -> str:
        return f"Compute({self.n})"


class Load:
    """A data load.

    ``overlappable`` marks the load as independent of its neighbours so
    the out-of-order core may overlap its miss with other misses in the
    ROB window (memory-level parallelism).  ``dependent`` marks a load
    whose consumer immediately follows (e.g. a spin-loop test), so even
    a cache hit stalls the pipeline for its full latency.
    """

    __slots__ = ("addr", "pc", "overlappable", "dependent")
    TAG = TAG_LOAD

    def __init__(
        self,
        addr: int,
        pc: int = 0,
        overlappable: bool = True,
        dependent: bool = False,
    ) -> None:
        self.addr = addr
        self.pc = pc
        self.overlappable = overlappable
        self.dependent = dependent

    def __repr__(self) -> str:
        return f"Load(0x{self.addr:x}, pc=0x{self.pc:x})"


class Store:
    """A data store (write-allocate, write-back)."""

    __slots__ = ("addr", "pc")
    TAG = TAG_STORE

    def __init__(self, addr: int, pc: int = 0) -> None:
        self.addr = addr
        self.pc = pc

    def __repr__(self) -> str:
        return f"Store(0x{self.addr:x})"


class LockAcquire:
    """Acquire a mutex; contended acquires spin then yield."""

    __slots__ = ("lock_id",)
    TAG = TAG_LOCK_ACQUIRE

    def __init__(self, lock_id: int) -> None:
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"LockAcquire({self.lock_id})"


class LockRelease:
    __slots__ = ("lock_id",)
    TAG = TAG_LOCK_RELEASE

    def __init__(self, lock_id: int) -> None:
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"LockRelease({self.lock_id})"


class BarrierWait:
    """Wait on a barrier shared by all threads of the program."""

    __slots__ = ("barrier_id",)
    TAG = TAG_BARRIER_WAIT

    def __init__(self, barrier_id: int) -> None:
        self.barrier_id = barrier_id

    def __repr__(self) -> str:
        return f"BarrierWait({self.barrier_id})"


class YieldCpu:
    """Voluntarily give up the core (sched_yield): the thread goes to
    the back of its core's run queue and stays runnable."""

    __slots__ = ()
    TAG = TAG_YIELD_CPU

    def __repr__(self) -> str:
        return "YieldCpu()"


class FutexWait:
    """Block until another thread wakes this address (futex WAIT).

    The caller must re-check its condition after waking: wakeups can be
    spurious with respect to the condition, exactly like real futexes.
    """

    __slots__ = ("addr",)
    TAG = TAG_FUTEX_WAIT

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:
        return f"FutexWait(0x{self.addr:x})"


class FutexWake:
    """Wake one (or all) threads blocked on an address (futex WAKE)."""

    __slots__ = ("addr", "wake_all")
    TAG = TAG_FUTEX_WAKE

    def __init__(self, addr: int, wake_all: bool = False) -> None:
        self.addr = addr
        self.wake_all = wake_all

    def __repr__(self) -> str:
        return f"FutexWake(0x{self.addr:x}, all={self.wake_all})"


Op = (
    Compute | Load | Store | LockAcquire | LockRelease | BarrierWait
    | YieldCpu | FutexWait | FutexWake
)
ThreadBody = Iterator[Op]
ThreadFactory = Callable[[int], ThreadBody]


class Program:
    """A multi-threaded program: one op stream per software thread.

    ``warmup`` optionally lists, per thread, the addresses the thread's
    working set occupies; the simulator streams them through the caches
    untimed before measurement starts, so results reflect the steady
    state of the parallel fraction (the paper measures after the
    sequential initialization has run).
    """

    def __init__(
        self,
        name: str,
        thread_bodies: list[ThreadBody],
        warmup: list[list[int]] | None = None,
        lock_fifo_handoff: bool = False,
        spin_threshold_override: int | None = None,
    ) -> None:
        if not thread_bodies:
            raise ValueError("a program needs at least one thread")
        if warmup is not None and len(warmup) != len(thread_bodies):
            raise ValueError("warmup must have one address list per thread")
        self.name = name
        self.thread_bodies = thread_bodies
        self.warmup = warmup
        self.lock_fifo_handoff = lock_fifo_handoff
        #: override of the sync library's spin budget (SPLASH-2-style
        #: spinlocks spin much longer before yielding than pthreads)
        self.spin_threshold_override = spin_threshold_override

    @property
    def n_threads(self) -> int:
        return len(self.thread_bodies)

    @classmethod
    def from_factory(
        cls, name: str, n_threads: int, factory: ThreadFactory
    ) -> "Program":
        """Build a program by calling ``factory(thread_id)`` per thread."""
        return cls(name, [factory(tid) for tid in range(n_threads)])
