"""Deterministic address-stream generators for synthetic workloads.

Each thread owns a private data region and all threads share one shared
region; synchronization variables live in their own reserved region
(:data:`repro.sync.primitives.SYNC_REGION_BASE`).  Private regions are
offset by an odd number of DRAM pages per thread so that concurrently
streaming threads spread across banks instead of pathologically
colliding on bank 0.

All randomness comes from :class:`random.Random` instances seeded from
``(benchmark name, thread id)``, so every simulation is reproducible.
"""

from __future__ import annotations

import random
import zlib
from math import gcd
from typing import Iterator

LINE = 64
PAGE = 4096

#: Layout constants.  Regions are far apart so they can never overlap
#: for any plausible working-set size.
PRIVATE_BASE = 0x1000_0000
PRIVATE_STRIDE = 0x400_0000  # 64 MB per thread
SHARED_BASE = 0x4000_0000_0000


def seed_for(name: str, thread_id: int) -> int:
    """Stable cross-run seed for one thread of one benchmark."""
    return zlib.crc32(f"{name}/{thread_id}".encode()) & 0x7FFF_FFFF


def private_base(thread_id: int) -> int:
    """Base address of a thread's private region (bank-interleaved)."""
    return PRIVATE_BASE + thread_id * PRIVATE_STRIDE + thread_id * 13 * PAGE


class AddressStream:
    """Mixes strided (streaming) and random accesses over a region."""

    def __init__(
        self,
        base: int,
        size_bytes: int,
        rng: random.Random,
        stride_fraction: float = 0.5,
        stride: int = LINE,
    ) -> None:
        if size_bytes < LINE:
            raise ValueError("region smaller than one cache line")
        self.base = base
        self.size = size_bytes
        self.rng = rng
        self.stride_fraction = stride_fraction
        self.stride = stride
        self._cursor = 0
        self._n_lines = size_bytes // LINE

    def next_addr(self) -> int:
        if self.rng.random() < self.stride_fraction:
            addr = self.base + self._cursor
            self._cursor = (self._cursor + self.stride) % self.size
            return addr
        line = self.rng.randrange(self._n_lines)
        return self.base + line * LINE


class SharedStream:
    """Accesses over the shared region with a hot-subset bias.

    A fraction of accesses go to a small hot set (lines every thread
    reuses, maximizing inter-thread hits); the rest sweep the full
    shared region.
    """

    def __init__(
        self,
        size_bytes: int,
        rng: random.Random,
        hot_fraction: float = 0.6,
        hot_lines: int = 512,
    ) -> None:
        if size_bytes < LINE:
            raise ValueError("shared region smaller than one cache line")
        self.size = size_bytes
        self.rng = rng
        self.hot_fraction = hot_fraction
        self._n_lines = size_bytes // LINE
        self._hot_lines = min(hot_lines, self._n_lines)

    def next_addr(self) -> int:
        if self.rng.random() < self.hot_fraction:
            line = self.rng.randrange(self._hot_lines)
        else:
            line = self.rng.randrange(self._n_lines)
        return SHARED_BASE + line * LINE


def round_robin_lock(
    thread_id: int, counter: int, n_locks: int
) -> int:
    """Deterministic lock selection spreading contention across locks."""
    if n_locks <= 1:
        return 0
    return (thread_id + counter) % n_locks


def skew_factor(thread_id: int, phase: int, n_threads: int, amplitude: float) -> float:
    """Per-phase work multiplier creating deterministic load imbalance.

    Values are centred on 1.0 (the mean over threads is ~1), with spread
    proportional to ``amplitude``; the skewed thread rotates with the
    phase so no single thread is always the straggler.
    """
    if n_threads <= 1 or amplitude <= 0:
        return 1.0
    # Walk the threads with a step coprime to the thread count so the
    # positions form a permutation of 0..n-1 (mean multiplier exactly 1).
    step = next(k for k in (7, 5, 9, 11, 3, 1) if gcd(k, n_threads) == 1)
    position = ((thread_id * step + phase * 3) % n_threads) / (n_threads - 1)
    return 1.0 + amplitude * (position - 0.5) * 2.0


def chunks(total: int, chunk: int) -> Iterator[int]:
    """Split ``total`` into chunks of at most ``chunk``."""
    remaining = total
    while remaining > 0:
        step = chunk if remaining >= chunk else remaining
        yield step
        remaining -= step
