"""A software-pipeline program: dedicated stage thread plus workers.

PARSEC's ferret is a multi-stage pipeline whose throughput is bounded
by a serialized stage, fed by bounded queues.  Two properties follow,
both visible in the paper's Figure 7:

* with 16 software threads, performance *saturates* once there are
  enough cores to keep the serial stage busy (8 cores), and adding more
  cores does not help (16 cores is slightly worse: scheduler overhead);
* spawning more software threads than cores *helps*: extra workers keep
  the serial stage's input queue full while others are descheduled, so
  "only a fraction of the threads is active at a time" without idling
  the bottleneck.

The program below distills that structure: thread 0 is the serial
stage consuming items from a bounded queue; the remaining threads
produce items (parallel work per item, then an enqueue under the queue
lock).  Item costs are heterogeneous (image queries vary in work), and
each worker owns a static contiguous block of items — so at low thread
counts one worker drags a cluster of heavy items (load imbalance),
while with many threads the per-thread blocks are fine-grained and the
OS scheduler balances the load across cores.  Queue fullness/emptiness is handled like user-level
synchronization: poll a few times on the queue word (real loads, so
spin hardware sees them), then ``sched_yield``.

The queue's occupancy lives in shared Python state owned by the
program; the generators read and update it between ops, which the
engine serializes exactly like memory state.
"""

from __future__ import annotations

from repro.workloads.program import (
    Compute,
    FutexWait,
    FutexWake,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)

QUEUE_LOCK = 0
QUEUE_ADDR = 0x5800_0000
#: futex words: consumers sleep on EMPTY, producers sleep on FULL
FUTEX_EMPTY = 0x5800_0040
FUTEX_FULL = 0x5800_0080
PC_POLL = 0x3000

#: brief spin before blocking on the futex (adaptive waiting)
POLL_BUDGET = 8


class _Queue:
    """Occupancy counter of the bounded stage queue."""

    __slots__ = ("n", "bound", "produced_done")

    def __init__(self, bound: int) -> None:
        self.n = 0
        self.bound = bound
        self.produced_done = 0


def _wait_until(queue, ready, futex_addr) -> object:
    """Adaptive wait: spin briefly on the queue word (real loads, so
    spin-detection hardware sees them), then block on the futex.  The
    condition is re-checked after every wakeup (futex semantics)."""
    spins = 0
    while not ready():
        yield Load(QUEUE_ADDR, PC_POLL, overlappable=False, dependent=True)
        yield Compute(4)
        spins += 1
        if spins % POLL_BUDGET == 0:
            yield FutexWait(futex_addr)


def _serial_stage(queue, n_items: int, serial_instrs: int):
    """Thread 0: dequeue one item at a time and process it serially."""
    for __ in range(n_items):
        yield from _wait_until(queue, lambda: queue.n > 0, FUTEX_EMPTY)
        yield LockAcquire(QUEUE_LOCK)
        queue.n -= 1
        yield Store(QUEUE_ADDR)
        yield LockRelease(QUEUE_LOCK)
        yield FutexWake(FUTEX_FULL)
        yield Compute(serial_instrs)


def _item_cost(item: int, n_items: int, work_instrs: int) -> int:
    """Per-item work: the first third of the items are heavy queries."""
    if item < n_items // 3:
        return int(work_instrs * 2.2)
    return int(work_instrs * 0.4)


def _worker(queue, tid: int, first_item: int, n_my_items: int,
            n_items: int, work_instrs: int):
    """Produce a contiguous block of items: work, then enqueue."""
    base = 0x7800_0000 + tid * 0x40_0000 + tid * 13 * 4096
    for item in range(first_item, first_item + n_my_items):
        cost = _item_cost(item, n_items, work_instrs)
        for step in range(0, cost, 200):
            yield Compute(min(200, cost - step))
            yield Load(base + ((item * 9 + step) % 256) * 64)
        yield from _wait_until(queue, lambda: queue.n < queue.bound,
                               FUTEX_FULL)
        yield LockAcquire(QUEUE_LOCK)
        queue.n += 1
        yield Store(QUEUE_ADDR)
        yield LockRelease(QUEUE_LOCK)
        yield FutexWake(FUTEX_EMPTY)


def _single_thread(n_items: int, serial_instrs: int, work_instrs: int):
    """Reference: one thread does each item's work and serial part."""
    base = 0x7800_0000
    for item in range(n_items):
        cost = _item_cost(item, n_items, work_instrs)
        for step in range(0, cost, 200):
            yield Compute(min(200, cost - step))
            yield Load(base + ((item * 9 + step) % 256) * 64)
        yield Compute(serial_instrs)


def build_pipeline_program(
    n_threads: int,
    n_items: int = 100,
    serial_instrs: int = 4300,
    work_instrs: int = 9100,
    queue_bound: int = 8,
) -> Program:
    """Build the ferret-style pipeline for ``n_threads`` threads.

    ``n_threads == 1`` builds the single-threaded reference that
    executes the same total work without the pipeline plumbing.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if n_threads == 1:
        return Program(
            "ferret-pipeline",
            [_single_thread(n_items, serial_instrs, work_instrs)],
            warmup=[_worker_ws(0)],
        )
    queue = _Queue(queue_bound)
    n_workers = n_threads - 1
    share = n_items // n_workers
    remainder = n_items - share * n_workers
    bodies = [_serial_stage(queue, n_items, serial_instrs)]
    warmup: list[list[int]] = [[QUEUE_ADDR]]
    next_item = 0
    for tid in range(1, n_threads):
        items = share + (1 if tid <= remainder else 0)
        bodies.append(
            _worker(queue, tid, next_item, items, n_items, work_instrs)
        )
        next_item += items
        warmup.append(_worker_ws(tid))
    return Program(
        "ferret-pipeline", bodies, warmup=warmup, lock_fifo_handoff=False
    )


def _worker_ws(tid: int) -> list[int]:
    """The 256 lines of one worker's private buffer."""
    base = 0x7800_0000 + tid * 0x40_0000 + tid * 13 * 4096
    return [base + k * 64 for k in range(256)]
