"""The benchmark suite: 28 synthetic stand-ins for the paper's
SPLASH-2 / PARSEC / Rodinia benchmarks (one per row of Figure 6).

Each spec's knobs are chosen so that, on the simulated 16-core CMP, the
benchmark reproduces its row of Figure 6: the scaling class (good ≥ 10x,
poor < 5x, moderate in between), the ranked scaling delimiters, and
approximately the reported 16-thread speedup.  ``target_speedup_16`` and
``expected_top`` record the paper's values; they are *reference
metadata* used by the benches and tests, not inputs to the synthesis.

Mechanism notes (how each Figure 6 behaviour is realised):

* *yielding-dominant pipeline benchmarks* (ferret, dedup, freqmine,
  bodytrack, swaptions_small, water-nsquared, fluidanimate, facesim):
  a serialized section guarded by one lock with long critical sections;
  waiters exceed the spin budget and yield, so "only a few threads are
  active at a time" (Section 7.2);
* *yielding-dominant data-parallel benchmarks* (heartwall, lud, lu.*,
  srad, bfs, needle, fft, radix): barrier phases with skewed per-phase
  work; early arrivals yield at the barrier (the paper classifies
  barrier imbalance as synchronization, Section 4.6);
* *cache components*: a per-thread cold region that fits a private LLC
  (the ATD counterfactual) but is recycled out of the shared LLC by the
  other threads — inter-thread misses;
* *memory components*: streaming beyond any LLC (misses in both the
  shared LLC and the private counterfactual) so the cost is bus/bank/
  page contention, not extra misses;
* *positive interference* (cholesky, lu.*, canneal, bfs, needle):
  a shared region read by all threads under enough capacity pressure
  that it keeps being refetched by one thread and reused by the rest;
* *parallelization overhead*: extra per-thread instructions in
  multi-threaded mode; the paper reports ~26% for swaptions_small and
  ~18% for fluidanimate_medium (Section 6) and deliberately does not
  account them, which surfaces as estimation error.
"""

from __future__ import annotations

from repro.workloads.spec import BenchmarkSpec

GOOD = "good"
MODERATE = "moderate"
POOR = "poor"


def _pipeline(name, suite, input_class, s16, cpk, kinstr, *,
              par_overhead=0.02, mem=90, ws=64, cs_len=1600,
              expected=("yielding",), expected_class=POOR, **kw):
    """Serialized-section benchmark (yield-dominant).

    Uses FIFO direct-handoff locks: waiters queue up and the lock is
    passed in order, like the bounded queues between pipeline stages in
    dedup/ferret; ``cpk`` is critical sections per 1000 instructions.
    """
    return BenchmarkSpec(
        name=name, suite=suite, input_class=input_class,
        total_kinstrs=kinstr, mem_per_kinstr=mem, private_ws_kb=ws,
        n_locks=1, lock_fifo=True, cs_per_kinstr=cpk,
        cs_len_instrs=cs_len, par_overhead=par_overhead,
        target_speedup_16=s16, expected_class=expected_class,
        expected_top=expected, **kw)


def _phased(name, suite, input_class, s16, n_phases, imbalance, kinstr, *,
            par_overhead=0.02, mem=80, ws=64, expected=("yielding",),
            expected_class=MODERATE, **kw):
    """Barrier-phase benchmark with work skew (yield-dominant)."""
    return BenchmarkSpec(
        name=name, suite=suite, input_class=input_class,
        total_kinstrs=kinstr, mem_per_kinstr=mem, private_ws_kb=ws,
        n_phases=n_phases, imbalance=imbalance, par_overhead=par_overhead,
        target_speedup_16=s16, expected_class=expected_class,
        expected_top=expected, **kw)


SUITE: tuple[BenchmarkSpec, ...] = (
    # ----------------------------------------------------------- good
    BenchmarkSpec(
        name="blackscholes", suite="parsec", input_class="medium",
        total_kinstrs=960, mem_per_kinstr=60, private_ws_kb=48,
        par_overhead=0.005,
        target_speedup_16=15.94, expected_class=GOOD, expected_top=()),
    BenchmarkSpec(
        name="blackscholes", suite="parsec", input_class="small",
        total_kinstrs=640, mem_per_kinstr=60, private_ws_kb=48,
        par_overhead=0.008,
        target_speedup_16=15.71, expected_class=GOOD, expected_top=()),
    _phased("radix", "splash2", "", 11.60, 2, 0.04, 900,
            mem=150, ws=64, cold_ws_kb=4096, cold_fraction=0.007,
            stride_bytes=8, par_overhead=0.01,
            expected=("memory", "yielding"), expected_class=GOOD),
    BenchmarkSpec(
        name="swaptions", suite="parsec", input_class="medium",
        total_kinstrs=1600, mem_per_kinstr=90, private_ws_kb=64,
        n_locks=1, cs_per_kinstr=0.15, cs_len_instrs=400,
        par_overhead=0.04,
        target_speedup_16=12.99, expected_class=GOOD,
        expected_top=("yielding",)),
    _phased("heartwall", "rodinia", "", 10.39, 6, 0.19, 900,
            expected=("yielding",), expected_class=GOOD),
    # ------------------------------------------------------- moderate
    _phased("srad", "rodinia", "", 5.20, 4, 0.33, 800,
            mem=160, cold_ws_kb=2560, cold_fraction=0.022, stride_bytes=8,
            cold_stride_fraction=0.75,
            expected=("memory", "yielding", "cache")),
    BenchmarkSpec(
        name="cholesky", suite="splash2", input_class="",
        total_kinstrs=700, mem_per_kinstr=80, private_ws_kb=64,
        shared_ws_kb=1408, shared_fraction=0.045, stream_fraction=0.008,
        n_locks=2, cs_per_kinstr=1.6, cs_len_instrs=90, par_overhead=0.02,
        spin_threshold=220, n_phases=4, imbalance=0.15,
        target_speedup_16=5.02, expected_class=MODERATE,
        expected_top=("spinning", "yielding", "memory")),
    _phased("lud", "rodinia", "", 5.77, 10, 0.75, 800,
            expected=("yielding",)),
    _pipeline("water-nsquared", "splash2", "", 5.77, 0.046, 1200,
              mem=90, ws=96, expected=("yielding",),
              expected_class=MODERATE),
    _pipeline("fluidanimate", "parsec", "medium", 5.71, 0.038, 1200,
              par_overhead=0.18, expected=("yielding",),
              expected_class=MODERATE),
    _phased("lu.ncont", "splash2", "", 5.53, 8, 0.28, 800,
            shared_ws_kb=768, shared_fraction=0.035, stream_fraction=0.0015,
            cold_ws_kb=768, cold_fraction=0.012, stride_bytes=8,
            cold_stride_fraction=0.3,
            expected=("yielding",)),
    _phased("lu.cont", "splash2", "", 5.79, 8, 0.26, 800,
            shared_ws_kb=768, shared_fraction=0.035, stream_fraction=0.0015,
            cold_ws_kb=640, cold_fraction=0.011, stride_bytes=8,
            cold_stride_fraction=0.3,
            expected=("yielding",)),
    _pipeline("facesim", "parsec", "medium", 5.50, 0.040, 1200,
              mem=110, cold_ws_kb=1024, cold_fraction=0.009, stride_bytes=8,
              cold_stride_fraction=0.3,
              expected=("yielding", "cache", "memory"),
              expected_class=MODERATE),
    _pipeline("facesim", "parsec", "small", 5.46, 0.040, 1000,
              mem=110, cold_ws_kb=1024, cold_fraction=0.009, stride_bytes=8,
              cold_stride_fraction=0.3,
              expected=("yielding", "cache", "memory"),
              expected_class=MODERATE),
    _phased("fft", "splash2", "", 9.43, 3, 0.26, 900,
            mem=140, cold_ws_kb=4096, cold_fraction=0.008, stride_bytes=8,
            expected=("yielding", "memory")),
    BenchmarkSpec(
        name="canneal", suite="parsec", input_class="medium",
        total_kinstrs=1200, mem_per_kinstr=110, private_ws_kb=64,
        shared_ws_kb=1152, shared_fraction=0.09, dependent_fraction=0.30,
        stream_fraction=0.003,
        cold_ws_kb=3072, cold_fraction=0.005,
        n_locks=1, lock_fifo=True, cs_per_kinstr=0.042,
        cs_len_instrs=1600, par_overhead=0.02,
        target_speedup_16=7.61, expected_class=MODERATE,
        expected_top=("yielding", "memory")),
    BenchmarkSpec(
        name="canneal", suite="parsec", input_class="small",
        total_kinstrs=800, mem_per_kinstr=110, private_ws_kb=64,
        shared_ws_kb=1024, shared_fraction=0.11, dependent_fraction=0.30,
        stream_fraction=0.003,
        cold_ws_kb=2560, cold_fraction=0.008,
        n_locks=1, lock_fifo=True, cs_per_kinstr=0.050,
        cs_len_instrs=1600, par_overhead=0.02,
        target_speedup_16=6.93, expected_class=MODERATE,
        expected_top=("yielding", "memory")),
    _phased("bfs", "rodinia", "", 5.65, 12, 0.60, 800,
            mem=130, shared_ws_kb=1152, shared_fraction=0.20,
            stream_fraction=0.003,
            dependent_fraction=0.20,
            expected=("yielding", "memory")),
    # ----------------------------------------------------------- poor
    _pipeline("ferret", "parsec", "medium", 4.77, 0.059, 1400,
              expected=("yielding",)),
    _pipeline("water-spatial", "splash2", "", 4.57, 0.062, 1200,
              expected=("yielding",)),
    _pipeline("dedup", "parsec", "medium", 4.12, 0.067, 1400,
              expected=("yielding",)),
    _pipeline("freqmine", "parsec", "small", 4.09, 0.067, 1000,
              expected=("yielding",)),
    _pipeline("freqmine", "parsec", "medium", 3.89, 0.071, 1600,
              expected=("yielding",)),
    _pipeline("swaptions", "parsec", "small", 3.81, 0.062, 1000,
              par_overhead=0.26, expected=("yielding",)),
    _pipeline("dedup", "parsec", "small", 3.56, 0.076, 1000,
              expected=("yielding",)),
    _pipeline("bodytrack", "parsec", "small", 3.02, 0.092, 1000,
              expected=("yielding",)),
    _pipeline("ferret", "parsec", "small", 2.94, 0.096, 1000,
              expected=("yielding",)),
    _phased("needle", "rodinia", "", 4.14, 14, 0.60, 800,
            mem=120, shared_ws_kb=768, shared_fraction=0.15,
            stream_fraction=0.003,
            cold_ws_kb=768, cold_fraction=0.018, stride_bytes=8,
            expected=("yielding", "memory", "cache"),
            expected_class=POOR),
)


def by_name(full_name: str) -> BenchmarkSpec:
    """Look up a spec by its full name (e.g. ``facesim_medium``).

    Unknown names raise :class:`KeyError` with close-match suggestions,
    so a typo in a sweep config fails with an actionable message.
    """
    for spec in SUITE:
        if spec.full_name == full_name:
            return spec
    import difflib

    close = difflib.get_close_matches(
        full_name, [spec.full_name for spec in SUITE], n=3
    )
    hint = f" (did you mean: {', '.join(close)}?)" if close else ""
    raise KeyError(f"unknown benchmark {full_name!r}{hint}")


def sweep_cells(
    benchmarks: tuple[str, ...] | None = None,
    thread_counts: tuple[int, ...] = (16,),
) -> list[tuple[BenchmarkSpec, int]]:
    """Enumerate the (spec, N) cells of a suite sweep.

    ``benchmarks`` is a tuple of full names (default: the whole suite);
    every name is validated up front so a bad sweep config fails before
    any simulation time is spent.
    """
    if benchmarks is None:
        specs = list(SUITE)
    else:
        specs = [by_name(name) for name in benchmarks]
    for n in thread_counts:
        if n < 1:
            raise ValueError(f"thread count must be >= 1: {n}")
    return [(spec, n) for spec in specs for n in thread_counts]


#: The Figure 8 benchmarks (non-negligible positive LLC interference).
FIG8_BENCHMARKS: tuple[str, ...] = (
    "cholesky", "lu.cont", "canneal_small", "canneal_medium",
    "bfs", "lu.ncont", "needle",
)

#: Figure 1 / Figure 5 benchmarks.
FIG5_BENCHMARKS: tuple[str, ...] = (
    "blackscholes_medium", "facesim_medium", "cholesky",
)
