"""Benchmark specification and program synthesis.

A :class:`BenchmarkSpec` captures the *behavioural characteristics* of
one benchmark from the paper's suite (SPLASH-2 / PARSEC / Rodinia) as a
set of knobs — working-set sizes, sharing, memory intensity,
synchronization pattern, imbalance, parallelization overhead.  The
:func:`build_program` synthesizer turns a spec into a concrete
multi-threaded :class:`~repro.workloads.program.Program` for any thread
count, dividing the total work across threads (strong scaling over the
given input size; different input classes of the same benchmark are
separate specs with different totals, which is how the weak-scaling
behaviour of e.g. ``swaptions`` emerges).

The single-threaded variant (``n_threads=1``) is the reference run: it
executes the same total work without parallelization-overhead
instructions and with the same lock/barrier calls (which are then all
uncontended), mirroring how the paper measures ``Ts`` on the parallel
fraction of each benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.workloads import generators as g
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)

#: Synthetic PC used by workload (non-synchronization) memory accesses.
PC_WORK_LOAD = 0x2000
PC_WORK_STORE = 0x2004

#: Instruction block granularity: memory ops are interleaved into
#: compute in blocks of this many instructions.
BLOCK_INSTRS = 100


@dataclass(frozen=True)
class BenchmarkSpec:
    """Knob set describing one benchmark's behaviour."""

    name: str
    suite: str = "synthetic"
    input_class: str = ""

    #: total dynamic work in thousands of instructions (divided across
    #: threads — strong scaling within one input size)
    total_kinstrs: int = 400
    #: memory operations per 1000 instructions
    mem_per_kinstr: int = 100
    #: per-thread private working set
    private_ws_kb: int = 64
    #: shared (read-mostly) working set, source of positive interference
    shared_ws_kb: int = 0
    #: fraction of memory ops that touch the shared region
    shared_fraction: float = 0.0
    #: fraction of *shared* accesses that are stores (coherency traffic)
    shared_store_fraction: float = 0.02
    #: producer-consumer stream: fraction of memory ops on a stream of
    #: freshly produced shared lines.  Producers store to brand-new
    #: lines; consumers read recently produced lines (mostly written by
    #: other threads).  First-touch reads of another thread's lines are
    #: inter-thread hits regardless of LLC size, which is what keeps the
    #: positive-interference component constant in the paper's Figure 9.
    stream_fraction: float = 0.0
    #: how far back (in own productions) consumers read
    stream_window: int = 96
    #: probability a stream access produces rather than consumes
    stream_produce_fraction: float = 0.35
    #: fraction of *private* accesses that are stores
    store_fraction: float = 0.2
    #: fraction of private accesses that stream sequentially
    stride_fraction: float = 0.6
    #: byte stride of streaming accesses (sub-line strides give spatial
    #: locality: 8-byte words mean 8 accesses per 64-byte line)
    stride_bytes: int = 16
    #: per-thread cold region scanned at a low rate: its lines stay
    #: resident in a private-LLC counterfactual (the ATD) but are
    #: recycled out of the shared LLC by the other threads, producing
    #: steady inter-thread (negative LLC) misses
    cold_ws_kb: int = 0
    #: fraction of private accesses that go to the cold region
    cold_fraction: float = 0.0
    #: streaming fraction within the cold region (random cold accesses
    #: keep most of the region ATD-resident, biasing the misses towards
    #: the inter-thread "cache" component rather than plain memory time)
    cold_stride_fraction: float = 1.0
    #: fraction of loads that are address-dependent (pointer chasing)
    dependent_fraction: float = 0.0
    #: fraction of private *stores* that instead hit a falsely-shared
    #: line: every thread writes its own word of the same small set of
    #: cache lines, so the lines ping-pong between L1s (coherency
    #: invalidations and upgrade misses without any data actually
    #: flowing between threads — Section 3.2's "unnecessary cache
    #: coherency traffic may result from false sharing")
    false_sharing_fraction: float = 0.0
    false_sharing_lines: int = 16
    #: lock synchronization: critical sections per 1000 instructions
    n_locks: int = 1
    cs_per_kinstr: float = 0.0
    cs_len_instrs: int = 200
    #: stores inside each critical section (shared-data updates)
    cs_stores: int = 2
    #: barrier phases over the whole run
    n_phases: int = 1
    #: per-phase work skew amplitude (0 = perfectly balanced)
    imbalance: float = 0.0
    #: extra instructions (fraction) each thread executes only when
    #: multi-threaded — parallelization overhead (Section 3.5)
    par_overhead: float = 0.02
    #: FIFO direct-handoff (fair) locks instead of barging spinlocks
    lock_fifo: bool = False
    #: spin budget override (iterations before yielding); SPLASH-2-style
    #: spinlocks spin far longer than pthreads before blocking
    spin_threshold: int | None = None
    #: end with a barrier (the convergence point of the parallel
    #: fraction): the paper measures "between the divergence and
    #: convergence of the threads", making the imbalance component ~0;
    #: disable to expose end-of-program imbalance instead (Section 4.6)
    final_barrier: bool = True

    # Fig. 6 reference metadata (targets, not inputs to the synthesis).
    target_speedup_16: float | None = None
    expected_class: str = ""
    expected_top: tuple[str, ...] = ()

    @property
    def full_name(self) -> str:
        if self.input_class:
            return f"{self.name}_{self.input_class}"
        return self.name

    def scaled(self, factor: float) -> "BenchmarkSpec":
        """Scale the total amount of work (for quick test runs)."""
        return replace(
            self, total_kinstrs=max(1, int(self.total_kinstrs * factor))
        )


def build_program(
    spec: BenchmarkSpec, n_threads: int, scale: float = 1.0
) -> Program:
    """Synthesize the program for ``n_threads`` threads."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    scaled = spec if scale == 1.0 else spec.scaled(scale)
    bodies = [
        _thread_body(scaled, tid, n_threads) for tid in range(n_threads)
    ]
    warmup = [_warmup_addrs(scaled, tid) for tid in range(n_threads)]
    return Program(
        scaled.full_name, bodies, warmup=warmup,
        lock_fifo_handoff=scaled.lock_fifo,
        spin_threshold_override=scaled.spin_threshold,
    )


def _warmup_addrs(spec: BenchmarkSpec, tid: int) -> list[int]:
    """The lines a thread's working set occupies.

    Cold and shared regions come first and the hot private working set
    last, so the hot data is the most-recently-used LLC content when
    measurement starts.
    """
    addrs = []
    if spec.cold_ws_kb > 0 and spec.cold_fraction > 0:
        cold_base = g.private_base(tid) + 0x100_0000
        for offset in range(0, spec.cold_ws_kb * 1024, g.LINE):
            addrs.append(cold_base + offset)
    if spec.shared_ws_kb > 0 and spec.shared_fraction > 0:
        for offset in range(0, spec.shared_ws_kb * 1024, g.LINE):
            addrs.append(g.SHARED_BASE + offset)
    base = g.private_base(tid)
    for offset in range(0, spec.private_ws_kb * 1024, g.LINE):
        addrs.append(base + offset)
    return addrs


#: base of the produced-stream region (disjoint from the shared region)
STREAM_BASE = g.SHARED_BASE + 0x2000_0000

#: base of the falsely-shared line region
FALSE_SHARING_BASE = g.SHARED_BASE + 0x3000_0000


class _Stream:
    """Per-thread producer-consumer stream state."""

    __slots__ = ("tid", "n_threads", "cursor", "window", "rng")

    def __init__(self, tid: int, n_threads: int, window: int, rng) -> None:
        self.tid = tid
        self.n_threads = n_threads
        self.cursor = 0
        self.window = window
        self.rng = rng

    def produce_addr(self) -> int:
        addr = STREAM_BASE + (self.cursor * self.n_threads + self.tid) * g.LINE
        self.cursor += 1
        return addr

    def consume_addr(self) -> int | None:
        """A recently produced line — by any thread, assuming the peers
        progress roughly in step (they execute the same op mix)."""
        hi = self.cursor * self.n_threads
        if hi <= 0:
            return None
        lo = max(0, hi - self.window * self.n_threads)
        return STREAM_BASE + self.rng.randrange(lo, hi) * g.LINE


def _thread_body(spec: BenchmarkSpec, tid: int, n_threads: int):
    """Generator of one thread's dynamic instruction stream."""
    rng = random.Random(g.seed_for(spec.full_name, tid))
    private = g.AddressStream(
        g.private_base(tid),
        spec.private_ws_kb * 1024,
        rng,
        stride_fraction=spec.stride_fraction,
        stride=spec.stride_bytes,
    )
    shared = None
    if spec.shared_ws_kb > 0 and spec.shared_fraction > 0:
        shared = g.SharedStream(spec.shared_ws_kb * 1024, rng)
    stream = None
    if spec.stream_fraction > 0:
        stream = _Stream(tid, n_threads, spec.stream_window, rng)
    cold = None
    if spec.cold_ws_kb > 0 and spec.cold_fraction > 0:
        cold = g.AddressStream(
            g.private_base(tid) + 0x100_0000,
            spec.cold_ws_kb * 1024,
            rng,
            stride_fraction=spec.cold_stride_fraction,
            stride=g.LINE,
        )

    total_instrs = spec.total_kinstrs * 1000
    base_share = total_instrs // n_threads
    if n_threads > 1 and spec.par_overhead > 0:
        base_share = int(base_share * (1.0 + spec.par_overhead))

    mem_per_block = spec.mem_per_kinstr * BLOCK_INSTRS / 1000.0
    cs_per_block = spec.cs_per_kinstr * BLOCK_INSTRS / 1000.0
    mem_debt = 0.0
    # Start each thread at a random phase of its critical-section cycle
    # so threads do not all reach their first CS at the same instant
    # (which would serialize the whole program through one convoy).
    cs_debt = rng.random()
    cs_counter = 0

    n_phases = max(1, spec.n_phases)
    for phase in range(n_phases):
        share = base_share // n_phases
        my_share = int(share * g.skew_factor(tid, phase, n_threads, spec.imbalance))
        for block in g.chunks(my_share, BLOCK_INSTRS):
            # Interleave compute with memory accesses; memory ops count
            # against the block's instruction budget, so the emitted
            # total matches the spec's instruction count.
            mem_debt += mem_per_block * (block / BLOCK_INSTRS)
            n_mem = int(mem_debt)
            if n_mem >= block:
                n_mem = block - 1 if block > 1 else 0
            mem_debt -= n_mem
            compute_budget = block - n_mem
            if n_mem == 0:
                yield Compute(block)
            else:
                sub = max(1, compute_budget // n_mem)
                emitted = 0
                for _ in range(n_mem):
                    step = min(sub, compute_budget - emitted)
                    if step > 0:
                        yield Compute(step)
                        emitted += step
                    yield _mem_access(
                        spec, rng, private, shared, cold, stream, tid
                    )
                if emitted < compute_budget:
                    yield Compute(compute_budget - emitted)

            # Critical sections (locks exist in the 1-thread run too —
            # they are then uncontended, like the paper's parallel
            # fraction measured single-threaded).
            cs_debt += cs_per_block * (block / BLOCK_INSTRS)
            while cs_debt >= 1.0:
                cs_debt -= 1.0
                cs_counter += 1
                lock_id = g.round_robin_lock(tid, cs_counter, spec.n_locks)
                yield LockAcquire(lock_id)
                yield Compute(spec.cs_len_instrs)
                for store_idx in range(spec.cs_stores):
                    addr = (
                        g.SHARED_BASE
                        + 0x100_0000
                        + (lock_id * 8 + store_idx) * g.LINE
                    )
                    yield Store(addr, PC_WORK_STORE)
                yield LockRelease(lock_id)
        if n_phases > 1 and phase < n_phases - 1:
            yield BarrierWait(phase)
    if spec.final_barrier:
        yield BarrierWait(n_phases)


def _mem_access(spec: BenchmarkSpec, rng: random.Random, private, shared,
                cold, stream, tid: int):
    """One memory access according to the spec's mix.

    A plain function (not a generator): the thread body yields the
    returned op directly, avoiding one generator object and a ``yield
    from`` frame per memory access on the synthesis hot path.  The RNG
    draw order is part of the workload definition and must not change.
    """
    if stream is not None and rng.random() < spec.stream_fraction:
        if rng.random() < spec.stream_produce_fraction:
            return Store(stream.produce_addr(), PC_WORK_STORE)
        addr = stream.consume_addr()
        if addr is None:
            return Store(stream.produce_addr(), PC_WORK_STORE)
        return Load(addr, PC_WORK_LOAD)
    if shared is not None and rng.random() < spec.shared_fraction:
        addr = shared.next_addr()
        if rng.random() < spec.shared_store_fraction:
            return Store(addr, PC_WORK_STORE)
        return Load(addr, PC_WORK_LOAD)
    if cold is not None and rng.random() < spec.cold_fraction:
        dependent = (
            spec.dependent_fraction > 0
            and rng.random() < spec.dependent_fraction
        )
        return Load(
            cold.next_addr(), PC_WORK_LOAD,
            overlappable=not dependent, dependent=dependent,
        )
    addr = private.next_addr()
    if rng.random() < spec.store_fraction:
        if (
            spec.false_sharing_fraction > 0
            and rng.random() < spec.false_sharing_fraction
        ):
            # own word of a hot shared line: pure coherency ping-pong
            line = rng.randrange(spec.false_sharing_lines)
            addr = FALSE_SHARING_BASE + line * g.LINE + (tid % 8) * 8
        return Store(addr, PC_WORK_STORE)
    dependent = (
        spec.dependent_fraction > 0
        and rng.random() < spec.dependent_fraction
    )
    return Load(
        addr, PC_WORK_LOAD, overlappable=not dependent, dependent=dependent
    )
