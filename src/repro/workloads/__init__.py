"""Workloads: the op-level program IR, synthetic benchmark synthesis,
the 28-benchmark suite mirroring the paper's Figure 6, and the
ferret-style pipeline program used for Figure 7.
"""
