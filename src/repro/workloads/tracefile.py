"""Trace-file workloads: run programs from plain-text op traces.

The op IR doubles as an interchange format: dump any program to a text
trace, or analyze traces produced elsewhere (an instrumentation pass, a
binary-translation tool, another simulator) by loading them as a
:class:`~repro.workloads.program.Program`.  One op per line::

    # threads: 2
    T0 C 120            # compute 120 instructions
    T0 L 0x10000        # load (overlappable by default)
    T0 L 0x10040 dep    # dependent load (full-latency)
    T0 L 0x10080 noov   # non-overlappable load
    T0 S 0x20000        # store
    T0 ACQ 0            # acquire lock 0
    T0 REL 0            # release lock 0
    T0 BAR 1            # wait on barrier 1
    T0 YIELD            # sched_yield
    T0 FWAIT 0x5000     # futex wait
    T1 FWAKE 0x5000 all # futex wake (all waiters)

Blank lines and ``#`` comments are ignored; thread interleaving in the
file is irrelevant (each thread's ops execute in its own file order).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ConfigError, TraceParseError
from repro.workloads.program import (
    BarrierWait,
    Compute,
    FutexWait,
    FutexWake,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    Program,
    Store,
    YieldCpu,
)


def _parse_int(token: str, line_no: int, source: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise TraceParseError(
            f"bad integer {token!r}", source, line_no
        ) from None


def _parse_op(tokens: list[str], line_no: int, source: str) -> Op:
    kind = tokens[0].upper()
    args = tokens[1:]
    if kind == "C":
        if len(args) != 1:
            raise TraceParseError("C takes one count", source, line_no)
        n = _parse_int(args[0], line_no, source)
        if n <= 0:
            raise TraceParseError(
                "compute count must be > 0", source, line_no
            )
        return Compute(n)
    if kind == "L":
        if not args:
            raise TraceParseError("L needs an address", source, line_no)
        addr = _parse_int(args[0], line_no, source)
        flags = {flag.lower() for flag in args[1:]}
        unknown = flags - {"dep", "noov"}
        if unknown:
            raise TraceParseError(
                f"unknown flags {unknown}", source, line_no
            )
        return Load(
            addr,
            overlappable="noov" not in flags and "dep" not in flags,
            dependent="dep" in flags,
        )
    if kind == "S":
        if len(args) != 1:
            raise TraceParseError("S takes one address", source, line_no)
        return Store(_parse_int(args[0], line_no, source))
    if kind in ("ACQ", "REL", "BAR", "FWAIT", "FWAKE") and not args:
        raise TraceParseError(
            f"{kind} needs an argument", source, line_no
        )
    if kind == "ACQ":
        return LockAcquire(_parse_int(args[0], line_no, source))
    if kind == "REL":
        return LockRelease(_parse_int(args[0], line_no, source))
    if kind == "BAR":
        return BarrierWait(_parse_int(args[0], line_no, source))
    if kind == "YIELD":
        return YieldCpu()
    if kind == "FWAIT":
        return FutexWait(_parse_int(args[0], line_no, source))
    if kind == "FWAKE":
        wake_all = len(args) > 1 and args[1].lower() == "all"
        return FutexWake(
            _parse_int(args[0], line_no, source), wake_all=wake_all
        )
    raise TraceParseError(f"unknown op {kind!r}", source, line_no)


#: decoded-trace memo: (name, text) -> per-thread op tuples.  Ops are
#: immutable value objects, so decoded streams can be shared between
#: every Program built from the same trace text (repeated cells of a
#: sweep, retries, the single- and multi-threaded runs of one cell).
_DECODE_CACHE: dict[tuple[str, str], tuple[tuple[Op, ...], ...]] = {}
_DECODE_CACHE_MAX = 64


def _decode_trace(text: str, name: str) -> tuple[tuple[Op, ...], ...]:
    per_thread: dict[int, list[Op]] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        if not head.upper().startswith("T") or len(head) < 2:
            raise TraceParseError(
                f"expected 'T<tid> <op> ...', got {raw!r}", name, line_no
            )
        tid = _parse_int(head[1:], line_no, name)
        if tid < 0:
            raise TraceParseError("negative thread id", name, line_no)
        if len(tokens) < 2:
            raise TraceParseError("missing op", name, line_no)
        per_thread.setdefault(tid, []).append(
            _parse_op(tokens[1:], line_no, name)
        )
    if not per_thread:
        raise TraceParseError("trace contains no ops", name)
    n_threads = max(per_thread) + 1
    return tuple(
        tuple(per_thread.get(tid, ())) for tid in range(n_threads)
    )


def parse_trace(text: str, name: str = "trace") -> Program:
    """Parse a text trace into a runnable program.

    Malformed lines raise :class:`~repro.errors.TraceParseError` (a
    :class:`~repro.errors.ConfigError`) carrying ``name`` and the
    1-based line number of the offending line.  Decoding is memoized on
    the trace text; each call still returns a fresh :class:`Program`
    with independent per-thread iterators.
    """
    key = (name, text)
    ops = _DECODE_CACHE.get(key)
    if ops is None:
        ops = _decode_trace(text, name)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.pop(next(iter(_DECODE_CACHE)))
        _DECODE_CACHE[key] = ops
    return Program(name, [iter(thread_ops) for thread_ops in ops])


def load_trace(path: str, name: str | None = None) -> Program:
    """Load a program from a trace file."""
    with open(path) as handle:
        text = handle.read()
    return parse_trace(text, name=name or path)


def _format_op(op: Op) -> str:
    if isinstance(op, Compute):
        return f"C {op.n}"
    if isinstance(op, Load):
        flags = ""
        if op.dependent:
            flags = " dep"
        elif not op.overlappable:
            flags = " noov"
        return f"L 0x{op.addr:x}{flags}"
    if isinstance(op, Store):
        return f"S 0x{op.addr:x}"
    if isinstance(op, LockAcquire):
        return f"ACQ {op.lock_id}"
    if isinstance(op, LockRelease):
        return f"REL {op.lock_id}"
    if isinstance(op, BarrierWait):
        return f"BAR {op.barrier_id}"
    if isinstance(op, YieldCpu):
        return "YIELD"
    if isinstance(op, FutexWait):
        return f"FWAIT 0x{op.addr:x}"
    if isinstance(op, FutexWake):
        suffix = " all" if op.wake_all else ""
        return f"FWAKE 0x{op.addr:x}{suffix}"
    raise ConfigError(f"cannot serialize op {op!r}")


def dump_trace(ops_per_thread: Iterable[Iterable[Op]]) -> str:
    """Serialize per-thread op lists to trace text.

    Note this *materializes* the streams — dump a bounded program, not
    an infinite generator.
    """
    lines = []
    n_threads = 0
    for tid, ops in enumerate(ops_per_thread):
        n_threads += 1
        for op in ops:
            lines.append(f"T{tid} {_format_op(op)}")
    header = f"# threads: {n_threads}"
    return "\n".join([header] + lines) + "\n"


def dump_program(program: Program) -> str:
    """Serialize a program (consumes its generators)."""
    return dump_trace(list(body) for body in program.thread_bodies)
