"""Deterministic fault injection.

A seeded :class:`FaultInjector` manufactures the pathologies the
robustness machinery must survive, so deadlock, livelock, parse-error
and memory-pressure paths can be exercised on demand (and
reproducibly — every decision comes from one ``random.Random(seed)``):

* :meth:`~FaultInjector.corrupt_trace` — mangle lines of a text trace
  so the parser's :class:`~repro.errors.TraceParseError` path fires;
* :meth:`~FaultInjector.drop_lock_releases` — silently swallow
  ``LockRelease`` ops, turning waiters into permanent blockers
  (:class:`~repro.errors.DeadlockError`);
* :meth:`~FaultInjector.spin_forever` — remove the spin budget so
  waiters never yield: with a dropped release this is a livelock (spin
  instructions retire, no forward progress);
* :meth:`~FaultInjector.skew_barrier_arrivals` — pad threads with
  extra compute before barrier waits (pathological imbalance);
* :meth:`~FaultInjector.spike_memory_latency` — scale the DRAM
  timings, modelling a saturated memory system.

:func:`make_fault` maps the CLI's ``--inject KIND@BENCH:N`` spellings
onto cell-level fault callables for the batch runner.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.workloads.program import (
    Compute,
    Program,
    TAG_BARRIER_WAIT,
    TAG_LOCK_RELEASE,
)

#: A cell-level fault: transforms the (program, machine) pair of one
#: (benchmark, N) experiment cell before it runs.
CellFault = Callable[[Program, MachineConfig], tuple[Program, MachineConfig]]

#: spin budget that in practice never yields
_NEVER_YIELD = 1 << 60

FAULT_KINDS = (
    "deadlock", "livelock", "barrier-skew", "mem-spike",
)


class FaultInjector:
    """Seeded source of deterministic faults."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # trace corruption
    # ------------------------------------------------------------------

    def corrupt_trace(self, text: str, n_corruptions: int = 1) -> str:
        """Corrupt ``n_corruptions`` random op lines of a text trace.

        Corruption styles cover the parser's whole failure surface:
        bad integers, truncated lines, unknown ops/flags, and mangled
        thread tokens.
        """
        lines = text.splitlines()
        eligible = [
            i for i, line in enumerate(lines)
            if line.split("#", 1)[0].strip()
        ]
        if not eligible:
            return text
        for index in self.rng.sample(
            eligible, min(n_corruptions, len(eligible))
        ):
            lines[index] = self._corrupt_line(lines[index])
        return "\n".join(lines) + ("\n" if text.endswith("\n") else "")

    def _corrupt_line(self, line: str) -> str:
        tokens = line.split()
        style = self.rng.randrange(5)
        if style == 0 and len(tokens) >= 2:      # bad integer argument
            tokens[-1] = "0xNOT_A_NUMBER"
        elif style == 1:                         # truncate to the tid
            tokens = tokens[:1]
        elif style == 2 and len(tokens) >= 2:    # unknown op mnemonic
            tokens[1] = "FROBNICATE"
        elif style == 3:                         # mangled thread token
            tokens[0] = "Q" + tokens[0][1:]
        else:                                    # unknown trailing flag
            tokens.append("banana")
        return " ".join(tokens)

    # ------------------------------------------------------------------
    # program transforms
    # ------------------------------------------------------------------

    def drop_lock_releases(
        self, program: Program, fraction: float = 1.0
    ) -> Program:
        """Swallow each ``LockRelease`` with probability ``fraction``."""
        drop_rng = random.Random(self.rng.randrange(1 << 30))

        def transform(body, tid):
            for op in body:
                if (op.TAG == TAG_LOCK_RELEASE
                        and drop_rng.random() < fraction):
                    continue
                yield op

        return _rebuild(program, transform)

    def skew_barrier_arrivals(
        self,
        program: Program,
        extra_instrs: int = 50_000,
        fraction: float = 0.5,
    ) -> Program:
        """Insert up to ``extra_instrs`` of compute before each barrier
        wait of each thread with probability ``fraction``."""
        skew_rng = random.Random(self.rng.randrange(1 << 30))

        def transform(body, tid):
            for op in body:
                if (op.TAG == TAG_BARRIER_WAIT
                        and skew_rng.random() < fraction):
                    yield Compute(1 + skew_rng.randrange(extra_instrs))
                yield op

        return _rebuild(program, transform)

    def spin_forever(self, program: Program) -> Program:
        """Remove the spin budget: contended waiters never yield."""
        return _rebuild(
            program, lambda body, tid: body,
            spin_threshold_override=_NEVER_YIELD,
        )

    # ------------------------------------------------------------------
    # machine transforms
    # ------------------------------------------------------------------

    def spike_memory_latency(
        self, machine: MachineConfig, factor: int = 8
    ) -> MachineConfig:
        """Scale the DRAM timings by ``factor`` (saturated memory)."""
        dram = machine.dram
        return replace(
            machine,
            dram=replace(
                dram,
                bus_cycles=dram.bus_cycles * factor,
                t_cas=dram.t_cas * factor,
                t_rcd=dram.t_rcd * factor,
                t_rp=dram.t_rp * factor,
            ),
        )


def _rebuild(
    program: Program,
    transform: Callable,
    spin_threshold_override: int | None = None,
) -> Program:
    """New program with per-thread bodies passed through ``transform``."""
    bodies = [
        transform(body, tid)
        for tid, body in enumerate(program.thread_bodies)
    ]
    return Program(
        program.name,
        bodies,
        warmup=program.warmup,
        lock_fifo_handoff=program.lock_fifo_handoff,
        spin_threshold_override=(
            spin_threshold_override
            if spin_threshold_override is not None
            else program.spin_threshold_override
        ),
    )


def make_fault(kind: str, seed: int = 0) -> CellFault:
    """Build a cell-level fault callable for the batch runner/CLI.

    ``kind`` is one of :data:`FAULT_KINDS`.
    """
    injector = FaultInjector(seed)
    if kind == "deadlock":
        return lambda program, machine: (
            injector.drop_lock_releases(program), machine
        )
    if kind == "livelock":
        return lambda program, machine: (
            injector.spin_forever(injector.drop_lock_releases(program)),
            machine,
        )
    if kind == "barrier-skew":
        return lambda program, machine: (
            injector.skew_barrier_arrivals(program), machine
        )
    if kind == "mem-spike":
        return lambda program, machine: (
            program, injector.spike_memory_latency(machine)
        )
    raise ConfigError(
        f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
    )
