"""Graceful drain on SIGINT/SIGTERM: stop cleanly, keep the state.

The robustness machinery guarantees that *nothing* the runner was asked
to do is lost on an interrupt: the journal is appended after every
cell, checkpoints are saved mid-cell, and the work queue releases its
leases.  What was missing is a way to actually *stop* — a Python
simulation loop only reacts to ``KeyboardInterrupt``, which aborts at
an arbitrary bytecode and loses the in-flight cell.

This module provides the three pieces every entry point shares:

* :class:`DrainController` — installs SIGINT/SIGTERM handlers that set
  a flag instead of raising.  A *second* signal restores the default
  disposition, so a stuck drain can still be killed the ordinary way.
* :class:`DrainRequested` — raised from inside the engine's checkpoint
  poll once the in-flight state is safe.  Derives from
  :class:`BaseException` (like ``KeyboardInterrupt``) so the batch
  runner's ``except ReproError`` retry path can never misclassify a
  drain as a failing cell.
* :class:`DrainableHook` — wraps (or stands in for) a
  :class:`~repro.checkpoint.policy.CheckpointHook`.  The engine already
  polls ``hook.due(now)`` once per scheduling step; when a drain is
  requested the wrapper forces a save (when a checkpoint target is
  configured) and then raises :class:`DrainRequested` — so a drained
  run always leaves a resumable checkpoint behind when one was asked
  for, and stops promptly either way.

Exit codes (documented in ``docs/distributed.md`` and the CLI help):

* :data:`EXIT_INTERRUPTED` (95) — ``repro stack`` / ``repro sweep``
  stopped on a signal *after* finalizing the journal / checkpoint.
* :data:`EXIT_DRAINED` (75, sysexits ``EX_TEMPFAIL``) — a
  ``repro worker`` released its lease and exited; the cell is safely
  back in the queue and a re-run will pick it up.
"""

from __future__ import annotations

import logging
import signal
import threading

logger = logging.getLogger(__name__)

#: ``repro stack`` / ``repro sweep`` interrupted by SIGINT/SIGTERM after
#: finalizing state (journal records written, checkpoint saved)
EXIT_INTERRUPTED = 95

#: ``repro worker`` drained: lease released (cell requeued, checkpoint
#: kept), heartbeat finalized — safe to restart any time
EXIT_DRAINED = 75


class DrainRequested(BaseException):
    """A drain signal arrived and the in-flight state is safe to leave.

    A :class:`BaseException` on purpose: the batch runner retries
    :class:`~repro.errors.ReproError` and classifies ``Exception`` as a
    cell failure — a drain is neither, it must unwind straight to the
    entry point.
    """

    def __init__(self, reason: str = "drain", saved: bool = False) -> None:
        self.reason = reason
        #: True when a checkpoint was written just before raising
        self.saved = saved
        super().__init__(reason)


class DrainController:
    """Signal-to-flag adapter shared by every long-running command.

    ``install()`` replaces the SIGINT and SIGTERM handlers; the first
    signal sets :attr:`requested` (and remembers which signal it was),
    the second restores the previous handlers and re-raises, so an
    operator can always escalate.  ``install`` is a no-op off the main
    thread (the stdlib only allows signal handlers there), which keeps
    library callers and test harnesses safe.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signum: int | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    # -- state ----------------------------------------------------------

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Programmatic drain (tests, embedding)."""
        self.signum = signum
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    # -- wiring ---------------------------------------------------------

    def install(self) -> "DrainController":
        if threading.current_thread() is not threading.main_thread():
            logger.debug("not on the main thread; drain signals not hooked")
            return self
        for signum in (signal.SIGINT, signal.SIGTERM):
            self._previous[signum] = signal.signal(signum, self._handle)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        self._installed = False

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # second signal: stop being graceful
            logger.warning("second signal (%d): restoring default handlers",
                           signum)
            self.uninstall()
            signal.raise_signal(signum)
            return
        logger.warning(
            "signal %d: draining (finishing or checkpointing in-flight "
            "work; send again to force quit)", signum,
        )
        self.request(signum)


class DrainableHook:
    """Checkpoint-hook wrapper that turns the engine's periodic poll
    into a drain point.

    Wraps a real :class:`~repro.checkpoint.policy.CheckpointHook` (or
    ``None`` when the run is not checkpointed) and mirrors its
    interface.  ``due()`` answers True as soon as a drain is requested;
    the subsequent ``save()`` first performs the inner hook's save (when
    present) so the on-disk checkpoint is current, then raises
    :class:`DrainRequested`.
    """

    def __init__(self, inner, drain: DrainController) -> None:
        self.inner = inner
        self.drain = drain

    # CheckpointHook surface consumed by callers of the runner ----------

    @property
    def path(self):
        return self.inner.path if self.inner is not None else None

    @property
    def descriptor(self):
        return self.inner.descriptor if self.inner is not None else None

    @property
    def n_saves(self) -> int:
        return self.inner.n_saves if self.inner is not None else 0

    @property
    def last_header(self):
        return self.inner.last_header if self.inner is not None else None

    # engine-facing protocol -------------------------------------------

    def due(self, now: int) -> bool:
        if self.drain.requested:
            return True
        return self.inner is not None and self.inner.due(now)

    def wants(self, reason: str) -> bool:
        return self.inner is not None and self.inner.wants(reason)

    def save(self, sim, reason: str):
        saved = False
        header = None
        if self.inner is not None:
            header = self.inner.save(sim, reason)
            saved = True
        if self.drain.requested and reason == "interval":
            raise DrainRequested(
                f"signal {self.drain.signum}", saved=saved
            )
        return header
