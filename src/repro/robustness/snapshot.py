"""Engine-state snapshots for post-mortem diagnostics.

When the engine raises a :class:`~repro.errors.SimulationError` (or the
watchdog truncates a run), a snapshot of the scheduling and
synchronization state is captured: per-thread state, held locks and
their waiter queues, barrier arrival counts, and the core clocks.  The
snapshot is plain data (dataclasses of ints and strings) so it can be
attached to exceptions, dumped into the sweep journal as JSON, and
rendered in failure reports without keeping the simulation alive.

This module only *reads* engine attributes — it has no dependency on
:mod:`repro.sim.engine`, which imports it for error decoration.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.osmodel.thread import FINISHED


@dataclass(frozen=True)
class ThreadSnapshot:
    """One software thread at the moment of capture."""

    tid: int
    state: str
    core_id: int
    block_reason: str
    ready_time: int
    instrs: int
    spin_instrs: int
    n_yields: int
    end_time: int
    #: what the thread is spin-waiting on, e.g. ``"lock:0"`` (or "")
    spinning_on: str = ""


@dataclass(frozen=True)
class LockSnapshot:
    lock_id: int
    holder_tid: int | None
    waiter_tids: tuple[int, ...]
    n_acquires: int
    n_contended: int


@dataclass(frozen=True)
class BarrierSnapshot:
    barrier_id: int
    n_parties: int
    arrived: int
    generation: int
    waiter_tids: tuple[int, ...]


@dataclass(frozen=True)
class EngineSnapshot:
    """Complete post-mortem of one :class:`~repro.sim.engine.Simulation`."""

    cycle: int
    n_finished: int
    core_clocks: tuple[int, ...]
    threads: tuple[ThreadSnapshot, ...] = ()
    locks: tuple[LockSnapshot, ...] = field(default_factory=tuple)
    barriers: tuple[BarrierSnapshot, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        """Plain-JSON form (used by the sweep journal)."""
        return asdict(self)

    @property
    def blocked_tids(self) -> tuple[int, ...]:
        return tuple(
            t.tid for t in self.threads
            if t.state not in (FINISHED,) and t.block_reason == "sync"
        )

    def summary(self) -> str:
        """One human line: where the run was when it died."""
        states: dict[str, int] = {}
        for t in self.threads:
            states[t.state] = states.get(t.state, 0) + 1
        state_txt = ", ".join(f"{k}={v}" for k, v in sorted(states.items()))
        held = [
            f"lock {s.lock_id} held by T{s.holder_tid}"
            f" ({len(s.waiter_tids)} waiting)"
            for s in self.locks if s.holder_tid is not None
        ]
        parts = [f"cycle {self.cycle}", f"threads: {state_txt}"]
        if held:
            parts.append("; ".join(held))
        waiting = [
            f"barrier {s.barrier_id}: {s.arrived}/{s.n_parties} arrived"
            for s in self.barriers
            if s.arrived or s.waiter_tids
        ]
        if waiting:
            parts.append("; ".join(waiting))
        return " | ".join(parts)


def _spin_target(thread) -> str:
    ctx = thread.spin
    if ctx is None:
        return ""
    if ctx.kind == "lock":
        return f"lock:{ctx.obj.lock_id}"
    return f"barrier:{ctx.obj.barrier_id}"


def capture_snapshot(sim) -> EngineSnapshot:
    """Snapshot a live :class:`~repro.sim.engine.Simulation`."""
    threads = tuple(
        ThreadSnapshot(
            tid=t.tid,
            state=t.state,
            core_id=t.core_id,
            block_reason=t.block_reason,
            ready_time=t.ready_time,
            instrs=t.instrs,
            spin_instrs=t.spin_instrs,
            n_yields=t.n_yields,
            end_time=t.end_time,
            spinning_on=_spin_target(t),
        )
        for t in sim.threads
    )
    locks = tuple(
        LockSnapshot(
            lock_id=lock.lock_id,
            holder_tid=lock.holder.tid if lock.holder is not None else None,
            waiter_tids=tuple(t.tid for t in lock.waiters),
            n_acquires=lock.n_acquires,
            n_contended=lock.n_contended,
        )
        for lock in sim.sync.locks.values()
    )
    barriers = tuple(
        BarrierSnapshot(
            barrier_id=b.barrier_id,
            n_parties=b.n_parties,
            arrived=b.arrived,
            generation=b.generation,
            waiter_tids=tuple(t.tid for t in b.waiters),
        )
        for b in sim.sync.barriers.values()
    )
    clocks = tuple(core.now for core in sim.cores)
    return EngineSnapshot(
        cycle=max(clocks) if clocks else 0,
        n_finished=sum(1 for t in sim.threads if t.state == FINISHED),
        core_clocks=clocks,
        threads=threads,
        locks=locks,
        barriers=barriers,
    )
