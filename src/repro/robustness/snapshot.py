"""Engine-state snapshots for post-mortem diagnostics.

When the engine raises a :class:`~repro.errors.SimulationError` (or the
watchdog truncates a run), a snapshot of the scheduling and
synchronization state is captured: per-thread state, held locks and
their waiter queues, barrier arrival counts, and the core clocks.  The
snapshot is plain data (dataclasses of ints and strings) so it can be
attached to exceptions, dumped into the sweep journal as JSON, and
rendered in failure reports without keeping the simulation alive.

Since the checkpoint refactor the snapshot is a thin *view* over the
``state_dict()`` SimState tree: :func:`snapshot_from_state` projects
the scheduling/sync subset of a state tree (live or loaded from a
checkpoint file) into an :class:`EngineSnapshot`, and
:func:`capture_snapshot` builds that subset from a live simulation via
the same per-layer ``state_dict`` methods.

This module only *reads* engine state — it has no dependency on
:mod:`repro.sim.engine`, which imports it for error decoration.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.osmodel.thread import FINISHED


@dataclass(frozen=True)
class ThreadSnapshot:
    """One software thread at the moment of capture."""

    tid: int
    state: str
    core_id: int
    block_reason: str
    ready_time: int
    instrs: int
    spin_instrs: int
    n_yields: int
    end_time: int
    #: what the thread is spin-waiting on, e.g. ``"lock:0"`` (or "")
    spinning_on: str = ""


@dataclass(frozen=True)
class LockSnapshot:
    lock_id: int
    holder_tid: int | None
    waiter_tids: tuple[int, ...]
    n_acquires: int
    n_contended: int


@dataclass(frozen=True)
class BarrierSnapshot:
    barrier_id: int
    n_parties: int
    arrived: int
    generation: int
    waiter_tids: tuple[int, ...]


@dataclass(frozen=True)
class EngineSnapshot:
    """Complete post-mortem of one :class:`~repro.sim.engine.Simulation`."""

    cycle: int
    n_finished: int
    core_clocks: tuple[int, ...]
    threads: tuple[ThreadSnapshot, ...] = ()
    locks: tuple[LockSnapshot, ...] = field(default_factory=tuple)
    barriers: tuple[BarrierSnapshot, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        """Plain-JSON form (used by the sweep journal)."""
        return asdict(self)

    @property
    def blocked_tids(self) -> tuple[int, ...]:
        return tuple(
            t.tid for t in self.threads
            if t.state not in (FINISHED,) and t.block_reason == "sync"
        )

    def summary(self) -> str:
        """One human line: where the run was when it died."""
        states: dict[str, int] = {}
        for t in self.threads:
            states[t.state] = states.get(t.state, 0) + 1
        state_txt = ", ".join(f"{k}={v}" for k, v in sorted(states.items()))
        held = [
            f"lock {s.lock_id} held by T{s.holder_tid}"
            f" ({len(s.waiter_tids)} waiting)"
            for s in self.locks if s.holder_tid is not None
        ]
        parts = [f"cycle {self.cycle}", f"threads: {state_txt}"]
        if held:
            parts.append("; ".join(held))
        waiting = [
            f"barrier {s.barrier_id}: {s.arrived}/{s.n_parties} arrived"
            for s in self.barriers
            if s.arrived or s.waiter_tids
        ]
        if waiting:
            parts.append("; ".join(waiting))
        return " | ".join(parts)


def _spin_target(spin_state: dict | None) -> str:
    if spin_state is None:
        return ""
    return f"{spin_state['kind']}:{spin_state['obj_id']}"


def snapshot_from_state(state: dict) -> EngineSnapshot:
    """Project a SimState tree (``Simulation.state_dict()`` output, or
    the payload of a checkpoint file) into an :class:`EngineSnapshot`.

    Only the scheduling/synchronization subset is read, so a partial
    tree with just ``threads``, ``sync`` and ``cores`` suffices.
    """
    threads = tuple(
        ThreadSnapshot(
            tid=t["tid"],
            state=t["state"],
            core_id=t["core_id"],
            block_reason=t["block_reason"],
            ready_time=t["ready_time"],
            instrs=t["instrs"],
            spin_instrs=t["spin_instrs"],
            n_yields=t["n_yields"],
            end_time=t["end_time"],
            spinning_on=_spin_target(t["spin"]),
        )
        for t in state["threads"]
    )
    sync = state["sync"]
    locks = tuple(
        LockSnapshot(
            lock_id=lock["lock_id"],
            holder_tid=lock["holder"],
            waiter_tids=tuple(lock["waiters"]),
            n_acquires=lock["n_acquires"],
            n_contended=lock["n_contended"],
        )
        for lock in sync["locks"]
    )
    barriers = tuple(
        BarrierSnapshot(
            barrier_id=b["barrier_id"],
            n_parties=b["n_parties"],
            arrived=b["arrived"],
            generation=b["generation"],
            waiter_tids=tuple(b["waiters"]),
        )
        for b in sync["barriers"]
    )
    clocks = tuple(core["now"] for core in state["cores"])
    return EngineSnapshot(
        cycle=max(clocks) if clocks else 0,
        n_finished=sum(1 for t in threads if t.state == FINISHED),
        core_clocks=clocks,
        threads=threads,
        locks=locks,
        barriers=barriers,
    )


def capture_snapshot(sim) -> EngineSnapshot:
    """Snapshot a live :class:`~repro.sim.engine.Simulation`.

    Builds only the scheduling/sync subset of the state tree (cheap —
    no cache or DRAM serialization) and projects it through
    :func:`snapshot_from_state`, so the post-mortem surface and the
    checkpoint format can never drift apart.
    """
    return snapshot_from_state({
        "threads": [thread.state_dict() for thread in sim.threads],
        "sync": sim.sync.state_dict(),
        "cores": [{"now": core.now} for core in sim.cores],
    })
