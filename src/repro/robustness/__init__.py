"""Robustness subsystem: fault injection, engine snapshots, journals.

Three pieces that together let suite sweeps survive (and deliberately
provoke) pathological runs:

* :mod:`repro.robustness.faults` — a seeded :class:`FaultInjector` that
  corrupts traces, drops lock releases, skews barrier arrivals, and
  spikes memory latency, so deadlock/livelock/parse-error paths can be
  exercised deterministically on demand;
* :mod:`repro.robustness.snapshot` — :class:`EngineSnapshot`, a
  JSON-serializable post-mortem of the engine (per-thread state, held
  locks, barrier counts, core clocks) attached to every
  :class:`~repro.errors.SimulationError`;
* :mod:`repro.robustness.journal` — :class:`SweepJournal`, the
  checkpoint/resume record of a suite sweep.

See ``docs/robustness.md`` for the full contract.
"""

from repro.robustness.faults import FaultInjector, make_fault
from repro.robustness.journal import SweepJournal
from repro.robustness.snapshot import (
    BarrierSnapshot,
    EngineSnapshot,
    LockSnapshot,
    ThreadSnapshot,
    capture_snapshot,
)

__all__ = [
    "BarrierSnapshot",
    "EngineSnapshot",
    "FaultInjector",
    "LockSnapshot",
    "SweepJournal",
    "ThreadSnapshot",
    "capture_snapshot",
    "make_fault",
]
