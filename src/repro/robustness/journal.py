"""Checkpoint/resume journal for suite sweeps.

One JSON file records the outcome of every (benchmark, thread-count)
cell of a sweep.  The batch runner writes the journal after *each* cell
(atomically: temp file + ``os.replace``), so a crashed or aborted sweep
can resume exactly where it stopped, and a sweep with failures can be
re-run with ``--resume`` to retry only the failed cells.

Format (``version`` 1)::

    {
      "version": 1,
      "cells": {
        "cholesky:16": {
          "status": "ok",                  # or "failed"
          "attempts": 1,
          "total_cycles": 123456,          # ok cells
          "truncated": false,
          "error": "...",                  # failed cells
          "error_type": "DeadlockError",
          "snapshot": {...}                # engine post-mortem, if any
        },
        ...
      }
    }
"""

from __future__ import annotations

import json
import logging
import os
import tempfile

from repro._version import repro_version

logger = logging.getLogger(__name__)

JOURNAL_VERSION = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"


def cell_key(name: str, n_threads: int) -> str:
    return f"{name}:{n_threads}"


class SweepJournal:
    """Persistent per-cell sweep state."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.cells: dict[str, dict] = {}
        # Journal writes must stay in the process that opened it: the
        # parallel sweep driver ships a journal-less runner to its
        # workers and appends records in the parent as results come
        # back, so two finishing cells can never interleave a write.
        self._owner_pid = os.getpid()
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        with open(path) as handle:
            data = json.load(handle)
        version = data.get("version")
        if version != JOURNAL_VERSION:
            raise ValueError(
                f"unsupported journal version {version!r} in {path}"
            )
        self.cells = dict(data.get("cells", {}))
        logger.info("loaded journal %s with %d cells", path, len(self.cells))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def status(self, name: str, n_threads: int) -> str | None:
        entry = self.cells.get(cell_key(name, n_threads))
        return entry["status"] if entry else None

    def entry(self, name: str, n_threads: int) -> dict | None:
        return self.cells.get(cell_key(name, n_threads))

    def completed(self, name: str, n_threads: int) -> bool:
        """True when the cell already succeeded (resume skips it)."""
        return self.status(name, n_threads) == STATUS_OK

    @property
    def failed_keys(self) -> list[str]:
        return sorted(
            key for key, entry in self.cells.items()
            if entry["status"] == STATUS_FAILED
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def record_ok(
        self,
        name: str,
        n_threads: int,
        attempts: int,
        total_cycles: int,
        truncated: bool = False,
        metrics: dict[str, int] | None = None,
    ) -> None:
        entry = {
            "status": STATUS_OK,
            "attempts": attempts,
            "total_cycles": total_cycles,
            "truncated": truncated,
        }
        # written only when metrics collection is on, so a sweep with
        # observability disabled journals byte-identically to pre-metrics
        # versions; the dict arrives in deterministic insertion order
        if metrics is not None:
            entry["metrics"] = metrics
        self.cells[cell_key(name, n_threads)] = entry
        self.save()

    def record_failure(
        self,
        name: str,
        n_threads: int,
        attempts: int,
        error: str,
        error_type: str,
        snapshot: dict | None = None,
    ) -> None:
        self.cells[cell_key(name, n_threads)] = {
            "status": STATUS_FAILED,
            "attempts": attempts,
            "error": error,
            "error_type": error_type,
            "snapshot": snapshot,
        }
        self.save()

    def save(self) -> None:
        """Atomic write so a crash mid-save never corrupts the journal."""
        if os.getpid() != self._owner_pid:
            raise RuntimeError(
                "journal writes must go through the owning (parent) "
                f"process (owner pid {self._owner_pid}, "
                f"caller pid {os.getpid()})"
            )
        if self.path is None:
            return
        # The package version is provenance metadata only: readers key
        # off ``version`` (the journal schema) and ignore unknown keys,
        # and serial and parallel sweeps stamp it identically, so the
        # byte-for-byte journal differential is unaffected.
        payload = {
            "version": JOURNAL_VERSION,
            "repro_version": repro_version(),
            "cells": self.cells,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=".journal-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
