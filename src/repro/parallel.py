"""Process-pool execution layer for suite sweeps.

Sweep cells — one (benchmark, thread-count) experiment each — are
embarrassingly parallel: every cell's result derives only from its
:class:`~repro.workloads.spec.BenchmarkSpec` and the machine
configuration, and all workload randomness is seeded per cell from
:func:`repro.workloads.generators.seed_for`.  This module fans cells
out across worker processes while keeping the *observable* behaviour of
the serial :class:`~repro.experiments.runner.BatchRunner` path exactly:

* **determinism** — a cell computes the same speedup stack in any
  worker, in any order, at any ``--jobs`` value, because nothing about
  a cell's inputs depends on the process running it (the differential
  suite under ``tests/parallel/`` locks this down bit-for-bit);
* **ordered collection** — results are collected and journaled in
  submission order, so the journal file is byte-identical to a serial
  sweep's regardless of completion order;
* **parent-only journal writes** — workers never see the journal;
  every append happens in the parent as a cell's result is collected
  (the journal additionally refuses to save from a foreign process,
  see :class:`~repro.robustness.journal.SweepJournal`);
* **crash containment** — a worker dying (OOM kill, segfault,
  interpreter abort) breaks the pool; the pool is rebuilt and the
  affected cells are resubmitted or recorded as failures under the
  existing retry/skip/abort :class:`~repro.experiments.runner.RunPolicy`.

In-simulation failures (deadlock, livelock, parse errors) never cross
the process boundary as exceptions: the worker classifies them into a
:class:`CellResult` exactly like ``BatchRunner.run_cell`` does, so the
retry/backoff behaviour runs inside the worker and only picklable value
objects travel over the pipe.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from concurrent.futures import ProcessPoolExecutor, BrokenExecutor
from dataclasses import dataclass, replace

from repro.config import MachineConfig, machine_from_dict, machine_to_dict

from repro.accounting.report import AccountingReport
from repro.core.stack import SpeedupStack
from repro.errors import ExperimentError
from repro.experiments.runner import (
    BatchRunner,
    CELL_FAILED,
    CELL_OK,
    CELL_RESUMED,
    CellOutcome,
    RunPolicy,
    SweepReport,
)
from repro.observability.events import (
    CellFinished,
    CellStarted,
    SweepFinished,
    SweepStarted,
    WorkerCrashed,
)
from repro.observability.metrics import harvest_cell_metrics
from repro.robustness.faults import FAULT_KINDS
from repro.robustness.journal import SweepJournal
from repro.workloads.spec import BenchmarkSpec

logger = logging.getLogger(__name__)

#: test hook: a cell key in this environment variable makes the worker
#: that picks it up die hard (``os._exit``), simulating an external
#: worker kill (OOM killer, segfault) for the crash-recovery tests
_KILL_ENV = "REPRO_TEST_KILL_CELL"

#: error type recorded for cells lost to a dead worker process
WORKER_CRASH = "WorkerCrashError"


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one sweep cell.

    Carries the full :class:`BenchmarkSpec` (a frozen value object), not
    a name, so ad-hoc specs — test fixtures, scaled variants — work
    without a suite lookup in the worker.  Faults are carried by *kind*
    (a :data:`~repro.robustness.faults.FAULT_KINDS` name) plus seed and
    rebuilt inside the worker: fault callables close over RNG state and
    do not pickle.
    """

    spec: BenchmarkSpec
    n_threads: int
    scale: float = 1.0
    #: named fault injected into this cell (None = healthy cell)
    fault: str | None = None
    fault_seed: int = 0
    #: base machine as canonical JSON of its dict form (None = the
    #: paper-default machine).  A string rather than a MachineConfig so
    #: the cell stays hashable, pickles as plain data, and keys the
    #: worker-side runner cache directly.
    machine_json: str | None = None

    def __post_init__(self) -> None:
        if self.fault is not None and self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault!r}; "
                f"expected one of {FAULT_KINDS}"
            )

    @property
    def machine(self) -> MachineConfig | None:
        return (
            machine_from_dict(json.loads(self.machine_json))
            if self.machine_json is not None
            else None
        )

    @property
    def name(self) -> str:
        return self.spec.full_name

    @property
    def key(self) -> str:
        return f"{self.spec.full_name}:{self.n_threads}"


@dataclass(frozen=True)
class CellResult:
    """Picklable outcome of one worker-executed cell.

    The engine-level :class:`~repro.sim.engine.SimResult` holds live
    generators and cannot cross a process boundary; this carries the
    derived values every consumer (CLI, journal, differential tests)
    actually reads: the full :class:`SpeedupStack`, the per-thread
    :class:`AccountingReport`, and the instruction counts behind the
    parallelization-overhead metric.
    """

    name: str
    n_threads: int
    status: str
    attempts: int
    stack: SpeedupStack | None = None
    report: AccountingReport | None = None
    total_cycles: int = 0
    truncated: bool = False
    mt_instrs: int = 0
    mt_spin_instrs: int = 0
    st_instrs: int = 0
    error: str | None = None
    error_type: str | None = None
    snapshot: dict | None = None
    #: flat deterministic ``sim.*`` metrics harvested in the worker
    #: (None unless the sweep runs with metrics collection enabled);
    #: a plain dict of ints — the only metrics shape that pickles
    #: cheaply and journals byte-deterministically
    metrics: dict | None = None

    @property
    def key(self) -> str:
        return f"{self.name}:{self.n_threads}"

    @property
    def actual_speedup(self) -> float | None:
        return self.stack.actual_speedup if self.stack else None

    @property
    def estimated_speedup(self) -> float | None:
        return self.stack.estimated_speedup if self.stack else None

    @property
    def parallelization_overhead(self) -> float | None:
        """Same definition as
        :attr:`~repro.experiments.runner.ExperimentResult.parallelization_overhead`."""
        if self.st_instrs == 0:
            return None
        return (self.mt_instrs - self.mt_spin_instrs - self.st_instrs) / (
            self.st_instrs
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: per-process BatchRunner cache, keyed by (policy, scale, machine):
#: keeps the single-threaded reference memo warm across all cells a
#: worker runs
_WORKER_RUNNERS: dict[tuple, BatchRunner] = {}


def _worker_runner(
    policy: RunPolicy, scale: float, machine_json: str | None
) -> BatchRunner:
    key = (policy, scale, machine_json)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        machine_factory = None
        if machine_json is not None:
            machine_factory = machine_from_dict(
                json.loads(machine_json)
            ).with_cores
        runner = BatchRunner(
            policy=policy, scale=scale, machine_factory=machine_factory
        )
        _WORKER_RUNNERS[key] = runner
    return runner


def run_cell_task(
    cell: CellSpec, policy: RunPolicy, collect_metrics: bool = False
) -> CellResult:
    """Execute one cell in the current process (the pool's entry point).

    Runs the standard ``BatchRunner.run_cell`` protocol — fault
    application, retry-with-backoff, outcome classification — and
    reduces the outcome to a picklable :class:`CellResult`.  ``abort``
    is enforced by the parent (a worker must never raise across the
    pipe), so it is downgraded to ``skip`` here.

    With ``collect_metrics`` the worker harvests the cell's flat
    ``sim.*`` metrics dict (the live ``chip``/``threads`` objects the
    harvest reads do not pickle, so harvesting must happen on this side
    of the process boundary) using the same
    :func:`~repro.observability.metrics.harvest_cell_metrics` the
    serial runner uses — which is what makes serial and parallel
    journals byte-identical even with metrics enabled.
    """
    if os.environ.get(_KILL_ENV) == cell.key:
        os._exit(17)  # simulated hard worker death (test hook)
    if policy.on_error == "abort":
        policy = replace(policy, on_error="skip")
    runner = _worker_runner(policy, cell.scale, cell.machine_json)
    if cell.fault is not None:
        # ship (kind, seed), not a closure: run_cell rebuilds the fault
        # itself and can then describe it in checkpoint descriptors for
        # crash-resume (a closure would be opaque and non-resumable)
        runner.fault_plan = {cell.key: (cell.fault, cell.fault_seed)}
    else:
        runner.fault_plan = {}
    outcome = runner.run_cell(cell.spec, cell.n_threads)
    if outcome.status == CELL_OK:
        result = outcome.result
        assert result is not None
        return CellResult(
            name=outcome.name,
            n_threads=outcome.n_threads,
            status=CELL_OK,
            attempts=outcome.attempts,
            stack=result.stack,
            report=result.report,
            total_cycles=result.mt_result.total_cycles,
            truncated=result.mt_result.truncated,
            mt_instrs=result.mt_result.total_instrs,
            mt_spin_instrs=result.mt_result.total_spin_instrs,
            st_instrs=(
                result.st_result.total_instrs if result.st_result else 0
            ),
            metrics=(
                harvest_cell_metrics(result) if collect_metrics else None
            ),
        )
    return CellResult(
        name=outcome.name,
        n_threads=outcome.n_threads,
        status=CELL_FAILED,
        attempts=outcome.attempts,
        error=outcome.error,
        error_type=outcome.error_type,
        snapshot=outcome.snapshot,
    )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


def _crashed_result(cell: CellSpec, attempts: int) -> CellResult:
    return CellResult(
        name=cell.name,
        n_threads=cell.n_threads,
        status=CELL_FAILED,
        attempts=attempts,
        error="worker process died while running this cell",
        error_type=WORKER_CRASH,
    )


def _run_quarantined(
    cell: CellSpec, policy: RunPolicy, max_attempts: int,
    collect_metrics: bool = False,
) -> CellResult:
    """Re-run one crash suspect alone in single-worker pools.

    With exactly one task per pool, a broken pool attributes the crash
    to this cell beyond doubt; an innocent bystander of someone else's
    crash simply completes on its first quarantined attempt.
    """
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        with ProcessPoolExecutor(max_workers=1) as pool:
            try:
                return pool.submit(
                    run_cell_task, cell, policy, collect_metrics
                ).result()
            except BrokenExecutor:
                logger.warning(
                    "cell %s crashed its worker (quarantined attempt %d/%d)",
                    cell.key, attempts, max_attempts,
                )
    return _crashed_result(cell, attempts)


def _execute_cells(
    pending: list[tuple[int, CellSpec]],
    jobs: int,
    policy: RunPolicy,
    collect_metrics: bool = False,
    bus=None,
    drain=None,
) -> tuple[dict[int, CellResult], bool]:
    """Run cells on a pool; survive worker deaths by rebuilding it.

    When a worker dies, *every* unfinished future fails with
    :class:`BrokenExecutor` and the true victim is not directly
    observable.  The executor dispatches in submission order, so only
    the first ``jobs`` unfinished cells can have been running on the
    dead worker: those suspects are re-run one-per-pool
    (:func:`_run_quarantined`) for exact attribution — a cell that
    keeps killing its private worker becomes a :data:`WORKER_CRASH`
    failure once it exhausts the policy's retry budget, innocent
    bystanders just finish — while the still-queued remainder is
    resubmitted to a rebuilt shared pool.

    ``drain`` (a :class:`~repro.robustness.drain.DrainController`)
    makes the pool signal-aware: on a drain request, queued cells are
    cancelled, in-flight cells run to completion (pool workers cannot
    be unwound mid-cell), and the second element of the returned tuple
    is True — collected results cover exactly the cells that finished.
    """
    results: dict[int, CellResult] = {}
    interrupted = False
    max_crash_attempts = 1 + (
        policy.max_retries if policy.on_error == "retry" else 0
    )
    # Live progress: journaling stays in submission order, but the bus
    # hears about each cell as its future actually completes — possibly
    # from the executor's callback thread, so emissions are serialized
    # under a lock and deduplicated per cell key.
    notified: set[str] = set()
    notify_lock = threading.Lock()

    def _notify_done(cell: CellSpec, future) -> None:
        try:
            result = future.result()
        except BrokenExecutor:
            return  # crash handling (and its events) happen in the collector
        with notify_lock:
            if cell.key in notified:
                return
            notified.add(cell.key)
        bus.emit(CellFinished(cell.key, result.status, result.attempts))

    queue = list(pending)
    while queue:
        requeue: list[tuple[int, CellSpec]] = []
        suspects: list[tuple[int, CellSpec]] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = []
            for index, cell in queue:
                future = pool.submit(
                    run_cell_task, cell, policy, collect_metrics
                )
                if bus is not None:
                    bus.emit(CellStarted(cell.key, 1))
                    future.add_done_callback(
                        lambda f, c=cell: _notify_done(c, f)
                    )
                futures.append((index, cell, future))
            for index, cell, future in futures:
                if (
                    not interrupted
                    and drain is not None and drain.requested
                ):
                    interrupted = True
                    pool.shutdown(wait=False, cancel_futures=True)
                    logger.warning(
                        "drain: cancelled queued cells; waiting for "
                        "in-flight cells to finish"
                    )
                if interrupted and future.cancelled():
                    continue
                try:
                    results[index] = future.result()
                except BrokenExecutor:
                    if len(suspects) < jobs:
                        suspects.append((index, cell))
                    else:
                        requeue.append((index, cell))
        if interrupted:
            return results, True
        if suspects:
            logger.warning(
                "worker pool broke; quarantining %d suspect cell(s), "
                "requeueing %d", len(suspects), len(requeue),
            )
            if bus is not None:
                bus.emit(WorkerCrashed(
                    tuple(cell.key for _, cell in suspects)
                ))
        for index, cell in suspects:
            results[index] = _run_quarantined(
                cell, policy, max_crash_attempts, collect_metrics
            )
            if bus is not None:
                bus.emit(CellFinished(
                    cell.key, results[index].status, results[index].attempts
                ))
        queue = requeue
    return results, interrupted


def run_parallel_sweep(
    cells: list[CellSpec],
    jobs: int,
    policy: RunPolicy | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    bus=None,
    metrics=None,
    drain=None,
) -> SweepReport:
    """Fan a sweep out over ``jobs`` worker processes.

    The drop-in parallel counterpart of
    :meth:`~repro.experiments.runner.BatchRunner.run_sweep`: same
    resume semantics, same journal records (written by the parent, in
    submission order), same :class:`SweepReport` shape — each ok/failed
    outcome's ``result`` is a :class:`CellResult` instead of an
    ``ExperimentResult``, but exposes the same ``stack`` /
    ``actual_speedup`` surface the CLI and tests consume.  With
    ``on_error="abort"`` the first failed cell raises
    :class:`~repro.errors.ExperimentError` after in-order journaling of
    the cells before it.

    ``bus`` receives sweep/cell lifecycle events in the parent —
    cell-finished events fire as futures complete (live progress), while
    journaling stays in submission order.  ``metrics`` turns on
    worker-side harvest: each ok cell's ``sim.*`` dict is absorbed into
    the registry and journaled, exactly as the serial runner does.

    ``drain`` makes the sweep signal-aware: a SIGINT/SIGTERM cancels
    the queued cells, lets in-flight cells finish, journals everything
    that completed, and returns with ``report.interrupted`` set — a
    ``--resume`` re-run finishes the rest.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    policy = policy or RunPolicy()
    journal = journal or SweepJournal(None)

    outcomes: list[CellOutcome | None] = []
    pending: list[tuple[int, CellSpec]] = []
    if bus is not None:
        bus.emit(SweepStarted(len(cells), jobs))
    for index, cell in enumerate(cells):
        if resume and journal.completed(cell.name, cell.n_threads):
            logger.info("resume: skipping completed cell %s", cell.key)
            outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_RESUMED,
            ))
            if bus is not None:
                bus.emit(CellFinished(cell.key, CELL_RESUMED, 0))
        else:
            outcomes.append(None)
            pending.append((index, cell))

    results, interrupted = _execute_cells(
        pending, jobs, policy,
        collect_metrics=metrics is not None, bus=bus, drain=drain,
    )

    report = SweepReport(interrupted=interrupted)
    for index, outcome in enumerate(outcomes):
        if outcome is not None:  # resumed
            report.outcomes.append(outcome)
            continue
        result = results.get(index)
        if result is None:
            # drained before this cell ran: nothing to journal; a
            # --resume re-run picks it up
            report.interrupted = True
            continue
        if result.status == CELL_FAILED and policy.on_error == "abort":
            # match the serial runner: abort raises before the failing
            # cell's record hits the journal
            raise ExperimentError(
                result.name, result.n_threads,
                result.error or "cell failed",
            )
        if result.status == CELL_OK:
            journal.record_ok(
                result.name, result.n_threads,
                attempts=result.attempts,
                total_cycles=result.total_cycles,
                truncated=result.truncated,
                metrics=result.metrics,
            )
            if metrics is not None and result.metrics is not None:
                metrics.absorb(result.metrics)
                metrics.counter("runtime.cells_ok").inc()
        else:
            journal.record_failure(
                result.name, result.n_threads,
                attempts=result.attempts,
                error=result.error or "",
                error_type=result.error_type or "",
                snapshot=result.snapshot,
            )
            if metrics is not None:
                metrics.counter("runtime.cells_failed").inc()
                if result.error_type == WORKER_CRASH:
                    metrics.counter("runtime.worker_crashes").inc()
        report.outcomes.append(CellOutcome(
            name=result.name,
            n_threads=result.n_threads,
            status=result.status,
            attempts=result.attempts,
            result=result if result.status == CELL_OK else None,
            error=result.error,
            error_type=result.error_type,
            snapshot=result.snapshot,
        ))
    if bus is not None:
        bus.emit(SweepFinished(
            len(report.completed), len(report.failures),
            len(report.resumed),
        ))
    logger.info(
        "parallel sweep done (%d jobs): %d ok, %d resumed, %d failed",
        jobs, len(report.completed), len(report.resumed),
        len(report.failures),
    )
    return report


def cells_from_sweep(
    sweep: list[tuple[BenchmarkSpec, int]],
    scale: float = 1.0,
    fault_kinds: dict[str, str] | None = None,
    machine: MachineConfig | None = None,
) -> list[CellSpec]:
    """Adapt ``suite.sweep_cells`` output (and the CLI's fault-kind
    plan) to :class:`CellSpec` values.  ``machine`` (when given) is the
    base machine each worker re-cores per cell; ``None`` keeps the
    paper-default machine and produces byte-identical cells to older
    callers."""
    fault_kinds = fault_kinds or {}
    machine_json = (
        json.dumps(machine_to_dict(machine), sort_keys=True)
        if machine is not None
        else None
    )
    return [
        CellSpec(
            spec=spec,
            n_threads=n_threads,
            scale=scale,
            fault=fault_kinds.get(f"{spec.full_name}:{n_threads}"),
            machine_json=machine_json,
        )
        for spec, n_threads in sweep
    ]
