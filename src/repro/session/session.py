"""Interactive simulation sessions: step, peek, perturb, continue.

The paper's whole point is *diagnosis* — a speedup stack tells you
which interference component to chase next — which calls for
poke-and-observe loops, not just batch sweeps.  :class:`Session` wraps
a :class:`~repro.session.kernel.SimulationKernel` into the
notebook-usable object the ROADMAP describes::

    s = Session.from_config("cholesky", 4, scale=0.2)
    s.step(50_000)                  # advance ~50k simulated cycles
    print(s.render_stack())         # the partial speedup stack so far
    s.inject("llc_flush")           # perturb, then keep going
    s.step(50_000)
    s.run()                         # to completion
    print(s.render_stack())

Determinism contract
--------------------

* **Stepping is free.**  ``step(N)`` then ``step(M)`` is byte-identical
  to ``step(N+M)`` and to the one-shot batch run, on every engine
  backend (pausing never mutates state; see ``Simulation.run``'s
  ``pause_at``).  ``peek_stack`` is a pure read.
* **Snapshots are free.**  ``snapshot()`` → build a fresh session →
  ``load()`` continues byte-identically, including across an
  engine-backend hop (checkpoint state is backend-portable).
* **Perturbations fork the experiment.**  ``inject``/``swap`` are
  deterministic — replaying the same script gives the same numbers —
  but the perturbed run no longer corresponds to any
  :class:`~repro.config.ExperimentConfig`, so the session stops
  offering the actual-speedup reference (``stack()`` comes back
  estimate-only) and refuses to :meth:`save` checkpoint files that a
  config-hash-guarded resume would wrongly trust.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.accounting.report import render_partial_stack
from repro.checkpoint.format import config_hash, read_header
from repro.checkpoint.resume import (
    cell_descriptor,
    descriptor_diff,
    resume_simulation,
)
from repro.components.registry import resolve
from repro.config import ExperimentConfig, MachineConfig, load_config
from repro.core.rendering import render_stack
from repro.core.stack import SpeedupStack, build_stack
from repro.errors import ConfigError
from repro.osmodel.thread import FINISHED
from repro.session.kernel import SimulationKernel
from repro.sim.engine import SimResult
from repro.workloads.spec import BenchmarkSpec, build_program

#: mid-run fault injections offered by :meth:`Session.inject`
PERTURBATION_KINDS = ("llc_flush", "mem_spike")

#: registry kinds :meth:`Session.swap` can hot-swap mid-run
SWAPPABLE_KINDS = ("scheduler", "spin_detector")


def _as_experiment(experiment) -> ExperimentConfig:
    if experiment is None:
        return ExperimentConfig()
    if isinstance(experiment, (str, Path)):
        return load_config(experiment)
    return experiment


class Session:
    """One interactive simulated run (see the module docstring)."""

    def __init__(
        self,
        kernel: SimulationKernel,
        spec: BenchmarkSpec,
        scale: float,
        *,
        experiment: ExperimentConfig | None = None,
        bus=None,
        descriptor: dict[str, Any] | None = None,
    ) -> None:
        self.kernel = kernel
        self.spec = spec
        self.scale = scale
        self.experiment = experiment
        #: observability EventBus when the session was built with
        #: ``events=True``; all events land in :attr:`events`
        self.bus = bus
        #: checkpoint-descriptor identity of this run (None once the
        #: session can no longer be described by one — see perturbations)
        self.descriptor = descriptor
        #: recorded events (only populated with ``events=True``)
        self.events: list = []
        #: applied perturbations as ``"kind@cycle"`` strings, in order
        self.perturbations: list[str] = []
        self._ts_cache: int | None = None
        self._ts_known = False
        if bus is not None:
            bus.subscribe_all(self.events.append)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        benchmark: str,
        n_threads: int | None = None,
        *,
        experiment: ExperimentConfig | str | Path | None = None,
        scale: float | None = None,
        engine: str | None = None,
        max_cycles: int | None = None,
        livelock_window: int | None = None,
        events: bool = False,
    ) -> "Session":
        """Fresh session for one (benchmark, N) cell.

        ``experiment`` is an :class:`~repro.config.ExperimentConfig` or
        a path to one (TOML/JSON); explicit keyword overrides win over
        its values, exactly like the CLI's ``--config`` flags.
        ``events=True`` attaches an observability bus whose events
        accumulate on :attr:`Session.events`.
        """
        from repro.workloads.suite import by_name

        experiment = _as_experiment(experiment)
        workload, run = experiment.workload, experiment.run
        if scale is not None:
            workload = replace(workload, scale=scale)
        if engine is not None:
            run = replace(run, engine=engine)
        if max_cycles is not None:
            run = replace(run, max_cycles=max_cycles)
        if livelock_window is not None:
            run = replace(run, livelock_window=livelock_window)
        experiment = replace(experiment, workload=workload, run=run)
        if n_threads is None:
            n_threads = workload.thread_counts[0]
        spec = by_name(benchmark)
        bus = None
        if events:
            from repro.observability.events import EventBus

            bus = EventBus()
        kernel = SimulationKernel.setup(
            experiment, spec.full_name, n_threads, bus=bus,
        )
        descriptor = cell_descriptor(
            experiment.machine.with_cores(n_threads),
            spec.full_name, n_threads, workload.scale,
            max_cycles=run.max_cycles,
            livelock_window=run.livelock_window,
        )
        return cls(
            kernel, spec, workload.scale,
            experiment=experiment, bus=bus, descriptor=descriptor,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        *,
        experiment: ExperimentConfig | str | Path | None = None,
        engine: str | None = None,
        events: bool = False,
    ) -> "Session":
        """Session continuing a checkpointed run.

        Without ``experiment`` the run resumes under exactly the
        parameters recorded in the checkpoint's descriptor.  With one,
        the descriptor is checked against the config first — a mismatch
        raises :class:`~repro.errors.ConfigError` naming every
        differing field (not just the opaque hash) — and the config's
        explicit watchdog limits override the saved ones (the way to
        continue a max-cycles-truncated run under a raised budget).
        """
        from repro.workloads.suite import by_name

        header = read_header(path)
        saved = header["descriptor"]
        max_cycles = saved.get("max_cycles")
        livelock_window = saved.get("livelock_window")
        resume_engine = "reference" if engine is None else engine
        if experiment is not None:
            experiment = _as_experiment(experiment)
            # Watchdog limits are run parameters, not experiment
            # identity (cf. ``repro stack --resume-from``): the check
            # uses the *saved* limits, and the config's explicit limits
            # override them for the continuation below.
            expected = cell_descriptor(
                experiment.machine.with_cores(saved["n_threads"]),
                saved["benchmark"], saved["n_threads"],
                experiment.workload.scale,
                fault=saved.get("fault"),
                max_cycles=max_cycles,
                livelock_window=livelock_window,
            )
            if config_hash(expected) != header.get("config_hash"):
                diffs = descriptor_diff(expected, saved)
                detail = "; ".join(diffs) if diffs else "hash-only mismatch"
                first = diffs[0].split(":", 1)[0] if diffs else None
                raise ConfigError(
                    f"checkpoint {path} belongs to a different experiment "
                    f"than the supplied config; mismatched fields: {detail}",
                    field=first,
                )
            if experiment.run.max_cycles is not None:
                max_cycles = experiment.run.max_cycles
            if experiment.run.livelock_window is not None:
                livelock_window = experiment.run.livelock_window
            if engine is None:
                resume_engine = experiment.run.engine
        bus = None
        if events:
            from repro.observability.events import EventBus

            bus = EventBus()
        sim, header = resume_simulation(path, bus=bus, engine=resume_engine)
        kernel = SimulationKernel.from_simulation(
            sim,
            max_cycles=max_cycles,
            livelock_window=livelock_window,
            on_timeout=(
                "truncate"
                if max_cycles is not None or livelock_window is not None
                else "raise"
            ),
        )
        session = cls(
            kernel, by_name(saved["benchmark"]), saved["scale"],
            experiment=experiment, bus=bus, descriptor=saved,
        )
        return session

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Frontier simulated cycle."""
        return self.kernel.cycle

    @property
    def done(self) -> bool:
        return self.kernel.done

    @property
    def n_threads(self) -> int:
        return self.kernel.program.n_threads

    @property
    def result(self) -> SimResult | None:
        return self.kernel.result

    def step(self, cycles: int | None = 10_000) -> "Session":
        """Advance ~``cycles`` simulated cycles (None = to completion);
        returns the session for chaining."""
        self.kernel.step(cycles)
        return self

    def run(self) -> "Session":
        """Run to completion."""
        self.kernel.finish()
        return self

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def peek_stack(self) -> SpeedupStack | None:
        """The speedup stack *so far* (None without accounting).

        Mid-run, unfinished threads count as ending at the frontier
        cycle — the same partial-run view ``repro inspect`` derives
        from a checkpoint.  Pure: peeking never perturbs the run.
        """
        report = self.kernel.peek_report()
        if report is None:
            return None
        return build_stack(self.spec.full_name, report)

    def stack(self) -> SpeedupStack:
        """The final speedup stack (running to completion if needed).

        On an unperturbed session the single-threaded reference run is
        measured (memoized) so the stack carries the actual speedup,
        byte-identical to ``run_experiment``; a perturbed run matches
        no measurable reference, so its stack is estimate-only.
        """
        self.kernel.finish()
        report = self.kernel.report()
        ts = None if self.perturbations else self._reference_cycles()
        return build_stack(self.spec.full_name, report, ts_cycles=ts)

    def render_stack(self, width: int = 40) -> str:
        """Rendered stack: partial (with provenance) mid-run, final
        once done — the formatter shared with ``repro inspect``."""
        if self.done:
            return render_stack(self.stack(), width=width)
        stack = self.peek_stack()
        if stack is None:
            raise ConfigError(
                "session carries no accounting hardware; no stack to render"
            )
        return render_partial_stack(stack, cycle=self.cycle, reason="paused")

    def counters(self) -> dict:
        """Live accountant counter snapshot (the raw per-core counters
        behind the stack components); empty without accounting."""
        accountant = self.kernel.accountant
        if not accountant.enabled:
            return {}
        return accountant.snapshot()

    def status(self) -> dict:
        """Machine-readable progress summary."""
        sim = self.kernel.sim
        finished = sum(1 for t in sim.threads if t.state == FINISHED)
        return {
            "benchmark": self.spec.full_name,
            "n_threads": self.n_threads,
            "engine": self.kernel.engine,
            "cycle": self.cycle,
            "done": self.done,
            "threads_finished": finished,
            "instrs": sum(t.instrs for t in sim.threads),
            "perturbations": list(self.perturbations),
        }

    def _reference_cycles(self) -> int | None:
        """Memoized single-threaded reference time Ts (None when the
        reference run itself hit the watchdog)."""
        if not self._ts_known:
            kernel = SimulationKernel(
                self.kernel.machine.with_cores(1),
                build_program(self.spec, 1, scale=self.scale),
                accounted=False,
                engine=self.kernel.engine,
                max_cycles=self.kernel.max_cycles,
                livelock_window=self.kernel.livelock_window,
                on_timeout=self.kernel.on_timeout,
            )
            st_result = kernel.finish()
            self._ts_cache = (
                None if st_result.truncated else st_result.total_cycles
            )
            self._ts_known = True
        return self._ts_cache

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full engine state tree (in-memory; never mutates)."""
        return self.kernel.snapshot()

    def load(self, state: dict) -> "Session":
        """Restore a :meth:`snapshot` tree onto this *fresh* session."""
        self.kernel.load(state)
        return self

    def save(self, path: str | Path, *, reason: str = "manual") -> dict:
        """Write a standard checkpoint file resumable by
        ``Session.from_checkpoint`` / ``repro stack --resume-from``."""
        if self.perturbations:
            raise ConfigError(
                "a perturbed session no longer matches its config "
                f"descriptor (applied: {', '.join(self.perturbations)}); "
                "refusing to save a checkpoint that a config-hash-guarded "
                "resume would wrongly trust"
            )
        if self.descriptor is None:
            raise ConfigError(
                "session has no cell descriptor; cannot save a resumable "
                "checkpoint"
            )
        return self.kernel.save(path, self.descriptor, reason=reason)

    # ------------------------------------------------------------------
    # perturbations
    # ------------------------------------------------------------------

    def _pre_perturb(self, what: str) -> None:
        # Check the live thread states too: a load() of an end-of-run
        # snapshot leaves the kernel's result unset, but the run is
        # still over — there is nothing left to perturb.
        if self.done or all(
            t.state == FINISHED for t in self.kernel.sim.threads
        ):
            raise ConfigError(
                f"cannot {what}: the run has already completed"
            )

    def inject(self, kind: str, *, factor: float = 2.0) -> "Session":
        """Inject a mid-run fault at the current step boundary.

        * ``"llc_flush"`` — invalidate every LLC line (cold-cache
          shock; timing-only, the coherent values live elsewhere);
        * ``"mem_spike"`` — scale DRAM timing (``t_cas``/``t_rcd``/
          ``t_rp``/``bus_cycles``) by ``factor``, preserving bank and
          row-buffer state (the live analogue of the pre-run
          ``mem-spike`` fault).

        Deterministic but diverging: see the module docstring.
        """
        self._pre_perturb(f"inject {kind!r}")
        chip = self.kernel.sim.chip
        if kind == "llc_flush":
            chip.llc.reset()
        elif kind == "mem_spike":
            memory = chip.memory
            cfg = memory.config
            memory.config = replace(
                cfg,
                t_cas=max(1, int(cfg.t_cas * factor)),
                t_rcd=max(1, int(cfg.t_rcd * factor)),
                t_rp=max(1, int(cfg.t_rp * factor)),
                bus_cycles=max(1, int(cfg.bus_cycles * factor)),
            )
        else:
            raise ConfigError(
                f"unknown perturbation {kind!r}",
                field="inject", choices=PERTURBATION_KINDS,
            )
        self.perturbations.append(f"{kind}@{self.cycle}")
        return self

    def swap(self, kind: str, name: str) -> "Session":
        """Hot-swap a registry component at the current step boundary.

        * ``swap("scheduler", name)`` — replace the core-pick policy;
        * ``swap("spin_detector", name)`` — replace every per-core spin
          detector, folding each old detector's accumulated spin cycles
          into the accountant's truncated-spin counter so the spinning
          component stays continuous across the swap (the new detectors
          start cold on in-flight episodes).
        """
        self._pre_perturb(f"swap {kind!r}")
        if kind == "scheduler":
            factory = resolve("scheduler", name)
            self.kernel.sim._scheduler = factory(self.kernel.machine.sched)
        elif kind == "spin_detector":
            accountant = self.kernel.accountant
            if not accountant.enabled:
                raise ConfigError(
                    "session carries no accounting hardware; there are no "
                    "spin detectors to swap"
                )
            factory = resolve("spin_detector", name)
            config = self.kernel.machine.accounting
            for cid, old in enumerate(accountant.spin_detectors):
                accountant.spin_truncated[cid] += old.spin_cycles
                accountant.spin_detectors[cid] = factory(config)
        else:
            raise ConfigError(
                f"cannot hot-swap component kind {kind!r}",
                field="swap", choices=SWAPPABLE_KINDS,
            )
        self.perturbations.append(f"{kind}={name}@{self.cycle}")
        return self

    def recored(self, n_threads: int) -> "Session":
        """A *fresh* session for the same experiment re-cored to
        ``n_threads`` (machine and scale derived through
        :meth:`~repro.experiments.scenarios.ExperimentCache.from_experiment`).

        Re-coring changes the program itself (one thread per core), so
        unlike :meth:`inject`/:meth:`swap` it cannot be applied to the
        running simulation — it starts the experiment's (benchmark, N')
        cell from cycle zero.
        """
        from repro.experiments.scenarios import ExperimentCache

        if self.experiment is None:
            raise ConfigError(
                "recored() needs a config-built session (from_config, or "
                "from_checkpoint with an experiment supplied)"
            )
        cache = ExperimentCache.from_experiment(self.experiment)
        base = cache.machine or MachineConfig(n_cores=n_threads)
        machine = base.with_cores(n_threads)
        kernel = SimulationKernel(
            machine,
            build_program(self.spec, n_threads, scale=cache.scale),
            accounted=True,
            engine=self.kernel.engine,
            max_cycles=self.kernel.max_cycles,
            livelock_window=self.kernel.livelock_window,
            on_timeout=self.kernel.on_timeout,
        )
        descriptor = cell_descriptor(
            machine, self.spec.full_name, n_threads, cache.scale,
            max_cycles=self.kernel.max_cycles,
            livelock_window=self.kernel.livelock_window,
        )
        return Session(
            kernel, self.spec, cache.scale,
            experiment=self.experiment, descriptor=descriptor,
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        sim = self.kernel.sim
        finished = sum(1 for t in sim.threads if t.state == FINISHED)
        if self.done:
            result = self.kernel.result
            state = (
                f"truncated({result.truncation_reason})"
                if result is not None and result.truncated else "done"
            )
        else:
            state = "running"
        perturbed = (
            f", {len(self.perturbations)} perturbation(s)"
            if self.perturbations else ""
        )
        return (
            f"<Session {self.spec.full_name} n={self.n_threads} "
            f"engine={self.kernel.engine} cycle={self.cycle:,} {state} "
            f"({finished}/{self.n_threads} threads finished){perturbed}>"
        )
