"""Steppable simulation kernel and interactive sessions.

Layering (see ``docs/architecture.md``)::

    repro session CLI / SessionShell      repl.py
        │
    Session  — step/peek/perturb facade   session.py
        │
    SimulationKernel — run lifecycle      kernel.py
        │
    Simulation / VectorizedSimulation     repro.sim

:class:`SimulationKernel` hosts *every* run path — ``run_accounted``,
``run_experiment`` and the batch runner all drive their simulations
through it — while :class:`Session` adds the interactive layer on top:
partial stacks, snapshot/restore, and step-boundary perturbations.
"""

from repro.session.kernel import SimulationKernel
from repro.session.repl import SessionShell
from repro.session.session import (
    PERTURBATION_KINDS,
    SWAPPABLE_KINDS,
    Session,
)

__all__ = [
    "PERTURBATION_KINDS",
    "SWAPPABLE_KINDS",
    "Session",
    "SessionShell",
    "SimulationKernel",
]
