"""A tiny scriptable shell over :class:`~repro.session.Session`.

Backs the ``repro session`` subcommand in both of its modes:

* **scripted** — ``repro session cholesky -n 4 --run 'step 5000; stack;
  inject llc_flush; step 5000; stack'`` executes a semicolon-separated
  command list and exits (CI's session-smoke job drives this);
* **interactive** — without ``--run`` the same commands are read from
  stdin, one per line, with a ``>>`` prompt on a TTY.

The shell is deliberately dumb: every command maps 1:1 onto a public
:class:`Session` method, so anything it can do a notebook can do — it
adds no semantics of its own.
"""

from __future__ import annotations

import sys
from typing import Callable, TextIO

from repro.errors import ConfigError, ReproError
from repro.session.session import Session

HELP = """\
commands (semicolon-separated in --run scripts):
  step [N]          advance ~N simulated cycles (default 10000)
  run               run to completion
  stack             render the speedup stack (partial mid-run)
  status            one-line progress summary
  counters          live accountant counters
  inject KIND [F]   perturb: llc_flush | mem_spike (factor F, default 2.0)
  swap KIND NAME    hot-swap a registry component: scheduler | spin_detector
  save PATH         write a resumable checkpoint file
  events [N]        show the last N observability events (default 10)
  help              this text
  quit              leave the shell\
"""


class SessionShell:
    """Command dispatcher for one :class:`Session`."""

    def __init__(self, session: Session, out: TextIO | None = None) -> None:
        self.session = session
        self.out = out if out is not None else sys.stdout
        self._commands: dict[str, Callable[[list[str]], bool]] = {
            "step": self._cmd_step,
            "run": self._cmd_run,
            "stack": self._cmd_stack,
            "status": self._cmd_status,
            "counters": self._cmd_counters,
            "inject": self._cmd_inject,
            "swap": self._cmd_swap,
            "save": self._cmd_save,
            "events": self._cmd_events,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    # each handler returns True to keep the shell alive, False to quit

    def _cmd_step(self, args: list[str]) -> bool:
        cycles = int(args[0].replace("_", "")) if args else 10_000
        self.session.step(cycles)
        self._print(repr(self.session))
        return True

    def _cmd_run(self, args: list[str]) -> bool:
        self.session.run()
        self._print(repr(self.session))
        return True

    def _cmd_stack(self, args: list[str]) -> bool:
        self._print(self.session.render_stack())
        return True

    def _cmd_status(self, args: list[str]) -> bool:
        status = self.session.status()
        self._print(", ".join(f"{k}={v}" for k, v in status.items()))
        return True

    def _cmd_counters(self, args: list[str]) -> bool:
        counters = self.session.counters()
        if not counters:
            self._print("(no accounting hardware attached)")
            return True
        for name, value in counters.items():
            self._print(f"  {name:<24s} {value}")
        return True

    def _cmd_inject(self, args: list[str]) -> bool:
        if not args:
            raise ConfigError(
                "inject needs a kind", field="inject",
                choices=("llc_flush", "mem_spike"),
            )
        kind = args[0]
        if len(args) > 1:
            self.session.inject(kind, factor=float(args[1]))
        else:
            self.session.inject(kind)
        self._print(f"injected {kind} at cycle {self.session.cycle:,}")
        return True

    def _cmd_swap(self, args: list[str]) -> bool:
        if len(args) != 2:
            raise ConfigError(
                "swap needs a kind and a registry name", field="swap",
                choices=("scheduler", "spin_detector"),
            )
        self.session.swap(args[0], args[1])
        self._print(f"swapped {args[0]} -> {args[1]} "
                    f"at cycle {self.session.cycle:,}")
        return True

    def _cmd_save(self, args: list[str]) -> bool:
        if len(args) != 1:
            raise ConfigError("save needs a path", field="save")
        header = self.session.save(args[0])
        self._print(f"saved checkpoint at cycle {header['cycle']} "
                    f"-> {args[0]}")
        return True

    def _cmd_events(self, args: list[str]) -> bool:
        if self.session.bus is None:
            self._print("(session built without events=True; nothing recorded)")
            return True
        last = int(args[0]) if args else 10
        tail = self.session.events[-last:]
        self._print(f"{len(self.session.events)} event(s) recorded; "
                    f"last {len(tail)}:")
        for event in tail:
            self._print(f"  {event!r}")
        return True

    def _cmd_help(self, args: list[str]) -> bool:
        self._print(HELP)
        return True

    def _cmd_quit(self, args: list[str]) -> bool:
        return False

    def execute(self, line: str) -> bool:
        """Run one command line; False means the shell should exit."""
        parts = line.strip().split()
        if not parts:
            return True
        name, args = parts[0], parts[1:]
        handler = self._commands.get(name)
        if handler is None:
            raise ConfigError(
                f"unknown session command {name!r}",
                field="command", choices=tuple(sorted(self._commands)),
            )
        return handler(args)

    def run_script(self, script: str) -> int:
        """Execute a semicolon-separated command list; returns an exit
        code (errors print to stderr rather than raising — the shell is
        a CLI surface)."""
        for command in script.split(";"):
            if not command.strip():
                continue
            try:
                if not self.execute(command):
                    break
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        return 0

    def interact(self, stream: TextIO | None = None) -> int:
        """Read commands from ``stream`` (default stdin) until EOF or
        ``quit``."""
        stream = stream if stream is not None else sys.stdin
        prompt = stream is sys.stdin and sys.stdin.isatty()
        self._print(repr(self.session))
        self._print("type 'help' for commands")
        while True:
            if prompt:
                self.out.write(">> ")
                self.out.flush()
            line = stream.readline()
            if not line:
                break
            try:
                if not self.execute(line):
                    break
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
        return 0
