"""The steppable simulation kernel every run path is hosted on.

Historically the engine was driven from three near-identical call
sites — ``run_accounted``, ``run_experiment`` and
``BatchRunner._run_once`` — each building an accountant, resolving an
engine backend, calling ``Simulation.run`` once and harvesting a
report.  :class:`SimulationKernel` extracts that lifecycle into one
object with an explicit state machine::

    setup/​__init__  →  step(n_cycles)*  →  snapshot()/save()  →  finish()

The batch path is the degenerate case (one ``finish()`` with no
intermediate steps), so hosting it here is behavior-preserving by
construction: the kernel issues exactly the calls the old inline code
issued, in the same order, with the same arguments.  The interactive
path (``step``/``peek_report``) rides on the engine's non-mutating
``pause_at`` support, giving the keystone guarantee

    ``step(N) then step(M)  ≡  step(N+M)  ≡  one-shot run``

on every engine backend — locked by ``tests/session/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.accounting.accountant import CycleAccountant
from repro.accounting.interface import NULL_ACCOUNTANT
from repro.accounting.report import AccountingReport, partial_run_view
from repro.checkpoint.format import save_checkpoint
from repro.components.registry import resolve
from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.osmodel.thread import FINISHED
from repro.sim.engine import SimResult, Simulation
from repro.workloads.program import Program
from repro.workloads.spec import build_program


class SimulationKernel:
    """One simulated run with an explicit lifecycle.

    The kernel owns the accountant, the engine backend, and the
    watchdog/checkpoint parameters of a run; the run itself advances
    through :meth:`step` (bounded) or :meth:`finish` (to completion).
    ``step``/``finish`` pass the *same* arguments to the same
    ``Simulation.run`` entry point the batch path always used, so a
    kernel that is never paused is byte-identical to the pre-kernel
    inline code.
    """

    def __init__(
        self,
        machine: MachineConfig,
        program: Program,
        *,
        accounted: bool = True,
        engine: str = "reference",
        max_cycles: int | None = None,
        livelock_window: int | None = None,
        on_timeout: str = "raise",
        bus=None,
        checkpoint=None,
    ) -> None:
        self.machine = machine
        self.program = program
        self.engine = engine
        self.max_cycles = max_cycles
        self.livelock_window = livelock_window
        self.on_timeout = on_timeout
        self.checkpoint = checkpoint
        # Construction order matches run_accounted: accountant first,
        # then the engine factory (both may touch the registry).
        self.accountant = (
            CycleAccountant(machine, bus=bus) if accounted
            else NULL_ACCOUNTANT
        )
        self.sim: Simulation = resolve("engine", engine)(
            machine, program, self.accountant, bus=bus
        )
        self._result: SimResult | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def setup(
        cls,
        experiment,
        benchmark: str,
        n_threads: int | None = None,
        *,
        accounted: bool = True,
        engine: str | None = None,
        bus=None,
        checkpoint=None,
        fault=None,
    ) -> "SimulationKernel":
        """Kernel for one (benchmark, N) cell of an
        :class:`~repro.config.ExperimentConfig`.

        ``n_threads`` defaults to the experiment's first thread count;
        ``engine`` to the experiment's run engine.  ``fault`` (a
        :data:`~repro.robustness.faults.CellFault`) transforms the
        program/machine before the run, exactly as the batch runner
        applies it.
        """
        from repro.workloads.suite import by_name

        spec = by_name(benchmark)
        workload, run = experiment.workload, experiment.run
        if n_threads is None:
            n_threads = workload.thread_counts[0]
        machine = experiment.machine.with_cores(n_threads)
        program = build_program(spec, n_threads, scale=workload.scale)
        if fault is not None:
            program, machine = fault(program, machine)
        kernel = cls(
            machine, program,
            accounted=accounted,
            engine=engine if engine is not None else run.engine,
            max_cycles=run.max_cycles,
            livelock_window=run.livelock_window,
            on_timeout=(
                "truncate"
                if run.max_cycles is not None
                or run.livelock_window is not None
                else "raise"
            ),
            bus=bus,
            checkpoint=checkpoint,
        )
        return kernel

    @classmethod
    def from_simulation(
        cls,
        sim: Simulation,
        *,
        max_cycles: int | None = None,
        livelock_window: int | None = None,
        on_timeout: str = "raise",
        checkpoint=None,
    ) -> "SimulationKernel":
        """Wrap an existing (typically checkpoint-restored) simulation.

        The simulation keeps its accountant, bus and backend; the
        kernel only supplies the run parameters for the continuation —
        this is how the batch runner's crash-resume path and
        ``Session.from_checkpoint`` host restored runs.
        """
        kernel = cls.__new__(cls)
        kernel.machine = sim.machine
        kernel.program = sim.program
        kernel.engine = sim.ENGINE_NAME
        kernel.max_cycles = max_cycles
        kernel.livelock_window = livelock_window
        kernel.on_timeout = on_timeout
        kernel.checkpoint = checkpoint
        kernel.accountant = sim.accountant
        kernel.sim = sim
        kernel._result = None
        return kernel

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Frontier simulated time: the furthest any core has reached."""
        return max(core.now for core in self.sim.cores)

    @property
    def done(self) -> bool:
        """True once the run has completed (or was watchdog-truncated)."""
        return self._result is not None

    @property
    def result(self) -> SimResult | None:
        """The final :class:`SimResult`, or None while still running."""
        return self._result

    def step(self, n_cycles: int | None = None) -> SimResult:
        """Advance roughly ``n_cycles`` simulated cycles (None = to the
        end) and return the engine's result — ``paused=True`` while
        work remains, the final result once the run completes.

        The pause lands on the first scheduling-loop boundary past the
        target cycle, so the advance may overshoot slightly (block
        executors never split); the state trajectory is identical to an
        unpaused run regardless of where the boundaries fall.  Calling
        ``step`` on a finished kernel returns the final result
        unchanged.
        """
        if self._result is not None:
            return self._result
        pause_at = None if n_cycles is None else self.cycle + n_cycles
        result = self.sim.run(
            max_cycles=self.max_cycles,
            livelock_window=self.livelock_window,
            on_timeout=self.on_timeout,
            checkpoint=self.checkpoint,
            pause_at=pause_at,
        )
        if not result.paused:
            self._result = result
        return result

    def finish(self) -> SimResult:
        """Run to completion and return the final result."""
        if self._result is None:
            self.step(None)
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full engine ``state_dict()`` tree (never mutates)."""
        return self.sim.state_dict()

    def load(self, state: dict) -> None:
        """Restore a :meth:`snapshot` tree onto this (fresh) kernel."""
        self.sim.load_state_dict(state)

    def save(
        self,
        path: str | Path,
        descriptor: dict[str, Any],
        *,
        reason: str = "manual",
    ) -> dict[str, Any]:
        """Write the current state as a standard checkpoint file."""
        return save_checkpoint(
            path, self.snapshot(), descriptor,
            cycle=self.cycle, reason=reason,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def report(self) -> AccountingReport:
        """The end-of-run accounting report (requires a finished run)."""
        if not self.accountant.enabled:
            raise SimulationError(
                "kernel was built without accounting (accounted=False); "
                "no report to derive"
            )
        if self._result is None:
            raise SimulationError(
                "run still in flight — use peek_report() for the "
                "partial-run report"
            )
        return self.accountant.report(self._result)

    def peek_report(self) -> AccountingReport | None:
        """The accounting report *so far*, or None without accounting.

        Mid-run, unfinished threads are viewed as ending at the
        frontier cycle (the same :func:`partial_run_view` adapter
        ``repro inspect`` applies to checkpoints); once finished this
        is exactly :meth:`report`.  Pure — never mutates the run.
        """
        if not self.accountant.enabled:
            return None
        if self._result is not None:
            return self.accountant.report(self._result)
        view = partial_run_view(
            [
                t.end_time if t.state == FINISHED else None
                for t in self.sim.threads
            ],
            self.cycle,
        )
        return self.accountant.report(view)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "done" if self.done else f"cycle={self.cycle}"
        return (
            f"<SimulationKernel {self.program.n_threads} threads "
            f"engine={self.engine} {status}>"
        )
