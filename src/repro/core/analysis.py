"""LLC interference analysis (Section 7.3, Figures 8 and 9).

Breaks a speedup stack's cache-sharing effects into the negative,
positive and net interference components, in speedup units — exactly
the bars of Figure 8 (across benchmarks) and Figure 9 (cholesky as a
function of LLC size).  A negative *net* value means sharing the LLC
helps overall performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stack import SpeedupStack


@dataclass(frozen=True)
class LlcInterference:
    """Negative / positive / net LLC interference of one run."""

    name: str
    negative: float
    positive: float

    @property
    def net(self) -> float:
        """Negative minus positive: > 0 hurts, < 0 means cache sharing
        is a net win (the crossover the paper shows for cholesky with
        large LLCs in Figure 9)."""
        return self.negative - self.positive


def llc_interference(stack: SpeedupStack, name: str | None = None) -> LlcInterference:
    """Extract the Figure 8 bars from one speedup stack."""
    return LlcInterference(
        name=name if name is not None else stack.name,
        negative=stack.negative_llc,
        positive=stack.positive_llc,
    )


@dataclass(frozen=True)
class LlcSizeSweepPoint:
    """One LLC size of the Figure 9 sweep."""

    llc_bytes: int
    interference: LlcInterference

    @property
    def llc_mb(self) -> float:
        return self.llc_bytes / (1024 * 1024)


def expect_monotone_negative(points: list[LlcSizeSweepPoint]) -> bool:
    """The paper's Figure 9 claim: negative interference decreases with
    LLC size (fewer capacity misses) while positive interference stays
    roughly constant.  Returns whether the negative series is
    non-increasing across the sweep."""
    ordered = sorted(points, key=lambda p: p.llc_bytes)
    negatives = [p.interference.negative for p in ordered]
    return all(b <= a + 1e-9 for a, b in zip(negatives, negatives[1:]))
