"""What-if projection: the speedup gain from removing a bottleneck.

The paper's reading of a speedup stack: each delimiter "hints towards
the expected performance benefit from reducing a specific scaling
bottleneck, i.e., the speedup gain if this component is reduced to
zero."  This module turns that reading into an API — project the
speedup under hypothetical component reductions, and rank optimization
opportunities by their projected payoff.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import Component
from repro.core.stack import SpeedupStack

#: Delimiters a what-if scenario may reduce.
_REDUCIBLE = (
    Component.NET_NEGATIVE_LLC,
    Component.NEGATIVE_MEMORY,
    Component.COHERENCY,
    Component.SPINNING,
    Component.YIELDING,
    Component.IMBALANCE,
)


@dataclass(frozen=True)
class Projection:
    """Projected speedup after reducing one or more components."""

    baseline_speedup: float
    projected_speedup: float
    reductions: dict[Component, float]

    @property
    def gain(self) -> float:
        """Absolute speedup gain of the scenario."""
        return self.projected_speedup - self.baseline_speedup

    @property
    def relative_gain(self) -> float:
        if self.baseline_speedup == 0:
            return 0.0
        return self.gain / self.baseline_speedup


def project(
    stack: SpeedupStack, reductions: dict[Component, float]
) -> Projection:
    """Project the speedup if each component shrinks by its fraction.

    ``reductions`` maps delimiters to the fraction removed (1.0 = the
    component disappears entirely).  The projection is first-order: the
    removed cycles become useful parallel work, everything else is
    unchanged — exactly the stack's own additive model.
    """
    for comp, fraction in reductions.items():
        if comp not in _REDUCIBLE:
            raise ValueError(f"{comp.label} is not a reducible delimiter")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"reduction fraction out of range: {fraction}")
    baseline = (
        stack.actual_speedup
        if stack.actual_speedup is not None
        else stack.estimated_speedup
    )
    segments = stack.segments()
    gained = sum(
        segments[comp] * fraction for comp, fraction in reductions.items()
    )
    return Projection(
        baseline_speedup=baseline,
        projected_speedup=min(float(stack.n_threads), baseline + gained),
        reductions=dict(reductions),
    )


def remove_component(stack: SpeedupStack, component: Component) -> Projection:
    """Project the speedup with one delimiter reduced to zero."""
    return project(stack, {component: 1.0})


@dataclass(frozen=True)
class Opportunity:
    """One optimization opportunity, ranked by projected payoff."""

    component: Component
    projection: Projection

    @property
    def gain(self) -> float:
        return self.projection.gain


def optimization_opportunities(
    stack: SpeedupStack, significance: float = 0.05
) -> list[Opportunity]:
    """All delimiters worth attacking, largest projected gain first.

    This is the "guide programmers and architects to tackle those
    effects that have the largest impact" use of the stack, as a list.
    """
    opportunities = [
        Opportunity(comp, remove_component(stack, comp))
        for comp in _REDUCIBLE
        if stack.segments()[comp] > significance
    ]
    opportunities.sort(key=lambda o: o.gain, reverse=True)
    return opportunities


def advice(stack: SpeedupStack) -> str:
    """One-paragraph textual guidance from a stack (the paper's
    Section 7.1 narrative, automated)."""
    opportunities = optimization_opportunities(stack, significance=0.2)
    if not opportunities:
        return (
            f"{stack.name}: no significant scaling bottleneck — the "
            "application scales nearly ideally at this thread count."
        )
    top = opportunities[0]
    hints = {
        Component.SPINNING: (
            "reduce lock contention: finer-grained locks, shorter "
            "critical sections"
        ),
        Component.YIELDING: (
            "reduce blocking: less serialization, better load "
            "balancing at barriers, smaller critical sections"
        ),
        Component.NET_NEGATIVE_LLC: (
            "reduce cache interference: shrink per-thread working "
            "sets, partition the LLC, or block for cache reuse"
        ),
        Component.NEGATIVE_MEMORY: (
            "reduce memory contention: fewer DRAM accesses, better "
            "page locality, or more memory bandwidth"
        ),
        Component.COHERENCY: "reduce sharing/false sharing of written data",
        Component.IMBALANCE: "balance the work across threads",
    }
    return (
        f"{stack.name}: largest bottleneck is {top.component.label} "
        f"({stack.segments()[top.component]:.2f} of {stack.n_threads} "
        f"speedup units); removing it projects "
        f"{top.projection.projected_speedup:.2f}x (from "
        f"{top.projection.baseline_speedup:.2f}x) — "
        f"{hints[top.component]}."
    )
