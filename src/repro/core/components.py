"""Speedup-stack component definitions.

The stack components follow Figure 2 of the paper: base speedup at the
bottom, positive LLC interference on top of it (their sum is the
estimated actual speedup), then the scaling delimiters — net negative
LLC interference, negative memory interference, cache coherency,
spinning, yielding, imbalance and parallelization overhead — up to the
maximum theoretical speedup ``N``.
"""

from __future__ import annotations

from enum import Enum


class Component(str, Enum):
    """A segment of the speedup stack."""

    BASE_SPEEDUP = "base_speedup"
    POSITIVE_LLC = "positive_llc"
    NET_NEGATIVE_LLC = "net_negative_llc"
    NEGATIVE_MEMORY = "negative_memory"
    COHERENCY = "coherency"
    SPINNING = "spinning"
    YIELDING = "yielding"
    IMBALANCE = "imbalance"

    @property
    def label(self) -> str:
        return _LABELS[self]

    @property
    def is_delimiter(self) -> bool:
        """True for scaling delimiters (everything above actual speedup)."""
        return self not in (Component.BASE_SPEEDUP, Component.POSITIVE_LLC)


_LABELS: dict[Component, str] = {
    Component.BASE_SPEEDUP: "base speedup",
    Component.POSITIVE_LLC: "positive LLC interference",
    Component.NET_NEGATIVE_LLC: "net negative LLC interference",
    Component.NEGATIVE_MEMORY: "negative memory interference",
    Component.COHERENCY: "cache coherency",
    Component.SPINNING: "spinning",
    Component.YIELDING: "yielding",
    Component.IMBALANCE: "imbalance",
}

#: Order segments are stacked bottom-to-top, per Figure 2 / Figure 5.
STACK_ORDER: tuple[Component, ...] = (
    Component.BASE_SPEEDUP,
    Component.POSITIVE_LLC,
    Component.NET_NEGATIVE_LLC,
    Component.NEGATIVE_MEMORY,
    Component.COHERENCY,
    Component.SPINNING,
    Component.YIELDING,
    Component.IMBALANCE,
)

#: The delimiters considered when ranking scaling bottlenecks (Fig. 6).
#: The paper labels LLC interference "cache" and memory-subsystem
#: interference "memory" in the tree graph.
TREE_LABELS: dict[Component, str] = {
    Component.NET_NEGATIVE_LLC: "cache",
    Component.NEGATIVE_MEMORY: "memory",
    Component.COHERENCY: "coherency",
    Component.SPINNING: "spinning",
    Component.YIELDING: "yielding",
    Component.IMBALANCE: "imbalance",
}
