"""Region-based speedup stacks (the paper's Section 4.6 refinement).

The hardware cannot tell lock spinning from barrier spinning, so the
whole-program stack folds barrier waiting into the spinning/yielding
components.  The paper notes the fix: "this problem can be solved by
computing speedup stacks for each region between consecutive barriers;
the imbalance before each barrier then quantifies barrier overhead."

This module implements that refinement.  A :class:`RegionObserver`
watches barrier arrivals and releases during an accounted run and
snapshots the accountant's counters at every barrier release.  Each
region (the execution between two consecutive releases) then gets its
own stack-style decomposition in which:

* interference/spin/yield components are the counter *differences*
  over the region, and
* the terminal barrier's overhead appears as an explicit per-thread
  **barrier imbalance** component (`release - arrival_i`), with the
  spin/yield cycles the thread burned while waiting at that barrier
  subtracted out so the wait is not counted twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accounting.accountant import CycleAccountant
from repro.accounting.report import AccountingReport, ThreadComponents
from repro.config import MachineConfig
from repro.core.stack import SpeedupStack, build_stack
from repro.sim.engine import SimResult, Simulation
from repro.workloads.program import Program


@dataclass
class Region:
    """One inter-barrier region of an accounted run."""

    index: int
    barrier_id: int
    start: int
    end: int
    #: per-thread arrival times at the terminal barrier
    arrivals: dict[int, int]
    #: accountant counter snapshot at the region's end
    snapshot: dict

    @property
    def duration(self) -> int:
        return self.end - self.start

    def barrier_imbalance(self, thread_id: int) -> int:
        """Cycles the thread waited at the terminal barrier."""
        arrival = self.arrivals.get(thread_id)
        if arrival is None:
            return 0
        return max(0, self.end - arrival)


class RegionObserver:
    """Collects barrier events and accountant snapshots during a run."""

    def __init__(self, accountant: CycleAccountant, n_threads: int) -> None:
        self.accountant = accountant
        self.n_threads = n_threads
        self.regions: list[Region] = []
        self._arrivals: dict[int, dict[int, int]] = {}
        self._region_start = 0

    def on_arrival(self, barrier_id: int, thread_id: int, now: int) -> None:
        self._arrivals.setdefault(barrier_id, {})[thread_id] = now

    def on_release(self, barrier_id: int, now: int) -> None:
        arrivals = self._arrivals.pop(barrier_id, {})
        self.regions.append(
            Region(
                index=len(self.regions),
                barrier_id=barrier_id,
                start=self._region_start,
                end=now,
                arrivals=arrivals,
                snapshot=self.accountant.snapshot(),
            )
        )
        self._region_start = now


def _diff(after: dict, before: dict, key: str, core: int) -> float:
    return after[key][core] - before[key][core]


def region_stacks(
    observer: RegionObserver,
    machine: MachineConfig,
    name: str = "region",
) -> list[SpeedupStack]:
    """Build one speedup stack per inter-barrier region.

    Components are counter differences over the region; the terminal
    barrier's wait is reported as the imbalance component, and an equal
    amount is removed from the region's yielding-then-spinning cycles
    (the wait physically manifested as spin-then-yield at the barrier).
    """
    stacks: list[SpeedupStack] = []
    n_threads = observer.n_threads
    empty = {
        "llc_accesses": [0] * machine.n_cores,
        "llc_load_misses": [0] * machine.n_cores,
        "llc_load_miss_blocked_stall": [0] * machine.n_cores,
        "neg_llc_sampled_stall": [0] * machine.n_cores,
        "neg_mem_stall": [0] * machine.n_cores,
        "spin": [0] * machine.n_cores,
        "yield": {},
        "inter_hits": [0] * machine.n_cores,
        "coherency": [0] * machine.n_cores,
    }
    previous = empty
    previous_region: Region | None = None
    factor = float(machine.accounting.atd_sample_period)
    for region in observer.regions:
        after = region.snapshot
        tp = max(1, region.duration)
        threads = []
        for tid in range(n_threads):
            core = tid
            misses = _diff(after, previous, "llc_load_misses", core)
            stall = _diff(
                after, previous, "llc_load_miss_blocked_stall", core
            )
            avg_penalty = stall / misses if misses > 0 else 0.0
            inter_hits = (
                after["inter_hits"][core] - previous["inter_hits"][core]
            )
            spin = _diff(after, previous, "spin", core)
            yielded = after["yield"].get(tid, 0) - previous["yield"].get(tid, 0)
            barrier_wait = region.barrier_imbalance(tid)
            # The wait at the *previous* region's terminal barrier was
            # burned as spin-then-yield, but the yield interval is only
            # recorded when the thread is dispatched again — inside
            # *this* region.  Subtract it here so the wait is counted
            # exactly once, as the previous region's barrier imbalance.
            carry = (
                previous_region.barrier_imbalance(tid)
                if previous_region is not None
                else 0
            )
            take_yield = min(yielded, carry)
            yielded -= take_yield
            take_spin = min(spin, carry - take_yield)
            spin -= take_spin
            threads.append(
                ThreadComponents(
                    thread_id=tid,
                    negative_llc=(
                        _diff(after, previous, "neg_llc_sampled_stall", core)
                        * factor
                    ),
                    negative_memory=_diff(after, previous, "neg_mem_stall", core),
                    positive_llc=inter_hits * factor * avg_penalty,
                    spinning=float(max(0, spin)),
                    yielding=float(max(0, yielded)),
                    imbalance=float(barrier_wait),
                    coherency=_diff(after, previous, "coherency", core),
                )
            )
        report = AccountingReport(
            n_threads=n_threads, tp_cycles=tp, threads=threads
        )
        stacks.append(
            build_stack(f"{name}[{region.index}]", report)
        )
        previous = after
        previous_region = region
    return stacks


@dataclass
class RegionResult:
    """Outcome of a region-accounted run."""

    sim_result: SimResult
    observer: RegionObserver
    stacks: list[SpeedupStack] = field(default_factory=list)

    @property
    def regions(self) -> list[Region]:
        return self.observer.regions


def run_region_experiment(
    machine: MachineConfig, program: Program, name: str = "regions"
) -> RegionResult:
    """Run with accounting + region tracking and build per-region stacks."""
    accountant = CycleAccountant(machine)
    observer = RegionObserver(accountant, program.n_threads)
    result = Simulation(
        machine, program, accountant, barrier_observer=observer
    ).run()
    stacks = region_stacks(observer, machine, name=name)
    return RegionResult(sim_result=result, observer=observer, stacks=stacks)
