"""Per-core CPI stacks — the single-threaded counterpart view.

The paper positions its contribution by analogy: "one could argue that
the speedup stack is in the multi-threaded application domain what the
CPI stack is for single-threaded applications" (Section 8, citing
Eyerman et al.'s cycle accounting).  This module provides that
complementary view from the same simulation: for each core, the cycles
per retired instruction split into a base component (ideal dispatch),
memory stall components, other pipeline stalls, and the time the core
sat idle (no thread to run — the scheduling shadow of synchronization).

CPI stacks and speedup stacks answer different questions about the same
run: the CPI stack says where a *core's cycles* went; the speedup stack
says what a *thread's slowdown* relative to single-threaded execution
consists of.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimResult


@dataclass(frozen=True)
class CpiStack:
    """Cycles-per-instruction decomposition of one core."""

    core_id: int
    instrs: int
    #: ideal dispatch cycles per instruction (1 / width)
    base: float
    #: stall cycles on LLC load misses (DRAM time), per instruction
    memory: float
    #: all other stalls (dependent hits, drains, bus waits on stores...)
    other_stall: float
    #: cycles the core had no thread to run, per instruction it retired
    idle: float

    @property
    def total(self) -> float:
        """Effective cycles per instruction including idle time."""
        return self.base + self.memory + self.other_stall + self.idle

    @property
    def cpi(self) -> float:
        """Conventional CPI (busy cycles only)."""
        return self.base + self.memory + self.other_stall

    def components(self) -> dict[str, float]:
        return {
            "base": self.base,
            "memory": self.memory,
            "other_stall": self.other_stall,
            "idle": self.idle,
        }


def cpi_stacks(result: SimResult) -> list[CpiStack]:
    """CPI stacks for every core of a finished run."""
    machine = result.machine
    width = machine.core.dispatch_width
    wall = result.total_cycles
    stacks = []
    for stats in result.chip.stats:
        instrs = stats.instrs
        if instrs == 0:
            stacks.append(
                CpiStack(
                    core_id=stats_index(result, stats), instrs=0,
                    base=0.0, memory=0.0, other_stall=0.0, idle=0.0,
                )
            )
            continue
        memory_stall = stats.llc_load_miss_stall
        other_stall = max(0, stats.stall_cycles - memory_stall)
        idle = max(0, wall - stats.busy_cycles)
        stacks.append(
            CpiStack(
                core_id=stats_index(result, stats),
                instrs=instrs,
                base=1.0 / width,
                memory=memory_stall / instrs,
                other_stall=other_stall / instrs,
                idle=idle / instrs,
            )
        )
    return stacks


def stats_index(result: SimResult, stats) -> int:
    return result.chip.stats.index(stats)


def render_cpi_stacks(stacks: list[CpiStack]) -> str:
    """Table of per-core CPI components."""
    lines = [
        f"{'core':>5s}{'instrs':>10s}{'base':>8s}{'memory':>8s}"
        f"{'other':>8s}{'idle':>8s}{'CPI':>8s}{'eff.CPI':>9s}"
    ]
    for stack in stacks:
        lines.append(
            f"{stack.core_id:>5d}{stack.instrs:>10d}{stack.base:>8.2f}"
            f"{stack.memory:>8.2f}{stack.other_stall:>8.2f}"
            f"{stack.idle:>8.2f}{stack.cpi:>8.2f}{stack.total:>9.2f}"
        )
    return "\n".join(lines)
