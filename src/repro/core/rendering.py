"""Text renderings of the paper's figures.

Everything renders to plain ASCII/Unicode strings so the examples and
the benchmark harness can print the same artifacts the paper plots:
speedup stacks (Figures 2 and 5), speedup curves (Figures 1 and 7),
actual-vs-estimated validation (Figure 4), the classification tree
(Figure 6), and the LLC interference bars (Figures 8 and 9).
"""

from __future__ import annotations

from repro.core.analysis import LlcInterference
from repro.core.classification import ClassificationTree
from repro.core.components import Component, STACK_ORDER
from repro.core.stack import SpeedupStack
from repro.core.validation import ValidationRow

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    """A horizontal bar of ``value`` out of ``scale`` over ``width`` chars."""
    if scale <= 0 or value <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    bar = _FULL * whole
    if frac > 0:
        bar += _PART[frac]
    return bar


def render_stack(stack: SpeedupStack, width: int = 40) -> str:
    """One speedup stack as labelled horizontal segments (Figure 2)."""
    tag = "  [TRUNCATED RUN]" if stack.truncated else ""
    lines = [f"speedup stack: {stack.name}  (N = {stack.n_threads}){tag}"]
    if stack.actual_speedup is not None:
        lines.append(
            f"  actual speedup    {stack.actual_speedup:6.2f}   "
            f"estimated {stack.estimated_speedup:6.2f}   "
            f"error {stack.estimation_error * 100:+5.1f}%"
        )
    else:
        lines.append(f"  estimated speedup {stack.estimated_speedup:6.2f}")
    segments = stack.segments()
    for comp in STACK_ORDER:
        value = segments[comp]
        if comp.is_delimiter and abs(value) < 0.005:
            continue
        bar = _bar(max(value, 0.0), stack.n_threads, width)
        lines.append(f"  {comp.label:<30s} {value:7.2f}  {bar}")
    lines.append(f"  {'(stack height)':<30s} {stack.n_threads:7.2f}")
    return "\n".join(lines)


def render_stack_series(
    stacks: list[SpeedupStack], title: str = ""
) -> str:
    """Several stacks side by side as a component table (Figure 5)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'component':<30s}" + "".join(
        f"{s.name[-12:]:>14s}" for s in stacks
    )
    lines.append(header)
    threads_row = f"{'N (threads)':<30s}" + "".join(
        f"{s.n_threads:>14d}" for s in stacks
    )
    lines.append(threads_row)
    for comp in STACK_ORDER:
        values = [s.segments()[comp] for s in stacks]
        if comp.is_delimiter and all(abs(v) < 0.005 for v in values):
            continue
        row = f"{comp.label:<30s}" + "".join(f"{v:>14.2f}" for v in values)
        lines.append(row)
    actual = [
        s.actual_speedup if s.actual_speedup is not None else float("nan")
        for s in stacks
    ]
    lines.append(
        f"{'actual speedup':<30s}" + "".join(f"{v:>14.2f}" for v in actual)
    )
    lines.append(
        f"{'estimated speedup':<30s}"
        + "".join(f"{s.estimated_speedup:>14.2f}" for s in stacks)
    )
    return "\n".join(lines)


def render_speedup_curve(
    series: dict[str, dict[int, float]], width: int = 40
) -> str:
    """Speedup versus thread count for several benchmarks (Figure 1)."""
    lines = []
    max_speedup = max(
        (v for curve in series.values() for v in curve.values()), default=1.0
    )
    for name, curve in series.items():
        lines.append(name)
        for n_threads in sorted(curve):
            speedup = curve[n_threads]
            bar = _bar(speedup, max_speedup, width)
            lines.append(f"  {n_threads:3d} threads  {speedup:6.2f}  {bar}")
    return "\n".join(lines)


def render_validation_table(rows: list[ValidationRow]) -> str:
    """Actual vs estimated speedup for many runs (Figure 4)."""
    lines = [
        f"{'benchmark':<24s}{'N':>4s}{'actual':>9s}{'estimated':>11s}"
        f"{'error':>9s}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<24s}{row.n_threads:>4d}{row.actual_speedup:>9.2f}"
            f"{row.estimated_speedup:>11.2f}{row.error * 100:>8.1f}%"
        )
    return "\n".join(lines)


def render_tree(tree: ClassificationTree) -> str:
    """The Figure 6 tree graph as text.

    Columns: scaling class, 1st/2nd/3rd largest components, benchmark,
    suite, speedup — repeated labels are blanked like the figure.
    """
    lines = [
        f"{'scaling':<10s}{'1st comp':<11s}{'2nd comp':<11s}"
        f"{'3rd comp':<11s}{'benchmark':<24s}{'suite':<10s}{'speedup':>8s}"
    ]
    previous: tuple[str, ...] = ("", "", "", "")
    for leaf in tree.sorted_leaves():
        path = leaf.path
        cells = []
        prefix_same = True
        for level in range(4):
            if prefix_same and path[level] == previous[level]:
                cells.append("")
            else:
                prefix_same = False
                cells.append(path[level])
        lines.append(
            f"{cells[0]:<10s}{cells[1]:<11s}{cells[2]:<11s}{cells[3]:<11s}"
            f"{leaf.name:<24s}{leaf.suite:<10s}{leaf.speedup:>8.2f}"
        )
        previous = path
    return "\n".join(lines)


def render_interference(
    breakdowns: list[LlcInterference], width: int = 30
) -> str:
    """Negative / positive / net LLC interference bars (Figures 8, 9)."""
    scale = max(
        (max(abs(b.negative), abs(b.positive), abs(b.net))
         for b in breakdowns),
        default=1.0,
    )
    lines = []
    for b in breakdowns:
        lines.append(b.name)
        for label, value in (
            ("neg cache interference", b.negative),
            ("pos cache interference", b.positive),
            ("net interference", b.net),
        ):
            bar = _bar(abs(value), scale, width)
            sign = "-" if value < 0 else " "
            lines.append(f"  {label:<24s}{value:>8.2f}  {sign}{bar}")
    return "\n".join(lines)
