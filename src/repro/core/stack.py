"""Speedup stacks (the paper's central contribution, Section 2).

A :class:`SpeedupStack` expresses Equation 4::

    Ŝ = N − Σᵢ Σⱼ O(i,j) / Tp + Σᵢ Pᵢ / Tp

as a stacked bar of height ``N``: the base speedup (``N`` minus all
overhead components), the positive-interference bonus, and one segment
per scaling delimiter.  Stacks are built from an
:class:`~repro.accounting.report.AccountingReport` (one accounted
multi-threaded run); if a measured single-threaded time is supplied the
stack also carries the *actual* speedup for validation (Equation 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accounting.report import AccountingReport
from repro.core.components import Component, STACK_ORDER


@dataclass(frozen=True)
class SpeedupStack:
    """One speedup stack for an ``n_threads``-thread run."""

    name: str
    n_threads: int
    tp_cycles: int
    #: aggregate overhead components in speedup units (cycles / Tp)
    negative_llc: float
    negative_memory: float
    positive_llc: float
    spinning: float
    yielding: float
    imbalance: float
    coherency: float = 0.0
    #: measured speedup Ts/Tp, when a reference run is available
    actual_speedup: float | None = None
    #: measured single-threaded cycles, when available
    ts_cycles: int | None = None
    #: True when the accounted run was watchdog-truncated: the stack
    #: describes the partial run and must be interpreted with care
    truncated: bool = False

    # ------------------------------------------------------------------
    # derived quantities (Section 2)
    # ------------------------------------------------------------------

    @property
    def total_overhead(self) -> float:
        """Σᵢ Σⱼ O(i,j) / Tp across all overhead categories."""
        return (
            self.negative_llc
            + self.negative_memory
            + self.spinning
            + self.yielding
            + self.imbalance
            + self.coherency
        )

    @property
    def base_speedup(self) -> float:
        """``Ŝ_base = N − Σ O / Tp`` (Equation 5): speedup not counting
        positive interference."""
        return self.n_threads - self.total_overhead

    @property
    def estimated_speedup(self) -> float:
        """``Ŝ = Ŝ_base + Σ P / Tp`` (Equations 3–4)."""
        return self.base_speedup + self.positive_llc

    @property
    def net_negative_llc(self) -> float:
        """Negative minus positive LLC interference ("the net negative
        interference is computed as the negative interference component
        minus the positive interference component")."""
        return self.negative_llc - self.positive_llc

    @property
    def estimation_error(self) -> float | None:
        """``(Ŝ − S) / N`` (Equation 6), when actual speedup is known."""
        if self.actual_speedup is None:
            return None
        return (self.estimated_speedup - self.actual_speedup) / self.n_threads

    def segments(self) -> dict[Component, float]:
        """Bottom-to-top stack segments; they sum to ``N`` (Figure 2).

        The negative-LLC segment shown is the *net* component, so base +
        positive + net-negative reconstructs the full negative component
        exactly as in Figure 5.
        """
        return {
            Component.BASE_SPEEDUP: self.base_speedup,
            Component.POSITIVE_LLC: self.positive_llc,
            Component.NET_NEGATIVE_LLC: self.net_negative_llc,
            Component.NEGATIVE_MEMORY: self.negative_memory,
            Component.COHERENCY: self.coherency,
            Component.SPINNING: self.spinning,
            Component.YIELDING: self.yielding,
            Component.IMBALANCE: self.imbalance,
        }

    def delimiters(self) -> dict[Component, float]:
        """Only the scaling-delimiter segments, for bottleneck ranking."""
        return {
            comp: value
            for comp, value in self.segments().items()
            if comp.is_delimiter
        }

    def ranked_delimiters(
        self, significance: float = 0.0
    ) -> list[tuple[Component, float]]:
        """Delimiters sorted largest-first, dropping those at or below
        ``significance`` (in speedup units)."""
        ranked = sorted(
            self.delimiters().items(), key=lambda item: item[1], reverse=True
        )
        return [(comp, value) for comp, value in ranked if value > significance]

    def validate_consistency(self, tolerance: float = 1e-6) -> None:
        """Assert the stack's defining invariant: segments sum to N."""
        total = sum(self.segments().values())
        if abs(total - self.n_threads) > tolerance:
            raise AssertionError(
                f"stack segments sum to {total}, expected {self.n_threads}"
            )


def build_stack(
    name: str,
    report: AccountingReport,
    ts_cycles: int | None = None,
) -> SpeedupStack:
    """Build a speedup stack from one accounted multi-threaded run.

    ``ts_cycles`` is the measured single-threaded execution time of the
    same (parallel fraction of the) program, used only to attach the
    actual speedup for validation; the stack itself derives entirely
    from the multi-threaded run, as in the paper.
    """
    totals = report.component_totals()
    tp = report.tp_cycles
    actual = None
    if ts_cycles is not None and tp > 0:
        actual = ts_cycles / tp
    return SpeedupStack(
        name=name,
        n_threads=report.n_threads,
        tp_cycles=tp,
        negative_llc=totals["negative_llc"] / tp,
        negative_memory=totals["negative_memory"] / tp,
        positive_llc=totals["positive_llc"] / tp,
        spinning=totals["spinning"] / tp,
        yielding=totals["yielding"] / tp,
        imbalance=totals["imbalance"] / tp,
        coherency=totals["coherency"] / tp,
        actual_speedup=actual,
        ts_cycles=ts_cycles,
        truncated=getattr(report, "truncated", False),
    )
