"""Validation metrics (Section 6).

The paper validates estimated speedup ``Ŝ`` (Formula 3) against actual
speedup ``S`` (Formula 1) with the error metric ``(Ŝ − S)/N`` (Formula
6), reporting average absolute errors of 3.0%, 3.4%, 2.8% and 5.1% for
2, 4, 8 and 16 threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stack import SpeedupStack


@dataclass(frozen=True)
class ValidationRow:
    """Actual vs. estimated speedup for one (benchmark, N) point."""

    name: str
    n_threads: int
    actual_speedup: float
    estimated_speedup: float

    @property
    def error(self) -> float:
        """Signed error ``(Ŝ − S)/N`` (Equation 6)."""
        return (self.estimated_speedup - self.actual_speedup) / self.n_threads

    @property
    def abs_error(self) -> float:
        return abs(self.error)


def validation_row(stack: SpeedupStack) -> ValidationRow:
    """Extract the validation point of a stack (requires a reference)."""
    if stack.actual_speedup is None:
        raise ValueError(f"stack {stack.name!r} has no measured speedup")
    return ValidationRow(
        name=stack.name,
        n_threads=stack.n_threads,
        actual_speedup=stack.actual_speedup,
        estimated_speedup=stack.estimated_speedup,
    )


def mean_absolute_error(rows: list[ValidationRow]) -> float:
    """Average absolute error across validation points (in fractions of
    N; multiply by 100 for the paper's percentage figures)."""
    if not rows:
        raise ValueError("no validation rows")
    return sum(row.abs_error for row in rows) / len(rows)


def errors_by_thread_count(
    rows: list[ValidationRow],
) -> dict[int, float]:
    """Mean absolute error per thread count (the paper's 2/4/8/16 rows)."""
    grouped: dict[int, list[ValidationRow]] = {}
    for row in rows:
        grouped.setdefault(row.n_threads, []).append(row)
    return {
        n: mean_absolute_error(group) for n, group in sorted(grouped.items())
    }
