"""The paper's primary contribution: speedup stacks (Equations 2-6),
benchmark classification (Figure 6), LLC interference analysis
(Figures 8-9), and text renderings of every figure.
"""
