"""Benchmark classification by scaling behaviour (Section 7.2, Figure 6).

The paper classifies benchmarks in a tree: first by scaling class
("good scaling behavior means a speedup of at least 10x for 16 threads,
while poor scaling benchmarks have a speedup of less than 5x", the rest
moderate), then by the first, second and third largest scaling
delimiters from the speedup stack; components with no considerable
value are omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.components import Component, TREE_LABELS
from repro.core.stack import SpeedupStack

GOOD_THRESHOLD = 10.0
POOR_THRESHOLD = 5.0

#: Components below this many speedup units are "negligible" (no label
#: on the tree edge).
DEFAULT_SIGNIFICANCE = 0.35


def scaling_class(speedup: float) -> str:
    """good / moderate / poor per the paper's thresholds."""
    if speedup >= GOOD_THRESHOLD:
        return "good"
    if speedup < POOR_THRESHOLD:
        return "poor"
    return "moderate"


@dataclass(frozen=True)
class ClassifiedBenchmark:
    """One leaf of the Figure 6 tree."""

    name: str
    suite: str
    speedup: float
    scaling: str
    #: up to three ranked delimiter labels ("yielding", "memory", ...)
    top_components: tuple[str, ...]

    @property
    def path(self) -> tuple[str, ...]:
        """Tree path: (class, comp1, comp2, comp3), padded with ''."""
        padded = (self.top_components + ("", "", ""))[:3]
        return (self.scaling,) + padded


def classify_stack(
    stack: SpeedupStack,
    suite: str = "",
    significance: float = DEFAULT_SIGNIFICANCE,
    speedup: float | None = None,
) -> ClassifiedBenchmark:
    """Classify one benchmark from its 16-thread speedup stack.

    ``speedup`` defaults to the stack's measured speedup (falling back
    to the estimate when no reference run is attached).  Components are
    ranked by their stack magnitude; the imbalance component is omitted
    from the tree as the paper measures between thread divergence and
    convergence where it is ~0.
    """
    if speedup is None:
        speedup = (
            stack.actual_speedup
            if stack.actual_speedup is not None
            else stack.estimated_speedup
        )
    labels = []
    for comp, value in stack.ranked_delimiters(significance):
        label = TREE_LABELS.get(comp)
        if label is None or comp is Component.IMBALANCE:
            continue
        labels.append(label)
        if len(labels) == 3:
            break
    return ClassifiedBenchmark(
        name=stack.name,
        suite=suite,
        speedup=speedup,
        scaling=scaling_class(speedup),
        top_components=tuple(labels),
    )


@dataclass
class ClassificationTree:
    """The Figure 6 tree: benchmarks grouped by classification path."""

    leaves: list[ClassifiedBenchmark] = field(default_factory=list)

    def add(self, leaf: ClassifiedBenchmark) -> None:
        self.leaves.append(leaf)

    def by_class(self) -> dict[str, list[ClassifiedBenchmark]]:
        grouped: dict[str, list[ClassifiedBenchmark]] = {}
        for leaf in self.leaves:
            grouped.setdefault(leaf.scaling, []).append(leaf)
        return grouped

    def sorted_leaves(self) -> list[ClassifiedBenchmark]:
        """Leaves in Figure 6 order: class (good, moderate, poor), then
        descending speedup within each class path."""
        order = {"good": 0, "moderate": 1, "poor": 2}
        return sorted(
            self.leaves,
            key=lambda leaf: (order[leaf.scaling], leaf.path, -leaf.speedup),
        )

    def dominant_component_counts(self) -> dict[str, int]:
        """How often each component is the largest delimiter — the
        paper observes yielding is the largest for 23 of 28 benchmarks."""
        counts: dict[str, int] = {}
        for leaf in self.leaves:
            if leaf.top_components:
                key = leaf.top_components[0]
                counts[key] = counts.get(key, 0) + 1
        return counts

    def count_with_dominant(self, label: str) -> int:
        return self.dominant_component_counts().get(label, 0)
