"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``      — the benchmark suite with its Figure 6 metadata
* ``stack``     — speedup stack (+ optimization advice) for one benchmark
* ``curve``     — speedup vs. thread count
* ``tree``      — the Figure 6 classification tree
* ``regions``   — per-barrier-region stacks (Section 4.6 refinement)
* ``timeline``  — scheduling timeline (optionally Chrome trace JSON)
* ``cpi``       — per-core CPI stacks of a run
* ``sync``      — per-lock contention profile
* ``cost``      — accounting hardware cost (Section 4.7)
* ``run-trace`` — simulate a text op-trace file
* ``trace``     — Chrome/Perfetto trace of one cell (observability bus)
* ``sweep``     — hardened suite sweep (journal, retries, fault injection)
* ``worker``    — one durable-work-queue worker (``sweep --backend queue``)
* ``bench``     — time the sweep serial vs ``--jobs N`` (BENCH_sweep.json)
* ``report``    — self-contained HTML health report of a sweep
* ``inspect``   — partial speedup stack of an engine checkpoint file

``stack``, ``sweep`` and ``worker`` drain gracefully on SIGINT/SIGTERM:
in-flight work is finished or checkpointed, journals/leases are
finalized, and the process exits with a distinct code (95 for
interrupted runs, 75 for drained workers — see
``repro.robustness.drain``).

Global flags: ``-v``/``-vv`` raise the stdlib-logging verbosity to
INFO/DEBUG, ``--log-json`` switches stderr logging to one JSON object
per record (they go before the subcommand, e.g. ``repro -v sweep ...``),
``--version`` prints the package version.
"""

from __future__ import annotations

import argparse
import io
import json
import logging
import os
import sys

from repro._version import repro_version
from repro.accounting.hardware_cost import estimate_cost
from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    cell_descriptor,
    inspect_checkpoint,
    read_header,
    resume_simulation,
)
from repro.components import available, kinds
from repro.config import (
    MB,
    ExperimentConfig,
    MachineConfig,
    dumps_toml,
    load_config,
)
from repro.core.cpi import cpi_stacks, render_cpi_stacks
from repro.core.regions import run_region_experiment
from repro.core.stack import build_stack
from repro.core.rendering import (
    render_speedup_curve,
    render_stack,
    render_stack_series,
    render_tree,
)
from repro.core.whatif import advice
from repro.errors import (
    CheckpointError,
    ConfigError,
    ReproError,
    TraceParseError,
)
from repro.experiments.bench import render_bench, run_bench, write_bench
from repro.experiments.runner import (
    BatchRunner,
    ON_ERROR_MODES,
    RunPolicy,
    run_experiment,
    run_reference,
)
from repro.experiments.scenarios import (
    ExperimentCache,
    classification_tree,
    speedup_curves,
)
from repro.observability import (
    MetricsRegistry,
    ProgressReporter,
    SpanRecorder,
    interval_sums,
    spans_to_trace_events,
    trace_cell,
    write_report,
)
from repro.observability.events import EventBus
from repro.parallel import (
    ChunkingPolicy,
    cells_from_sweep,
    run_parallel_sweep,
)
from repro.queue import run_queue_sweep, run_worker
from repro.robustness.drain import (
    EXIT_DRAINED,
    EXIT_INTERRUPTED,
    DrainController,
    DrainRequested,
    DrainableHook,
)
from repro.robustness.faults import FAULT_KINDS, make_fault
from repro.robustness.journal import SweepJournal
from repro.sim.engine import Simulation
from repro.sim.trace import TraceRecorder
from repro.sync.profile import render_sync_profile
from repro.workloads.spec import build_program
from repro.workloads.suite import SUITE, by_name, sweep_cells
from repro.workloads.tracefile import load_trace

logger = logging.getLogger(__name__)


def _machine(args) -> MachineConfig:
    machine = MachineConfig(n_cores=args.threads)
    if getattr(args, "llc_mb", None):
        machine = machine.with_llc_size(int(args.llc_mb * MB))
    return machine


def _load_experiment(args) -> ExperimentConfig:
    """The experiment behind ``--config FILE`` (defaults without one).

    Commands taking ``--config`` declare their overlapping flags with
    ``default=None`` so an *explicitly passed* flag always overrides the
    file, while an absent flag falls back to the file's value (and the
    file's absence falls back to the built-in defaults).
    """
    path = getattr(args, "config", None)
    if path is None:
        return ExperimentConfig()
    return load_config(path)


def cmd_list(args) -> int:
    print(f"{'benchmark':<24s}{'suite':<10s}{'paper S16':>10s}  "
          f"{'class':<10s} expected bottlenecks")
    for spec in SUITE:
        print(
            f"{spec.full_name:<24s}{spec.suite:<10s}"
            f"{spec.target_speedup_16:>10.2f}  {spec.expected_class:<10s}"
            f"{', '.join(spec.expected_top) or '-'}"
        )
    return 0


def _report_interrupted(exc: DrainRequested) -> int:
    """Uniform CLI surface for a graceful drain (exit code 95)."""
    saved = "; checkpoint saved — resume to continue" if exc.saved else ""
    print(f"interrupted ({exc.reason}){saved}", file=sys.stderr)
    return EXIT_INTERRUPTED


def cmd_stack(args) -> int:
    spec = by_name(args.benchmark)
    experiment = _load_experiment(args)
    if args.checkpoint_every is not None and not (
        args.checkpoint or args.resume_from
    ):
        print("error: --checkpoint-every needs --checkpoint (or "
              "--resume-from, which re-saves in place)", file=sys.stderr)
        return 2
    drain = DrainController().install()
    try:
        if args.resume_from:
            return _stack_resume(args, spec, experiment, drain)
        return _stack_run(args, spec, experiment, drain)
    except DrainRequested as exc:
        return _report_interrupted(exc)
    finally:
        drain.uninstall()


def _stack_run(args, spec, experiment, drain) -> int:
    n_threads = (
        args.threads if args.threads is not None
        else experiment.workload.thread_counts[0]
    )
    scale = (
        args.scale if args.scale is not None else experiment.workload.scale
    )
    machine = experiment.machine.with_cores(n_threads)
    if getattr(args, "llc_mb", None):
        machine = machine.with_llc_size(int(args.llc_mb * MB))
    run = experiment.run
    engine = args.engine if args.engine is not None else run.engine
    hook = None
    if args.checkpoint:
        descriptor = cell_descriptor(
            machine, spec.full_name, n_threads, scale,
            max_cycles=run.max_cycles,
            livelock_window=run.livelock_window,
        )
        hook = CheckpointHook(args.checkpoint, descriptor, CheckpointPolicy(
            every_cycles=args.checkpoint_every, on_fault=True,
        ))
    result = run_experiment(
        spec.full_name, machine,
        build_program(spec, n_threads, scale=scale),
        build_program(spec, 1, scale=scale),
        max_cycles=run.max_cycles,
        livelock_window=run.livelock_window,
        on_timeout=(
            "truncate"
            if run.max_cycles is not None or run.livelock_window is not None
            else "raise"
        ),
        # the drain wrapper turns the engine's checkpoint poll into the
        # SIGINT/SIGTERM drain point (saving first when --checkpoint)
        checkpoint=DrainableHook(hook, drain),
        engine=engine,
    )
    print(render_stack(result.stack))
    print()
    print(advice(result.stack))
    if hook is not None and hook.n_saves:
        print()
        print(f"checkpoint: {hook.n_saves} save(s), last at cycle "
              f"{hook.last_header['cycle']} -> {hook.path}")
    return 0


def _stack_resume(args, spec, experiment, drain) -> int:
    """``repro stack --resume-from CKPT``: continue a checkpointed run
    to completion and render the final stack."""
    try:
        header = read_header(args.resume_from)
        descriptor = header["descriptor"]
        if descriptor["benchmark"] != spec.full_name:
            print(f"error: checkpoint {args.resume_from} belongs to "
                  f"{descriptor['benchmark']}, not {spec.full_name}",
                  file=sys.stderr)
            return 2
        sim, header = resume_simulation(
            args.resume_from, spec=spec,
            engine=(
                args.engine if args.engine is not None
                else experiment.run.engine
            ),
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not sim.accountant.enabled:
        print("error: checkpoint carries no accounting state; cannot "
              "build a speedup stack from it", file=sys.stderr)
        return 2
    run = experiment.run
    # Explicit limits (config file) override the ones the checkpointed
    # run was saved under — the way to continue a max-cycles-truncated
    # run under a raised budget.
    max_cycles = (
        run.max_cycles if run.max_cycles is not None
        else descriptor.get("max_cycles")
    )
    livelock_window = (
        run.livelock_window if run.livelock_window is not None
        else descriptor.get("livelock_window")
    )
    hook = None
    if args.checkpoint or args.checkpoint_every is not None:
        hook = CheckpointHook(
            args.checkpoint or args.resume_from, descriptor,
            CheckpointPolicy(
                every_cycles=args.checkpoint_every, on_fault=True,
            ),
        )
    print(f"resuming {spec.full_name} n={descriptor['n_threads']} from "
          f"cycle {header['cycle']} (saved on {header['reason']})")
    mt_result = sim.run(
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout=(
            "truncate"
            if max_cycles is not None or livelock_window is not None
            else "raise"
        ),
        checkpoint=DrainableHook(hook, drain),
    )
    report = sim.accountant.report(mt_result)
    st_result = run_reference(
        sim.machine, build_program(spec, 1, scale=descriptor["scale"]),
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout="truncate" if max_cycles is not None else "raise",
        engine=args.engine if args.engine is not None else run.engine,
    )
    ts = None if st_result.truncated else st_result.total_cycles
    stack = build_stack(spec.full_name, report, ts_cycles=ts)
    print(render_stack(stack))
    print()
    print(advice(stack))
    return 0


def cmd_inspect(args) -> int:
    try:
        print(inspect_checkpoint(args.path).render())
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_session(args) -> int:
    """``repro session``: an interactive (or ``--run``-scripted) shell
    over :class:`~repro.session.Session` — step, peek at the partial
    stack, perturb, continue."""
    from repro.session import Session, SessionShell

    try:
        if args.from_checkpoint:
            session = Session.from_checkpoint(
                args.from_checkpoint,
                experiment=args.config,
                engine=args.engine,
                events=args.events,
            )
        else:
            if not args.benchmark:
                print("error: a benchmark (or --from-checkpoint) is "
                      "required", file=sys.stderr)
                return 2
            session = Session.from_config(
                args.benchmark, args.threads,
                experiment=args.config,
                scale=args.scale,
                engine=args.engine,
                max_cycles=args.max_cycles,
                livelock_window=args.livelock_window,
                events=args.events,
            )
    except (ReproError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shell = SessionShell(session)
    if args.run:
        return shell.run_script(args.run)
    return shell.interact()


def cmd_curve(args) -> int:
    cache = ExperimentCache(scale=args.scale)
    curves = speedup_curves(cache, benchmarks=(args.benchmark,))
    print(render_speedup_curve(curves))
    return 0


def cmd_tree(args) -> int:
    cache = ExperimentCache(scale=args.scale)
    tree = classification_tree(cache)
    print(render_tree(tree))
    counts = tree.dominant_component_counts()
    print()
    print("dominant delimiters:",
          ", ".join(f"{k}: {v}" for k, v in sorted(counts.items())))
    return 0


def cmd_regions(args) -> int:
    spec = by_name(args.benchmark)
    machine = _machine(args)
    result = run_region_experiment(
        machine, build_program(spec, args.threads, scale=args.scale),
        name=spec.full_name,
    )
    if not result.stacks:
        print("no barriers -> no regions; try a phased benchmark "
              "(lud, bfs, needle, fft, ...)")
        return 1
    print(render_stack_series(
        result.stacks, title=f"region stacks: {spec.full_name}"
    ))
    return 0


def cmd_timeline(args) -> int:
    spec = by_name(args.benchmark)
    machine = _machine(args)
    trace = TraceRecorder()
    Simulation(
        machine, build_program(spec, args.threads, scale=args.scale),
        trace=trace,
    ).run()
    print(trace.render_timeline(machine.n_cores, width=args.width))
    utilization = trace.core_utilization(machine.n_cores)
    print("core utilization:",
          " ".join(f"{u:.0%}" for u in utilization))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"chrome trace written to {args.out}")
    return 0


def cmd_cpi(args) -> int:
    spec = by_name(args.benchmark)
    machine = _machine(args)
    result = Simulation(
        machine, build_program(spec, args.threads, scale=args.scale)
    ).run()
    print(render_cpi_stacks(cpi_stacks(result)))
    return 0


def cmd_sync(args) -> int:
    spec = by_name(args.benchmark)
    machine = _machine(args)
    result = Simulation(
        machine, build_program(spec, args.threads, scale=args.scale)
    ).run()
    print(render_sync_profile(result))
    return 0


def cmd_cost(args) -> int:
    cost = estimate_cost(MachineConfig(n_cores=args.threads))
    print(f"interference accounting: {cost.interference_bytes_per_core} B/core")
    print(f"spin load table:         {cost.spin_table_bytes} B/core")
    print(f"per core:                {cost.per_core_kb:.2f} KB")
    print(f"{args.threads}-core total: {cost.total_kb:14.2f} KB")
    return 0


def cmd_run_trace(args) -> int:
    try:
        program = load_trace(args.path)
    except TraceParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    machine = MachineConfig(n_cores=args.threads or program.n_threads)
    trace = TraceRecorder() if args.timeline else None
    result = Simulation(machine, program, trace=trace).run(
        max_cycles=args.max_cycles,
        on_timeout="truncate" if args.max_cycles is not None else "raise",
    )
    truncated = " (TRUNCATED at max-cycles)" if result.truncated else ""
    print(f"{program.n_threads} threads on {machine.n_cores} cores: "
          f"{result.total_cycles} cycles, {result.total_instrs} "
          f"instructions{truncated}")
    if trace is not None:
        print(trace.render_timeline(machine.n_cores))
    return 0


def cmd_trace(args) -> int:
    # harness spans always ride along as an extra track — the cell is
    # re-simulated anyway, so there is no baseline run to perturb
    spans = SpanRecorder()
    result, recorder = trace_cell(
        args.benchmark, args.threads, scale=args.scale,
        max_cycles=args.max_cycles, spans=spans,
    )
    sums = interval_sums(recorder)
    speedup = result.stack.actual_speedup
    doc = json.loads(recorder.to_chrome_trace(metadata={
        "benchmark": args.benchmark,
        "n_threads": args.threads,
        "scale": args.scale,
        "total_cycles": recorder.total_cycles,
        "actual_speedup": speedup,
    }))
    doc["traceEvents"].extend(spans_to_trace_events(spans.to_dicts()))
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    n_intervals = (
        len(recorder.run_intervals) + len(recorder.spin_segments)
        + len(recorder.yield_intervals) + len(recorder.miss_intervals)
    )
    truncated = " (TRUNCATED)" if recorder.truncated else ""
    speedup_txt = f"{speedup:.2f}" if speedup is not None else "n/a"
    print(f"{args.benchmark}:{args.threads}: {recorder.total_cycles} "
          f"cycles, speedup {speedup_txt}, {n_intervals} intervals on "
          f"{recorder.n_cores} cores{truncated}")
    print(f"  spin {sum(sums['spin_cycles_by_thread'].values())} cy, "
          f"yield {sum(sums['yield_cycles_by_thread'].values())} cy, "
          f"memory interference "
          f"{sum(sums['interference_by_core'].values())} cy")
    print(f"chrome trace written to {args.out} "
          f"(load in chrome://tracing or ui.perfetto.dev; "
          f"{len(spans)} harness spans on the span track)")
    return 0


def _parse_injections(specs: list[str] | None) -> dict[str, str]:
    """``--inject KIND@BENCH:N`` -> fault plan {cell key: fault kind}.

    Kinds stay strings (resolved per cell by the runner): strings
    validate eagerly here, travel to worker processes, and record
    cleanly — the closures :func:`make_fault` builds do neither.
    """
    plan = {}
    for item in specs or ():
        try:
            kind, cell = item.split("@", 1)
            name, n_txt = cell.rsplit(":", 1)
            int(n_txt)
        except ValueError:
            raise ConfigError(
                f"bad --inject {item!r}; expected KIND@BENCH:N, e.g. "
                f"deadlock@cholesky:16"
            ) from None
        make_fault(kind)  # eager kind validation (raises ConfigError)
        plan[f"{name}:{n_txt}"] = kind
    return plan


def cmd_sweep(args) -> int:
    experiment = _load_experiment(args)
    workload, run = experiment.workload, experiment.run
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks
        else workload.benchmarks
    )
    thread_counts = (
        tuple(int(n) for n in str(args.threads).split(","))
        if args.threads is not None
        else workload.thread_counts
    )
    scale = args.scale if args.scale is not None else workload.scale
    jobs = args.jobs if args.jobs is not None else run.jobs
    backend = args.backend
    if backend == "queue" and not args.queue_dir:
        print("error: --backend queue needs --queue-dir", file=sys.stderr)
        return 2
    if args.queue_dir and backend != "queue":
        backend = "queue"  # --queue-dir alone implies the queue backend
    #: the machine only deviates from the per-cell paper default when a
    #: config file supplies one
    machine = experiment.machine if args.config else None
    cells = sweep_cells(benchmarks, thread_counts)
    checkpoint_dir = (
        args.checkpoint_dir if args.checkpoint_dir is not None
        else run.checkpoint_dir
    )
    if backend == "queue" and checkpoint_dir is None:
        # queue sweeps always checkpoint: mid-cell crash-resume is the
        # point of the lease protocol
        checkpoint_dir = os.path.join(args.queue_dir, "checkpoints")
    policy = RunPolicy(
        on_error=(
            args.on_error if args.on_error is not None else run.on_error
        ),
        max_retries=(
            args.retries if args.retries is not None else run.max_retries
        ),
        backoff_s=(
            args.backoff if args.backoff is not None else run.backoff_s
        ),
        backoff_factor=run.backoff_factor,
        backoff_max_s=(
            args.backoff_max if args.backoff_max is not None
            else run.backoff_max_s
        ),
        backoff_jitter=run.backoff_jitter,
        max_cycles=(
            args.max_cycles if args.max_cycles is not None
            else run.max_cycles
        ),
        livelock_window=(
            args.livelock_window if args.livelock_window is not None
            else run.livelock_window
        ),
        checkpoint_every=(
            args.checkpoint_every if args.checkpoint_every is not None
            else run.checkpoint_every
        ),
        checkpoint_dir=checkpoint_dir,
        engine=args.engine if args.engine is not None else run.engine,
    )
    fault_plan = _parse_injections(args.inject)
    journal = SweepJournal(args.journal)
    metrics = MetricsRegistry() if args.emit_metrics else None
    spans = SpanRecorder() if args.emit_spans else None
    bus = None
    if args.progress or args.heartbeat or args.heartbeat_log:
        bus = EventBus()
        # --heartbeat without --progress keeps stderr quiet but still
        # drives the heartbeat file off the same reporter
        ProgressReporter(
            len(cells),
            jobs=jobs,
            stream=sys.stderr if args.progress else io.StringIO(),
            heartbeat_path=args.heartbeat,
            heartbeat_log_path=args.heartbeat_log,
        ).attach(bus)
    drain = DrainController().install()
    try:
        if backend == "queue":
            os.makedirs(policy.checkpoint_dir, exist_ok=True)
            report = run_queue_sweep(
                cells_from_sweep(
                    cells, scale=scale, fault_kinds=fault_plan,
                    machine=machine,
                ),
                workers=jobs,
                policy=policy,
                journal=journal,
                resume=args.resume,
                bus=bus,
                metrics=metrics,
                spans=spans,
                queue_dir=args.queue_dir,
                lease_ttl_s=args.lease_ttl,
                poison_after=args.poison_after,
                drain=drain,
            )
        elif jobs > 1:
            report = run_parallel_sweep(
                cells_from_sweep(
                    cells, scale=scale, fault_kinds=fault_plan,
                    machine=machine,
                ),
                jobs=jobs,
                policy=policy,
                journal=journal,
                resume=args.resume,
                bus=bus,
                metrics=metrics,
                spans=spans,
                drain=drain,
                chunking=(
                    ChunkingPolicy(chunk_cells=args.chunk_cells)
                    if args.chunk_cells is not None else None
                ),
            )
        else:
            runner = BatchRunner(
                policy=policy,
                scale=scale,
                journal=journal,
                fault_plan=fault_plan,
                bus=bus,
                metrics=metrics,
                spans=spans,
                machine_factory=(
                    machine.with_cores if machine is not None else None
                ),
                drain=drain,
            )
            report = runner.run_sweep(cells, resume=args.resume)
    finally:
        drain.uninstall()
    if metrics is not None:
        metrics.write(args.emit_metrics)
        print(f"metrics written to {args.emit_metrics}")
    if spans is not None:
        rows = spans.to_dicts()
        with open(args.emit_spans, "w") as handle:
            json.dump({
                "metadata": {
                    "n_cells": len(cells),
                    "jobs": jobs,
                    "backend": backend,
                },
                "spans": rows,
            }, handle, indent=1)
            handle.write("\n")
        print(f"{len(rows)} spans written to {args.emit_spans}")
    for outcome in report.outcomes:
        if outcome.status == "ok":
            result = outcome.result
            flag = (
                " [truncated]" if result.stack.truncated else ""
            )
            speedup = result.stack.actual_speedup
            speedup_txt = f"{speedup:6.2f}" if speedup is not None else "   n/a"
            print(f"  ok      {outcome.key:<28s} speedup {speedup_txt}{flag}")
        elif outcome.status == "resumed":
            print(f"  resumed {outcome.key:<28s} (journal: already ok)")
        else:
            print(f"  FAILED  {outcome.key:<28s} {outcome.error_type}: "
                  f"{outcome.error}")
    print(f"{len(report.completed)} ok, {len(report.resumed)} resumed, "
          f"{len(report.failures)} failed")
    if not report.ok:
        print()
        print(report.render_failure_report())
    if report.interrupted:
        journal.save()  # durable even when zero cells completed
        not_run = len(cells) - len(report.outcomes)
        print(f"interrupted: journal finalized, {not_run} cell(s) not "
              f"run — re-run with --resume to finish", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 0 if report.ok else 1


def cmd_worker(args) -> int:
    """``repro worker <queue-dir>``: one queue worker process.

    Exits 0 when every cell of the queue is terminal, 75
    (:data:`~repro.robustness.drain.EXIT_DRAINED`) when drained by
    SIGTERM/SIGINT after releasing its lease.
    """
    drain = DrainController().install()
    try:
        return run_worker(
            args.queue_dir,
            worker_id=args.worker_id,
            drain=drain,
            poll_s=args.poll,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        drain.uninstall()


def cmd_bench(args) -> int:
    experiment = _load_experiment(args)
    if args.jobs_list:
        jobs_list = tuple(int(j) for j in args.jobs_list.split(","))
    else:
        jobs_list = (1, os.cpu_count() or 1)
    # bench keeps its own (smaller) fallback defaults when neither the
    # flag nor a config file specifies the value
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks
        else experiment.workload.benchmarks
    )
    if args.threads is not None:
        thread_counts = tuple(int(n) for n in str(args.threads).split(","))
    elif args.config:
        thread_counts = experiment.workload.thread_counts
    else:
        thread_counts = (2, 4)
    if args.scale is not None:
        scale = args.scale
    elif args.config:
        scale = experiment.workload.scale
    else:
        scale = 0.25
    if args.max_cycles is not None:
        max_cycles = args.max_cycles
    elif args.config and experiment.run.max_cycles is not None:
        max_cycles = experiment.run.max_cycles
    else:
        max_cycles = 20_000_000
    profile = args.profile or args.profile_out is not None
    doc = run_bench(
        benchmarks=benchmarks,
        thread_counts=thread_counts,
        scale=scale,
        jobs_list=jobs_list,
        repeats=args.repeats,
        max_cycles=max_cycles,
        profile=profile,
    )
    if profile:
        # the collapsed stacks go to their own file (flamegraph.pl /
        # speedscope format), not into the JSON document
        collapsed = doc["profile"].pop("collapsed")
        profile_out = args.profile_out or "profile_collapsed.txt"
        with open(profile_out, "w") as handle:
            handle.write("\n".join(collapsed) + "\n")
    print(render_bench(doc))
    if profile:
        print(f"collapsed stacks written to {profile_out}")
    if args.out:
        write_bench(doc, args.out)
        print(f"written to {args.out}")
    return 0


def cmd_report(args) -> int:
    """``repro report <journal|queue-dir>``: one-file HTML health report."""
    try:
        data = write_report(args.source, args.out)
    except (ConfigError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cells = data["cells"]
    ok = sum(1 for c in cells if c["status"] == "ok")
    print(f"report on {len(cells)} cells ({ok} ok, {data['kind']} "
          f"source) written to {args.out}")
    return 0


def cmd_config_show(args) -> int:
    """Print the fully resolved experiment config (defaults merged in)."""
    experiment = (
        load_config(args.path) if args.path else ExperimentConfig()
    )
    doc = experiment.to_dict()
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(dumps_toml(doc), end="")
    return 0


def cmd_config_validate(args) -> int:
    """Validate a config file: schema, registry choices, suite names."""
    experiment = load_config(args.path)
    for name in experiment.workload.benchmarks or ():
        by_name(name)  # raises KeyError with close-match suggestions
    workload = experiment.workload
    n_bench = (
        len(workload.benchmarks) if workload.benchmarks is not None
        else len(SUITE)
    )
    print(f"{args.path}: OK")
    print(
        f"  machine: {experiment.machine.n_cores} cores, "
        f"LLC {experiment.machine.llc.size_bytes // MB}MB "
        f"{experiment.machine.llc.replacement}, "
        f"spin detector {experiment.machine.accounting.spin_detector}"
    )
    print(
        f"  workload: {n_bench} benchmark(s) x threads "
        f"{list(workload.thread_counts)}, scale {workload.scale:g}"
    )
    print(
        f"  run: on_error={experiment.run.on_error}, "
        f"jobs={experiment.run.jobs}"
    )
    for kind in kinds():
        print(f"  registered {kind}: {', '.join(available(kind))}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speedup stacks (ISPASS 2012) — simulator & analysis",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: INFO logging, -vv: DEBUG (place before the subcommand)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per log record on stderr",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, benchmark=True, configurable=False):
        if benchmark:
            p.add_argument("benchmark", help="suite benchmark, e.g. cholesky")
        if configurable:
            # default=None so explicit flags override --config values
            p.add_argument("--config", metavar="FILE", default=None,
                           help="experiment config file (TOML or JSON); "
                                "explicit flags override its values")
            p.add_argument("-n", "--threads", type=int, default=None,
                           help="threads == cores (default 16)")
            p.add_argument("--scale", type=float, default=None,
                           help="workload scale factor")
        else:
            p.add_argument("-n", "--threads", type=int, default=16,
                           help="threads == cores (default 16)")
            p.add_argument("--scale", type=float, default=1.0,
                           help="workload scale factor")
        p.add_argument("--llc-mb", type=float, default=None,
                       help="LLC size in MB (default 2)")

    sub.add_parser("list", help="list the benchmark suite"
                   ).set_defaults(func=cmd_list)

    p = sub.add_parser("stack", help="speedup stack for one benchmark")
    common(p, configurable=True)
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="engine backend: reference (default) or "
                        "vectorized (needs numpy; identical results, "
                        "faster wall-clock)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="save engine checkpoints to this file")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="CYCLES",
                   help="periodic save interval in simulated cycles")
    p.add_argument("--resume-from", metavar="CKPT", default=None,
                   help="continue a checkpointed run to completion")
    p.set_defaults(func=cmd_stack)

    p = sub.add_parser("curve", help="speedup vs thread count")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_curve)

    p = sub.add_parser("tree", help="Figure 6 classification tree")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_tree)

    p = sub.add_parser("regions", help="per-region stacks (Section 4.6)")
    common(p)
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser("timeline", help="scheduling timeline")
    common(p)
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--out", help="write Chrome trace JSON here")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("cpi", help="per-core CPI stacks")
    common(p)
    p.set_defaults(func=cmd_cpi)

    p = sub.add_parser("sync", help="per-lock contention profile")
    common(p)
    p.set_defaults(func=cmd_sync)

    p = sub.add_parser("cost", help="accounting hardware cost")
    p.add_argument("-n", "--threads", type=int, default=16)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser("run-trace", help="simulate a text op trace")
    p.add_argument("path")
    p.add_argument("-n", "--threads", type=int, default=None,
                   help="cores (default: one per trace thread)")
    p.add_argument("--timeline", action="store_true")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="truncate (don't crash) past this simulated time")
    p.set_defaults(func=cmd_run_trace)

    p = sub.add_parser(
        "trace",
        help="Chrome/Perfetto trace of one cell via the event bus",
    )
    p.add_argument("benchmark", help="suite benchmark, e.g. cholesky")
    p.add_argument("-n", "--threads", type=int, default=16,
                   help="threads == cores (default 16)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="watchdog: truncate runs past this simulated time")
    p.add_argument("--out", default="trace.json",
                   help="trace-event JSON output path (default trace.json)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sweep",
        help="hardened suite sweep: journal, retries, fault injection",
    )
    p.add_argument("--config", metavar="FILE", default=None,
                   help="experiment config file (TOML or JSON); explicit "
                        "flags override its values")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated full names (default: whole suite)")
    p.add_argument("-n", "--threads", default=None,
                   help="comma-separated thread counts (default 16)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale factor")
    p.add_argument("--journal", default=None,
                   help="checkpoint journal JSON path (enables --resume)")
    p.add_argument("--resume", action="store_true",
                   help="skip cells the journal already records as ok")
    p.add_argument("--on-error", choices=ON_ERROR_MODES, default=None,
                   help="failing cell policy (default: skip)")
    p.add_argument("--retries", type=int, default=None,
                   help="extra attempts per cell with --on-error retry")
    p.add_argument("--backoff", type=float, default=None,
                   help="initial retry backoff in seconds")
    p.add_argument("--backoff-max", type=float, default=None,
                   help="hard cap on any single retry delay in seconds "
                        "(default 60; growth is jittered)")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="watchdog: truncate runs past this simulated time")
    p.add_argument("--livelock-window", type=int, default=None,
                   help="watchdog: truncate after this many cycles without "
                        "forward progress")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="engine backend: reference (default) or "
                        "vectorized (needs numpy; identical results, "
                        "faster wall-clock)")
    p.add_argument("--inject", action="append", metavar="KIND@BENCH:N",
                   help=f"inject a fault into one cell; KIND is one of "
                        f"{', '.join(FAULT_KINDS)} (repeatable)")
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes for the sweep (default 1: "
                        "serial in-process execution)")
    p.add_argument("--chunk-cells", type=int, default=None,
                   help="fixed cells per dispatch chunk for --jobs > 1 "
                        "(default: adaptive sizing by estimated cell "
                        "cost); any value yields byte-identical journals")
    p.add_argument("--emit-metrics", metavar="PATH", default=None,
                   help="collect per-cell sim/runtime metrics and write "
                        "the aggregated registry JSON here")
    p.add_argument("--emit-spans", metavar="PATH", default=None,
                   help="record harness phase spans (wall-clock; never "
                        "journaled) and write them as JSON here; with "
                        "--backend queue the spans also land on each "
                        "cell's queue record for `repro report`")
    p.add_argument("--progress", action="store_true",
                   help="live one-line progress + ETA on stderr")
    p.add_argument("--heartbeat", metavar="PATH", default=None,
                   help="write a machine-readable heartbeat JSON here on "
                        "every sweep event")
    p.add_argument("--heartbeat-log", metavar="PATH", default=None,
                   help="append every heartbeat as one JSON line here "
                        "(history, where --heartbeat keeps latest only)")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="save per-cell engine checkpoints under this "
                        "directory; crashed or truncated cells resume "
                        "from them on the next attempt")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="CYCLES",
                   help="periodic save interval in simulated cycles "
                        "(needs --checkpoint-dir)")
    p.add_argument("--backend", choices=("process", "queue"),
                   default="process",
                   help="execution backend: 'process' (in-process pool) "
                        "or 'queue' (durable work queue with leased "
                        "cells; needs --queue-dir)")
    p.add_argument("--queue-dir", metavar="DIR", default=None,
                   help="durable work-queue directory (implies "
                        "--backend queue); workers lease cells from it "
                        "and crash-resume via checkpoints")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SECONDS",
                   help="queue lease TTL; a worker silent this long "
                        "loses its cell to the reclaimer (default 30)")
    p.add_argument("--poison-after", type=int, default=3,
                   metavar="N",
                   help="quarantine a cell after N expired leases "
                        "(default 3)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "worker",
        help="run one work-queue worker (see sweep --backend queue)",
    )
    p.add_argument("queue_dir", help="queue directory to attach to")
    p.add_argument("--worker-id", default=None,
                   help="stable worker name for leases and heartbeats "
                        "(default: worker-<pid>)")
    p.add_argument("--poll", type=float, default=0.05,
                   metavar="SECONDS",
                   help="idle poll interval (default 0.05)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "bench",
        help="time the sweep serial vs parallel; emit BENCH_sweep.json",
    )
    p.add_argument("--config", metavar="FILE", default=None,
                   help="experiment config file (TOML or JSON); explicit "
                        "flags override its values")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated full names (default: whole suite)")
    p.add_argument("-n", "--threads", default=None,
                   help="comma-separated thread counts (default 2,4)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale factor (default 0.25)")
    p.add_argument("--jobs-list", default=None,
                   help="comma-separated --jobs levels "
                        "(default: 1,<cpu_count>)")
    p.add_argument("--repeats", type=int, default=1,
                   help="repetitions per configuration (best-of)")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="watchdog for every benchmark run "
                        "(default 20,000,000)")
    p.add_argument("--profile", action="store_true",
                   help="profile one serial cell with the deterministic "
                        "profiler; adds a `profile` section to the JSON "
                        "and writes a collapsed-stack file")
    p.add_argument("--profile-out", metavar="PATH", default=None,
                   help="collapsed-stack output path (default "
                        "profile_collapsed.txt; implies --profile)")
    p.add_argument("--out", default=None,
                   help="also write the JSON document here")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "report",
        help="self-contained HTML health report for a sweep",
    )
    p.add_argument("source",
                   help="sweep journal JSON or queue directory")
    p.add_argument("--out", default="report.html",
                   help="HTML output path (default report.html)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "config",
        help="inspect and validate experiment config files",
    )
    csub = p.add_subparsers(dest="config_command", required=True)
    ps = csub.add_parser(
        "show", help="print the resolved experiment config"
    )
    ps.add_argument("path", nargs="?", default=None,
                    help="config file (omit for the built-in defaults)")
    ps.add_argument("--json", action="store_true",
                    help="emit JSON instead of TOML")
    ps.set_defaults(func=cmd_config_show)
    pv = csub.add_parser(
        "validate",
        help="validate a config file (schema, registry names, suite names)",
    )
    pv.add_argument("path", help="config file to validate")
    pv.set_defaults(func=cmd_config_validate)

    p = sub.add_parser(
        "inspect",
        help="partial speedup stack of an engine checkpoint",
    )
    p.add_argument("path", help="checkpoint file (.ckpt)")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "session",
        help="interactive steppable simulation session (REPL or --run "
             "script)",
    )
    p.add_argument("benchmark", nargs="?", default=None,
                   help="suite benchmark (omit with --from-checkpoint)")
    p.add_argument("--config", metavar="FILE", default=None,
                   help="experiment config file; explicit flags override")
    p.add_argument("-n", "--threads", type=int, default=None,
                   help="threads == cores (default: config's first count)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale factor")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="engine backend: reference (default) or vectorized")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="watchdog budget in simulated cycles")
    p.add_argument("--livelock-window", type=int, default=None,
                   help="no-progress watchdog window in scheduling steps")
    p.add_argument("--from-checkpoint", metavar="CKPT", default=None,
                   help="start from a saved checkpoint instead of cycle 0")
    p.add_argument("--events", action="store_true",
                   help="attach an observability bus ('events' command)")
    p.add_argument("--run", metavar="SCRIPT", default=None,
                   help="semicolon-separated commands, e.g. "
                        "'step 5000; stack; inject llc_flush; run; stack'")
    p.set_defaults(func=cmd_session)

    return parser


#: the one handler this CLI owns on the root logger; replaced (never
#: stacked) on repeated in-process invocations of :func:`main`
_LOG_HANDLER: logging.Handler | None = None


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per record, for machine-readable log capture."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc)


def _configure_logging(verbosity: int, log_json: bool = False) -> None:
    global _LOG_HANDLER
    level = (
        logging.WARNING if verbosity <= 0
        else logging.INFO if verbosity == 1
        else logging.DEBUG
    )
    # ``logging.basicConfig`` is a no-op once the root logger has any
    # handler, yet tests and notebooks call ``main`` many times in one
    # process with *different* verbosity — and any pre-existing foreign
    # handler would freeze the format forever.  Own exactly one handler:
    # remove ours from the previous invocation, then install a fresh one
    # with the requested format and level.
    root = logging.getLogger()
    if _LOG_HANDLER is not None:
        root.removeHandler(_LOG_HANDLER)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        _JsonLogFormatter() if log_json
        else logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
    _LOG_HANDLER = handler


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.log_json)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
