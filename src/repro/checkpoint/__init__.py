"""Checkpointable simulation kernel: save/restore, crash-resume, and
mid-run stack inspection.

Built on the :class:`~repro.components.protocols.Snapshotable` protocol
(``state_dict()`` / ``load_state_dict()``) that every stateful layer of
the simulator implements, this package provides:

* :mod:`repro.checkpoint.format` — the versioned two-line on-disk
  format, guarded by a schema version and a config hash;
* :mod:`repro.checkpoint.policy` — :class:`CheckpointPolicy` (every-N
  cycles / on-watchdog / on-fault) and the engine-facing
  :class:`CheckpointHook`;
* :mod:`repro.checkpoint.resume` — cell descriptors and
  :func:`resume_simulation`, which rebuilds a live run from a file;
* :mod:`repro.checkpoint.inspect` — :func:`inspect_checkpoint`, the
  partial speedup stack of a saved run.

The keystone invariant — locked by ``tests/checkpoint/`` — is that for
any checkpoint cycle C, running to completion and save-at-C → load →
continue produce byte-identical stacks, journals and metrics, under
every registered policy and under injected faults.
"""

from repro.checkpoint.format import (
    SCHEMA_VERSION,
    config_hash,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.checkpoint.inspect import CheckpointReport, inspect_checkpoint
from repro.checkpoint.policy import CheckpointHook, CheckpointPolicy
from repro.checkpoint.resume import (
    cell_descriptor,
    descriptor_diff,
    fault_descriptor,
    resume_simulation,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointHook",
    "CheckpointPolicy",
    "CheckpointReport",
    "cell_descriptor",
    "config_hash",
    "descriptor_diff",
    "fault_descriptor",
    "inspect_checkpoint",
    "load_checkpoint",
    "read_header",
    "resume_simulation",
    "save_checkpoint",
]
