"""Versioned on-disk checkpoint format.

A checkpoint file is two lines of compact JSON:

* line 1 — the *header*: schema version, package version, the cell
  descriptor (machine/benchmark/run parameters that must match on
  resume) plus its hash, the cycle count at save time, and the reason
  the save fired (``"interval"``, ``"max_cycles"``, ``"livelock"``,
  ``"deadlock"`` or ``"fault"``);
* line 2 — the *payload*: the full ``Simulation.state_dict()`` tree.

The header line is small and self-contained, so tools (``repro
inspect``, the batch runner's resume probe) can classify a checkpoint
without parsing the multi-megabyte payload.  Loading refuses — with
:class:`~repro.errors.CheckpointError` — when the schema version is
unknown or when the saved ``config_hash`` does not match the
descriptor of the experiment trying to resume: silently continuing a
run under a different machine config or workload would produce stacks
that belong to no experiment at all.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro._version import repro_version
from repro.errors import CheckpointError

#: bump when the header or payload layout changes incompatibly
SCHEMA_VERSION = 1


def config_hash(descriptor: dict[str, Any]) -> str:
    """16-hex-char digest of a cell descriptor's canonical JSON form.

    Canonicalization (sorted keys, no whitespace) makes the hash
    independent of dict insertion order, so the same experiment always
    hashes identically across processes and sessions.
    """
    canonical = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def save_checkpoint(
    path: str | Path,
    state: dict[str, Any],
    descriptor: dict[str, Any],
    *,
    cycle: int,
    reason: str,
) -> dict[str, Any]:
    """Atomically write a checkpoint file; returns the header written."""
    path = Path(path)
    header = {
        "schema_version": SCHEMA_VERSION,
        "repro_version": repro_version(),
        "config_hash": config_hash(descriptor),
        "cycle": cycle,
        "reason": reason,
        "descriptor": descriptor,
    }
    body = (
        json.dumps(header, separators=(",", ":"))
        + "\n"
        + json.dumps(state, separators=(",", ":"))
        + "\n"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(body, encoding="utf-8")
    os.replace(tmp, path)
    return header


def read_header(path: str | Path) -> dict[str, Any]:
    """Parse and validate only the header line of a checkpoint file."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            first = fh.readline()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        header = json.loads(first)
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint header in {path}: {exc}"
        ) from exc
    if not isinstance(header, dict) or "schema_version" not in header:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    if header["schema_version"] != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version "
            f"{header['schema_version']}, this build reads "
            f"{SCHEMA_VERSION}"
        )
    return header


def load_checkpoint(
    path: str | Path,
    expected_descriptor: dict[str, Any] | None = None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Load ``(header, state)`` from a checkpoint file.

    With ``expected_descriptor`` the saved ``config_hash`` is checked
    against the descriptor of the experiment about to resume; a
    mismatch refuses the load rather than resuming the wrong run.
    """
    path = Path(path)
    header = read_header(path)
    if expected_descriptor is not None:
        expected_hash = config_hash(expected_descriptor)
        if header.get("config_hash") != expected_hash:
            raise CheckpointError(
                f"checkpoint {path} was saved under a different experiment "
                f"config (saved hash {header.get('config_hash')}, this "
                f"experiment hashes to {expected_hash}); refusing to resume"
            )
    try:
        with path.open("r", encoding="utf-8") as fh:
            fh.readline()
            payload = fh.readline()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not payload.strip():
        raise CheckpointError(f"checkpoint {path} has no state payload")
    try:
        state = json.loads(payload)
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint payload in {path}: {exc}"
        ) from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint {path} payload is not a state tree"
        )
    return header, state
