"""When to checkpoint: policy plus the engine-facing hook.

:class:`CheckpointPolicy` is a frozen description (serializable,
hashable) of the three triggers:

* ``every_cycles`` — periodic saves from the scheduling loop;
* ``on_watchdog`` — save the pre-truncation state when the engine
  watchdog fires (``max_cycles`` / ``livelock``), so a cut run can be
  resumed under a raised limit;
* ``on_fault`` — save on engine faults (deadlock and internal errors)
  before the error propagates.

:class:`CheckpointHook` binds a policy to a target path and a cell
descriptor and is what :meth:`repro.sim.engine.Simulation.run` consumes:
the engine calls ``due(now)`` once per scheduling step, ``save(sim,
"interval")`` when due, and routes watchdog/fault exits through
``wants(reason)``.  Saving serializes ``sim.state_dict()`` — which
never mutates the simulation — so an armed hook cannot perturb the
run's determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.checkpoint.format import save_checkpoint

#: watchdog truncation reasons (covered by ``on_watchdog``)
WATCHDOG_REASONS = ("max_cycles", "livelock")
#: engine fault reasons (covered by ``on_fault``)
FAULT_REASONS = ("deadlock", "fault")


@dataclass(frozen=True)
class CheckpointPolicy:
    """Which events trigger a checkpoint save."""

    #: simulated cycles between periodic saves; None = no periodic saves
    every_cycles: int | None = None
    on_watchdog: bool = True
    on_fault: bool = False

    def __post_init__(self) -> None:
        if self.every_cycles is not None and self.every_cycles < 1:
            raise ValueError(
                f"every_cycles must be >= 1: {self.every_cycles}"
            )


class CheckpointHook:
    """One run's checkpoint target: path + descriptor + policy."""

    def __init__(
        self,
        path: str | Path,
        descriptor: dict[str, Any],
        policy: CheckpointPolicy | None = None,
    ) -> None:
        self.path = Path(path)
        self.descriptor = descriptor
        self.policy = policy or CheckpointPolicy()
        self._next_due = self.policy.every_cycles
        #: saves performed so far (all reasons)
        self.n_saves = 0
        #: header of the most recent save (None until the first)
        self.last_header: dict[str, Any] | None = None

    def due(self, now: int) -> bool:
        """Is a periodic save due at simulated time ``now``?"""
        return self._next_due is not None and now >= self._next_due

    def wants(self, reason: str) -> bool:
        """Does the policy cover an exit-path save for ``reason``?"""
        if reason in WATCHDOG_REASONS:
            return self.policy.on_watchdog
        if reason in FAULT_REASONS:
            return self.policy.on_fault
        return True

    def save(self, sim, reason: str) -> dict[str, Any]:
        """Serialize ``sim`` to the target path; returns the header."""
        cycle = max((core.now for core in sim.cores), default=0)
        header = save_checkpoint(
            self.path, sim.state_dict(), self.descriptor,
            cycle=cycle, reason=reason,
        )
        every = self.policy.every_cycles
        if every is not None:
            self._next_due = (cycle // every + 1) * every
        self.n_saves += 1
        self.last_header = header
        return header
