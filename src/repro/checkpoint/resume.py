"""Descriptors and crash-resume: rebuild a live Simulation from disk.

A checkpoint is only as good as the guarantee that it resumes *the
same* experiment.  The **cell descriptor** captures everything the
rebuilt run depends on:

* the machine config (pre-fault — the fault is replayed on resume),
* the benchmark name, thread count and problem scale,
* the armed fault (kind + seed + how many times the injector has been
  applied: the injector's RNG advances per application, so attempt 3
  of a retried cell runs a *different* program than attempt 1),
* the watchdog limits.

Its hash is stamped into the header at save time and checked at load
time, so a checkpoint refuses to resume under a different
:class:`~repro.config.ExperimentConfig`.

:func:`resume_simulation` then rebuilds the machine and program
deterministically (thread bodies are Python generators — they cannot
be serialized, only re-derived), replays the fault to the recorded
application count, constructs a fresh :class:`Simulation` with (when
the payload carries accounting state) a fresh accountant, and restores
the whole state tree onto it.  Calling ``run()`` on the result
continues exactly where the save left off.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.accounting.accountant import CycleAccountant
from repro.accounting.interface import NULL_ACCOUNTANT
from repro.checkpoint.format import load_checkpoint
from repro.config import MachineConfig, machine_from_dict, machine_to_dict
from repro.errors import CheckpointError
from repro.robustness.faults import make_fault
from repro.sim.engine import Simulation
from repro.workloads.spec import BenchmarkSpec, build_program


def fault_descriptor(kind: str, seed: int, applications: int) -> dict[str, Any]:
    """Descriptor entry for a string-kind fault armed on the cell.

    ``applications`` is the attempt number: how many times the
    injector built by ``make_fault(kind, seed)`` has been applied
    (including the application that produced the checkpointed run).
    """
    return {"kind": kind, "seed": seed, "applications": applications}


def cell_descriptor(
    machine: MachineConfig,
    benchmark: str,
    n_threads: int,
    scale: float,
    *,
    fault: dict[str, Any] | None = None,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
) -> dict[str, Any]:
    """The config-hash identity of one (benchmark, N) run.

    ``machine`` is the *pre-fault* machine; a machine-transforming
    fault (e.g. ``mem-spike``) is described by ``fault`` and replayed
    on resume.
    """
    return {
        "machine": machine_to_dict(machine),
        "benchmark": benchmark,
        "n_threads": n_threads,
        "scale": scale,
        "fault": fault,
        "max_cycles": max_cycles,
        "livelock_window": livelock_window,
    }


def descriptor_diff(
    expected: dict[str, Any], actual: dict[str, Any], prefix: str = ""
) -> list[str]:
    """Human-readable field-level differences between two descriptors.

    The config hash tells you *that* a checkpoint belongs to a
    different experiment; this tells you *where* — one
    ``"path: checkpoint X, config Y"`` line per mismatched leaf, nested
    dicts flattened to dotted paths.  Used by
    :meth:`repro.session.Session.from_checkpoint` to turn the raw hash
    refusal into a :class:`~repro.errors.ConfigError` naming the
    fields.
    """
    diffs: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        path = f"{prefix}{key}"
        if key not in expected:
            diffs.append(f"{path}: checkpoint {actual[key]!r}, "
                         "config <absent>")
        elif key not in actual:
            diffs.append(f"{path}: checkpoint <absent>, "
                         f"config {expected[key]!r}")
        elif isinstance(expected[key], dict) and isinstance(actual[key], dict):
            diffs.extend(
                descriptor_diff(expected[key], actual[key], f"{path}.")
            )
        elif expected[key] != actual[key]:
            diffs.append(
                f"{path}: checkpoint {actual[key]!r}, "
                f"config {expected[key]!r}"
            )
    return diffs


def _replay_fault(
    descriptor: dict[str, Any],
    fault_desc: dict[str, Any],
    program,
    machine: MachineConfig,
    spec: BenchmarkSpec,
):
    """Apply the descriptor's fault at the recorded application count.

    The injector RNG draws once (or more) per application, so earlier
    applications are burned on throwaway programs — cheap, because the
    program transforms are lazy generators that are never iterated.
    """
    if "kind" not in fault_desc:
        raise CheckpointError(
            "checkpoint was saved with an opaque (non-descriptor) fault; "
            "it cannot be rebuilt for resume"
        )
    fault = make_fault(fault_desc["kind"], fault_desc.get("seed", 0))
    for _ in range(fault_desc.get("applications", 1) - 1):
        throwaway = build_program(
            spec, descriptor["n_threads"], scale=descriptor["scale"]
        )
        fault(throwaway, machine)
    return fault(program, machine)


def resume_simulation(
    path: str | Path,
    *,
    spec: BenchmarkSpec | None = None,
    expected_descriptor: dict[str, Any] | None = None,
    bus=None,
    engine: str = "reference",
) -> tuple[Simulation, dict[str, Any]]:
    """Rebuild a restored, ready-to-``run()`` Simulation from a file.

    ``spec`` overrides benchmark lookup for programs that are not part
    of the built-in suite (the spec must describe the same workload the
    checkpoint was saved from — the op-replay cursor check catches
    divergence, but only coarsely).  ``expected_descriptor`` adds the
    config-hash refusal on top of the schema check.

    ``engine`` picks the backend the resumed run continues under.  The
    descriptor deliberately does *not* record the saving backend:
    every backend serializes the identical state tree, so a checkpoint
    written by the reference engine resumes under the vectorized one
    and vice versa — engine choice is an execution detail, not part of
    the experiment's identity.

    Returns ``(simulation, header)``.
    """
    header, state = load_checkpoint(
        path, expected_descriptor=expected_descriptor
    )
    descriptor = header["descriptor"]
    machine = machine_from_dict(descriptor["machine"])
    if spec is None:
        from repro.workloads.suite import by_name

        spec = by_name(descriptor["benchmark"])
    program = build_program(
        spec, descriptor["n_threads"], scale=descriptor["scale"]
    )
    fault_desc = descriptor.get("fault")
    if fault_desc is not None:
        program, machine = _replay_fault(
            descriptor, fault_desc, program, machine, spec
        )
    accountant = (
        CycleAccountant(machine, bus=bus)
        if "accountant" in state
        else NULL_ACCOUNTANT
    )
    from repro.components.registry import resolve

    sim = resolve("engine", engine)(machine, program, accountant, bus=bus)
    sim.load_state_dict(state)
    return sim, header
