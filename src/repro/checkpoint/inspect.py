"""Mid-run stack inspection: render a partial speedup stack from a
checkpoint file, without resuming the run.

The accounting counters inside a checkpoint are exact at the moment of
the save, so the paper's post-processing (Section 4.7) applies to them
unchanged — the only difference from an end-of-run stack is that
unfinished threads are treated as ending at the checkpoint cycle
(exactly how the engine watchdog closes out a truncated run).  The
result is the speedup stack *so far*: useful for peeking at a
long-running sweep cell, or post-mortem on a watchdog/fault checkpoint.

The partial-run accounting itself lives in
:mod:`repro.accounting.report` (:func:`partial_run_view`,
:func:`render_partial_stack`) and is shared with interactive sessions
(:meth:`repro.session.Session.peek_stack`) — one formatter, two
front-ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.accounting.accountant import CycleAccountant
from repro.accounting.report import partial_run_view, render_partial_stack
from repro.checkpoint.format import load_checkpoint
from repro.config import machine_from_dict
from repro.core.stack import SpeedupStack, build_stack
from repro.osmodel.thread import FINISHED
from repro.robustness.snapshot import EngineSnapshot, snapshot_from_state


@dataclass
class CheckpointReport:
    """Everything ``repro inspect`` shows for one checkpoint."""

    header: dict
    snapshot: EngineSnapshot
    #: partial stack; None when the run carried no accounting hardware
    stack: SpeedupStack | None

    def render(self) -> str:
        header = self.header
        descriptor = header["descriptor"]
        lines = [
            f"checkpoint: {descriptor['benchmark']} "
            f"n={descriptor['n_threads']} scale={descriptor['scale']}",
            f"  saved at cycle {header['cycle']} ({header['reason']}) "
            f"by repro {header['repro_version']} "
            f"[schema {header['schema_version']}, "
            f"config {header['config_hash']}]",
            f"  engine: {self.snapshot.summary()}",
        ]
        if self.stack is None:
            lines.append("  (no accounting state — no stack to render)")
        else:
            lines.append("")
            lines.append(render_partial_stack(
                self.stack, cycle=header["cycle"], reason=header["reason"],
            ))
        return "\n".join(lines)


def inspect_checkpoint(path: str | Path) -> CheckpointReport:
    """Load a checkpoint and derive its partial speedup stack."""
    header, state = load_checkpoint(path)
    descriptor = header["descriptor"]
    snapshot = snapshot_from_state(state)
    stack = None
    if "accountant" in state:
        machine = machine_from_dict(descriptor["machine"])
        accountant = CycleAccountant(machine)
        accountant.load_state_dict(state["accountant"])
        now = max((core["now"] for core in state["cores"]), default=0)
        partial = partial_run_view(
            [
                t["end_time"] if t["state"] == FINISHED else None
                for t in state["threads"]
            ],
            now,
        )
        stack = build_stack(descriptor["benchmark"], accountant.report(partial))
    return CheckpointReport(header=header, snapshot=snapshot, stack=stack)
