"""Synchronization library: spin-then-yield locks, barriers, futexes."""
