"""Synchronization profiling: per-lock and per-barrier contention.

When a speedup stack says "spinning" or "yielding" is the bottleneck,
the next question is *which lock*.  This report answers it from a
finished run: acquisitions, contention rate, total waiting, holding
time and utilization per lock, plus barrier episode counts — the data
behind the paper's advice to "use finer grained locks and smaller
critical sections".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimResult


@dataclass(frozen=True)
class LockProfile:
    """Contention statistics of one lock over a run."""

    lock_id: int
    n_acquires: int
    n_contended: int
    total_wait_cycles: int
    total_hold_cycles: int
    run_cycles: int

    @property
    def contention_rate(self) -> float:
        """Fraction of acquisitions that found the lock held."""
        if self.n_acquires == 0:
            return 0.0
        return self.n_contended / self.n_acquires

    @property
    def utilization(self) -> float:
        """Fraction of the run the lock was held (1.0 = fully serial)."""
        if self.run_cycles == 0:
            return 0.0
        return min(1.0, self.total_hold_cycles / self.run_cycles)

    @property
    def mean_wait_cycles(self) -> float:
        if self.n_contended == 0:
            return 0.0
        return self.total_wait_cycles / self.n_contended

    @property
    def mean_hold_cycles(self) -> float:
        if self.n_acquires == 0:
            return 0.0
        return self.total_hold_cycles / self.n_acquires


@dataclass(frozen=True)
class BarrierProfile:
    barrier_id: int
    n_parties: int
    n_episodes: int


def lock_profiles(result: SimResult) -> list[LockProfile]:
    """Per-lock contention statistics, most-waited-on lock first."""
    profiles = [
        LockProfile(
            lock_id=lock.lock_id,
            n_acquires=lock.n_acquires,
            n_contended=lock.n_contended,
            total_wait_cycles=lock.total_wait_cycles,
            total_hold_cycles=lock.total_hold_cycles,
            run_cycles=result.total_cycles,
        )
        for lock in result.sync.locks.values()
    ]
    profiles.sort(key=lambda p: p.total_wait_cycles, reverse=True)
    return profiles


def barrier_profiles(result: SimResult) -> list[BarrierProfile]:
    return [
        BarrierProfile(
            barrier_id=barrier.barrier_id,
            n_parties=barrier.n_parties,
            n_episodes=barrier.n_episodes,
        )
        for barrier in result.sync.barriers.values()
    ]


def render_sync_profile(result: SimResult) -> str:
    """Human-readable synchronization report of a run."""
    lines = []
    locks = lock_profiles(result)
    if locks:
        lines.append(
            f"{'lock':>5s}{'acquires':>10s}{'contended':>11s}"
            f"{'cont.%':>8s}{'util.%':>8s}{'avg wait':>10s}{'avg hold':>10s}"
        )
        for p in locks:
            lines.append(
                f"{p.lock_id:>5d}{p.n_acquires:>10d}{p.n_contended:>11d}"
                f"{p.contention_rate * 100:>7.1f}%"
                f"{p.utilization * 100:>7.1f}%"
                f"{p.mean_wait_cycles:>10.0f}{p.mean_hold_cycles:>10.0f}"
            )
    else:
        lines.append("(no locks)")
    barriers = barrier_profiles(result)
    if barriers:
        lines.append("")
        lines.append(f"{'barrier':>8s}{'parties':>9s}{'episodes':>10s}")
        for b in barriers:
            lines.append(
                f"{b.barrier_id:>8d}{b.n_parties:>9d}{b.n_episodes:>10d}"
            )
    return "\n".join(lines)
