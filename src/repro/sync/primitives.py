"""Synchronization objects: spin-then-yield locks and barriers.

Locks and barriers live at real (reserved) memory addresses, and every
synchronization action is executed as genuine loads and stores through
the memory hierarchy.  This matters for fidelity:

* spin loops issue actual loads of the lock word, so the Tian et al.
  load-watch detector (and the coherence-driven value versioning behind
  it) observes exactly what the proposed hardware would observe;
* releases and barrier departures are stores that invalidate the
  spinners' L1 copies through the coherence directory, so the next spin
  iteration misses and reads the new value — the precise signal the
  detector keys on ("it is checked whether the new data was written by
  another core");
* lock and barrier words occupy distinct cache lines (no false sharing
  between unrelated primitives).

The state machines themselves (spin budget, yielding into the wait
queue, wakeup) are driven by the execution engine; this module only
holds the shared state.
"""

from __future__ import annotations

from collections import deque

from repro.osmodel.thread import SoftwareThread

#: Base of the reserved synchronization address region.  Kept far above
#: workload data regions (see repro.workloads.generators.AddressSpace).
SYNC_REGION_BASE = 0x7000_0000_0000

#: Synthetic PCs for synchronization code.  The lock acquire uses the
#: test-and-test-and-set idiom, so the initial test load *is* the
#: spin-loop load (same PC) — this is what real spin-lock code compiles
#: to, and it lets the Tian et al. detector observe contended acquires
#: and the subsequent spin iterations as one load stream.
PC_LOCK_SPIN_LOAD = 0x1010
PC_LOCK_TEST = PC_LOCK_SPIN_LOAD
PC_LOCK_SPIN_BRANCH = 0x1018
PC_BARRIER_ARRIVE = 0x1100
PC_BARRIER_SPIN_LOAD = 0x1110
PC_BARRIER_SPIN_BRANCH = 0x1118


class LockState:
    """A mutex: holder plus FIFO queue of yielded waiters.

    Two release policies, matching real mutex families:

    * *barging* (default, like glibc adaptive mutexes): the release
      frees the lock; an actively spinning thread can grab it before a
      woken waiter arrives — fast handoffs, favours spinning;
    * *FIFO direct handoff* (fair mutexes / pipeline queues): the
      release passes ownership straight to the first yielded waiter —
      fair, deterministic, favours yielding.
    """

    __slots__ = ("lock_id", "addr", "holder", "waiters", "n_acquires",
                 "n_contended", "fifo_handoff", "total_wait_cycles",
                 "hold_start", "total_hold_cycles")

    def __init__(self, lock_id: int, addr: int, fifo_handoff: bool = False) -> None:
        self.lock_id = lock_id
        self.addr = addr
        self.holder: SoftwareThread | None = None
        self.waiters: deque[SoftwareThread] = deque()
        self.n_acquires = 0
        self.n_contended = 0
        self.fifo_handoff = fifo_handoff
        #: cycles threads spent waiting (spinning or yielded) on this lock
        self.total_wait_cycles = 0
        self.hold_start = 0
        #: cycles the lock was held
        self.total_hold_cycles = 0

    @property
    def is_free(self) -> bool:
        return self.holder is None

    def state_dict(self) -> dict:
        """Thread references serialize as tids (waiters in FIFO order)."""
        return {
            "lock_id": self.lock_id,
            "addr": self.addr,
            "holder": None if self.holder is None else self.holder.tid,
            "waiters": [thread.tid for thread in self.waiters],
            "n_acquires": self.n_acquires,
            "n_contended": self.n_contended,
            "fifo_handoff": self.fifo_handoff,
            "total_wait_cycles": self.total_wait_cycles,
            "hold_start": self.hold_start,
            "total_hold_cycles": self.total_hold_cycles,
        }

    def load_state_dict(self, state: dict, threads) -> None:
        holder = state["holder"]
        self.holder = None if holder is None else threads[holder]
        self.waiters = deque(threads[tid] for tid in state["waiters"])
        self.n_acquires = state["n_acquires"]
        self.n_contended = state["n_contended"]
        self.fifo_handoff = state["fifo_handoff"]
        self.total_wait_cycles = state["total_wait_cycles"]
        self.hold_start = state["hold_start"]
        self.total_hold_cycles = state["total_hold_cycles"]


class BarrierState:
    """A generation-counting (sense-reversing) barrier."""

    __slots__ = ("barrier_id", "count_addr", "gen_addr", "n_parties",
                 "arrived", "generation", "waiters", "n_episodes")

    def __init__(
        self, barrier_id: int, count_addr: int, gen_addr: int, n_parties: int
    ) -> None:
        if n_parties < 1:
            raise ValueError("barrier needs at least one party")
        self.barrier_id = barrier_id
        self.count_addr = count_addr
        self.gen_addr = gen_addr
        self.n_parties = n_parties
        self.arrived = 0
        self.generation = 0
        self.waiters: deque[SoftwareThread] = deque()
        self.n_episodes = 0

    def arrive(self) -> bool:
        """Register an arrival; returns True when this is the last party
        (the caller must then release the barrier)."""
        self.arrived += 1
        if self.arrived == self.n_parties:
            self.arrived = 0
            self.generation += 1
            self.n_episodes += 1
            return True
        return False

    def state_dict(self) -> dict:
        return {
            "barrier_id": self.barrier_id,
            "count_addr": self.count_addr,
            "gen_addr": self.gen_addr,
            "n_parties": self.n_parties,
            "arrived": self.arrived,
            "generation": self.generation,
            "waiters": [thread.tid for thread in self.waiters],
            "n_episodes": self.n_episodes,
        }

    def load_state_dict(self, state: dict, threads) -> None:
        self.arrived = state["arrived"]
        self.generation = state["generation"]
        self.waiters = deque(threads[tid] for tid in state["waiters"])
        self.n_episodes = state["n_episodes"]


class SyncManager:
    """Lazily creates locks/barriers and allocates their addresses."""

    _LINE = 64

    def __init__(self, n_parties: int, lock_fifo_handoff: bool = False) -> None:
        self.n_parties = n_parties
        self.lock_fifo_handoff = lock_fifo_handoff
        self._locks: dict[int, LockState] = {}
        self._barriers: dict[int, BarrierState] = {}
        self._futex_queues: dict[int, deque[SoftwareThread]] = {}
        self._next_addr = SYNC_REGION_BASE

    def _alloc_line(self) -> int:
        addr = self._next_addr
        self._next_addr += self._LINE
        return addr

    def lock(self, lock_id: int) -> LockState:
        state = self._locks.get(lock_id)
        if state is None:
            state = LockState(
                lock_id, self._alloc_line(), self.lock_fifo_handoff
            )
            self._locks[lock_id] = state
        return state

    def barrier(self, barrier_id: int) -> BarrierState:
        state = self._barriers.get(barrier_id)
        if state is None:
            state = BarrierState(
                barrier_id, self._alloc_line(), self._alloc_line(),
                self.n_parties,
            )
            self._barriers[barrier_id] = state
        return state

    def futex_queue(self, addr: int) -> "deque[SoftwareThread]":
        """FIFO of threads blocked on a futex address."""
        queue = self._futex_queues.get(addr)
        if queue is None:
            queue = deque()
            self._futex_queues[addr] = queue
        return queue

    @property
    def locks(self) -> dict[int, LockState]:
        return self._locks

    @property
    def barriers(self) -> dict[int, BarrierState]:
        return self._barriers

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Every lazily-created primitive in creation order, plus the
        address allocator cursor — restoring in the same order rebuilds
        identical addresses and identical dict iteration order."""
        return {
            "next_addr": self._next_addr,
            "locks": [lock.state_dict() for lock in self._locks.values()],
            "barriers": [
                barrier.state_dict() for barrier in self._barriers.values()
            ],
            "futex_queues": [
                [addr, [thread.tid for thread in queue]]
                for addr, queue in self._futex_queues.items()
            ],
        }

    def load_state_dict(self, state: dict, threads) -> None:
        """Rebuild all primitives at their recorded addresses.

        ``threads`` is the tid-indexed list of live
        :class:`~repro.osmodel.thread.SoftwareThread` objects used to
        resolve holders/waiters back into object references.
        """
        self._locks.clear()
        self._barriers.clear()
        self._futex_queues.clear()
        for lock_state in state["locks"]:
            lock = LockState(
                lock_state["lock_id"], lock_state["addr"],
                lock_state["fifo_handoff"],
            )
            lock.load_state_dict(lock_state, threads)
            self._locks[lock.lock_id] = lock
        for barrier_state in state["barriers"]:
            barrier = BarrierState(
                barrier_state["barrier_id"], barrier_state["count_addr"],
                barrier_state["gen_addr"], barrier_state["n_parties"],
            )
            barrier.load_state_dict(barrier_state, threads)
            self._barriers[barrier.barrier_id] = barrier
        for addr, tids in state["futex_queues"]:
            self._futex_queues[addr] = deque(threads[tid] for tid in tids)
        self._next_addr = state["next_addr"]
