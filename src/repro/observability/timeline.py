"""Chrome trace-event export of a cell's full execution timeline.

A :class:`TimelineRecorder` subscribes to the engine's event bus and
collects four interval families per core:

* **run** — which thread occupied the core, and why it left;
* **spin** — spin-waiting segments (lock, barrier, futex), labelled
  with how each segment ended;
* **yield** — intervals a thread spent scheduled out on
  synchronization (the paper's Section 4.4 yield intervals);
* **mem** — ROB-blocking LLC-miss windows with the cycles attributed
  to other cores' interference.

The recorder is built so the trace *reconciles* with the speedup
stack: per-thread spin sums equal the engine's ground-truth
``gt_spin_cycles``, yield sums equal the cycles the accountant's
yielding component is computed from, and per-core interference sums
equal the raw ``memory_interference_stall`` counter behind the
negative-memory component.  :func:`interval_sums` exposes exactly
those sums so tests (and skeptical users) can check the invariant.

:func:`trace_cell` runs one (benchmark, N) cell with a recorder
attached; ``repro trace`` is a thin CLI wrapper over it.  The exported
JSON loads in ``chrome://tracing`` and Perfetto; one "process" per
core, one named track per interval family.
"""

from __future__ import annotations

import json

from repro.observability.events import (
    EventBus,
    MissBlocked,
    SimEnded,
    SimStarted,
    SpinSegment,
    ThreadDescheduled,
    ThreadDispatched,
    YieldInterval,
)

#: track (Chrome "tid") layout within each core's "process"
TRACK_RUN = 0
TRACK_SPIN = 1
TRACK_YIELD = 2
TRACK_MEM = 3
TRACK_NAMES = {
    TRACK_RUN: "run",
    TRACK_SPIN: "spin",
    TRACK_YIELD: "yield",
    TRACK_MEM: "mem interference",
}

#: span lanes live in a pid range far above any plausible core count,
#: so the harness's self-profiling track never collides with a core's
#: "process" in the exported trace
SPAN_PID_BASE = 1000


class TimelineRecorder:
    """Collects per-core interval tracks from a simulation's event bus."""

    def __init__(self) -> None:
        self.n_cores = 0
        self.n_threads = 0
        self.total_cycles = 0
        self.truncated = False
        #: (core, tid, start, end, end_reason)
        self.run_intervals: list[tuple[int, int, int, int, str]] = []
        #: (core, tid, start, end, outcome)
        self.spin_segments: list[tuple[int, int, int, int, str]] = []
        #: (core, tid, start, end)
        self.yield_intervals: list[tuple[int, int, int, int]] = []
        #: (core, start, end, interference, is_load)
        self.miss_intervals: list[tuple[int, int, int, int, bool]] = []
        self._open: dict[int, tuple[int, int]] = {}  # tid -> (core, start)

    # -- bus wiring -----------------------------------------------------

    _SUBSCRIPTIONS = (
        (SimStarted, "_on_started"),
        (SimEnded, "_on_ended"),
        (ThreadDispatched, "_on_dispatched"),
        (ThreadDescheduled, "_on_descheduled"),
        (SpinSegment, "_on_spin"),
        (YieldInterval, "_on_yield"),
        (MissBlocked, "_on_miss"),
    )

    def attach(self, bus: EventBus) -> "TimelineRecorder":
        for event_type, method in self._SUBSCRIPTIONS:
            bus.subscribe(event_type, getattr(self, method))
        return self

    def detach(self, bus: EventBus) -> None:
        for event_type, method in self._SUBSCRIPTIONS:
            bus.unsubscribe(event_type, getattr(self, method))

    # -- handlers -------------------------------------------------------

    def _on_started(self, event) -> None:
        self.n_cores = max(self.n_cores, event.n_cores)
        self.n_threads = max(self.n_threads, event.n_threads)

    def _on_ended(self, event) -> None:
        self.total_cycles = event.total_cycles
        self.truncated = event.truncated
        # a truncated run leaves threads mid-interval; close them at the
        # cut point so every track still tiles the full timeline
        for tid, (core, start) in sorted(self._open.items()):
            self.run_intervals.append(
                (core, tid, start, max(start, event.total_cycles),
                 "truncated")
            )
        self._open.clear()

    def _on_dispatched(self, event) -> None:
        self._open[event.tid] = (event.core, event.t)

    def _on_descheduled(self, event) -> None:
        entry = self._open.pop(event.tid, None)
        if entry is None:
            return
        core, start = entry
        self.run_intervals.append(
            (core, event.tid, start, max(start, event.t), event.reason)
        )

    def _on_spin(self, event) -> None:
        self.spin_segments.append(
            (event.core, event.tid, event.start, event.end, event.outcome)
        )

    def _on_yield(self, event) -> None:
        self.yield_intervals.append(
            (event.core, event.tid, event.start, event.end)
        )

    def _on_miss(self, event) -> None:
        self.miss_intervals.append(
            (event.core, event.start, event.end, event.interference,
             event.is_load)
        )

    # -- export ---------------------------------------------------------

    def to_trace_events(self) -> list[dict]:
        """Chrome trace-event list: metadata naming each core's tracks,
        then one complete ('X') event per interval, cycle-for-µs."""
        events: list[dict] = []
        for core in range(self.n_cores):
            events.append({
                "name": "process_name", "ph": "M", "pid": core,
                "args": {"name": f"core {core}"},
            })
            events.append({
                "name": "process_sort_index", "ph": "M", "pid": core,
                "args": {"sort_index": core},
            })
            for track, label in TRACK_NAMES.items():
                events.append({
                    "name": "thread_name", "ph": "M", "pid": core,
                    "tid": track, "args": {"name": label},
                })
                events.append({
                    "name": "thread_sort_index", "ph": "M", "pid": core,
                    "tid": track, "args": {"sort_index": track},
                })
        for core, tid, start, end, reason in self.run_intervals:
            events.append({
                "name": f"T{tid}", "cat": "run", "ph": "X",
                "pid": core, "tid": TRACK_RUN,
                "ts": start, "dur": end - start,
                "args": {"thread": tid, "end": reason},
            })
        for core, tid, start, end, outcome in self.spin_segments:
            events.append({
                "name": f"spin T{tid}", "cat": "spin", "ph": "X",
                "pid": core, "tid": TRACK_SPIN,
                "ts": start, "dur": end - start,
                "args": {"thread": tid, "outcome": outcome},
            })
        for core, tid, start, end in self.yield_intervals:
            events.append({
                "name": f"yield T{tid}", "cat": "yield", "ph": "X",
                "pid": core, "tid": TRACK_YIELD,
                "ts": start, "dur": end - start,
                "args": {"thread": tid},
            })
        for core, start, end, interference, is_load in self.miss_intervals:
            events.append({
                "name": "miss blocked", "cat": "mem", "ph": "X",
                "pid": core, "tid": TRACK_MEM,
                "ts": start, "dur": end - start,
                "args": {
                    "interference_cycles": interference,
                    "is_load": is_load,
                },
            })
        return events

    def to_chrome_trace(self, metadata: dict | None = None) -> str:
        doc = {
            "traceEvents": self.to_trace_events(),
            "displayTimeUnit": "ns",
            "otherData": metadata or {},
        }
        return json.dumps(doc, indent=1)


def interval_sums(recorder: TimelineRecorder) -> dict:
    """The reconciliation sums of a recorded timeline.

    These are exactly the quantities the speedup-stack components are
    built from — the golden-trace test asserts equality against the
    engine's ground truth and the accountant's raw counters.
    """
    spin_by_thread: dict[int, int] = {}
    for _, tid, start, end, _ in recorder.spin_segments:
        spin_by_thread[tid] = spin_by_thread.get(tid, 0) + (end - start)
    yield_by_thread: dict[int, int] = {}
    for _, tid, start, end in recorder.yield_intervals:
        yield_by_thread[tid] = yield_by_thread.get(tid, 0) + (end - start)
    interference_by_core: dict[int, int] = {}
    blocked_by_core: dict[int, int] = {}
    for core, start, end, interference, _ in recorder.miss_intervals:
        interference_by_core[core] = (
            interference_by_core.get(core, 0) + interference
        )
        blocked_by_core[core] = blocked_by_core.get(core, 0) + (end - start)
    run_by_core: dict[int, int] = {}
    end_by_thread: dict[int, int] = {}
    for core, tid, start, end, _ in recorder.run_intervals:
        run_by_core[core] = run_by_core.get(core, 0) + (end - start)
        end_by_thread[tid] = max(end_by_thread.get(tid, 0), end)
    return {
        "total_cycles": recorder.total_cycles,
        "spin_cycles_by_thread": spin_by_thread,
        "yield_cycles_by_thread": yield_by_thread,
        "interference_by_core": interference_by_core,
        "miss_blocked_by_core": blocked_by_core,
        "run_cycles_by_core": run_by_core,
        "last_run_end_by_thread": end_by_thread,
    }


def spans_to_trace_events(rows: list[dict]) -> list[dict]:
    """Chrome trace events for a harness span document.

    One "process" lane per span origin (``pid >= SPAN_PID_BASE``) —
    origins use different process epochs, so pretending their
    timestamps align on one lane would be a lie.  Spans become complete
    ('X') events whose ts/dur are the recorder's integer microseconds;
    nesting falls out of interval containment, which is how the
    recorder produced them in the first place.
    """
    origins = sorted({row.get("origin", "main") for row in rows})
    lane = {origin: SPAN_PID_BASE + i for i, origin in enumerate(origins)}
    events: list[dict] = []
    for origin in origins:
        pid = lane[origin]
        events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": f"spans: {origin}"},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid,
            "args": {"sort_index": pid},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": 0, "args": {"name": "harness spans"},
        })
    for row in rows:
        args: dict = {"span_id": row["id"]}
        if row.get("parent") is not None:
            args["parent"] = row["parent"]
        if row.get("args"):
            args.update(row["args"])
        events.append({
            "name": row["name"],
            "cat": f"span:{row.get('cat', 'runner')}",
            "ph": "X",
            "pid": lane[row.get("origin", "main")],
            "tid": 0,
            "ts": max(0, int(row["t0_us"])),
            "dur": max(0, int(row.get("dur_us") or 0)),
            "args": args,
        })
    return events


def validate_trace_events(doc) -> list[str]:
    """Structural validation against the trace-event format.

    Returns a list of problems (empty when the document is valid);
    checks what Chrome/Perfetto actually require to load the file —
    a ``traceEvents`` array of objects with ``ph``, integer ``pid`` /
    ``tid``, non-negative ``ts``/``dur`` on complete events, and
    ``args`` objects on metadata events.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "I", "M", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph == "X":
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, int) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        elif ph == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata without args")
    return problems


def trace_cell(
    benchmark: str,
    n_threads: int,
    scale: float = 1.0,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    spans=None,
):
    """Run one (benchmark, N) cell with a timeline recorder attached.

    Returns ``(experiment_result, recorder)`` — the full protocol runs
    (reference + accounted), so the caller holds both the speedup stack
    and the timeline it should reconcile with.  Pass a
    :class:`~repro.observability.spans.SpanRecorder` to additionally
    capture the harness's own phase spans for the exported span track.
    """
    from repro.config import MachineConfig
    from repro.experiments.runner import run_experiment
    from repro.workloads.spec import build_program
    from repro.workloads.suite import by_name

    spec = by_name(benchmark)
    machine = MachineConfig(n_cores=n_threads)
    bus = EventBus()
    recorder = TimelineRecorder().attach(bus)
    result = run_experiment(
        spec.full_name, machine,
        build_program(spec, n_threads, scale=scale),
        build_program(spec, 1, scale=scale),
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout="truncate" if max_cycles or livelock_window else "raise",
        bus=bus,
        spans=spans,
    )
    return result, recorder
