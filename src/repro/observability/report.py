"""Self-contained HTML sweep health report (``repro report``).

Takes either a sweep journal JSON or a queue directory and renders one
HTML file with everything a post-mortem needs in one place:

* headline counts — ok / failed / retried / quarantined /
  crash-resumed cells, plus spill recoveries when the source knows;
* a per-cell wall-clock histogram (queue sources measure wall time
  from each cell's ``queue.run`` span);
* a span waterfall for the slowest cells, when the sweep ran with
  spans enabled;
* a worker utilization strip built from the heartbeat JSONL history,
  with idle gaps visible as blanks;
* the speedup stacks themselves — the paper's artifact, rendered from
  the per-cell component breakdowns queue records carry.

All charts are monospace text built with the same
:func:`repro.core.rendering._bar` blocks the CLI renders stacks with,
wrapped in ``<pre>`` — no JavaScript, no external assets, so the file
opens anywhere and attaches to CI runs as-is.  A journal source lacks
wall-clock, spans and heartbeats (journals are byte-deterministic by
design); those sections degrade to a note instead of failing.
"""

from __future__ import annotations

import html
import json
import os
from pathlib import Path

from repro.core.rendering import _bar
from repro.observability.spans import span_roots

#: character width of every bar chart in the report
BAR_WIDTH = 50

#: how many of the slowest cells get a span waterfall
WATERFALL_CELLS = 5

_CSS = """
body { font-family: sans-serif; margin: 2em auto; max-width: 75em;
       color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #bbb; }
pre { background: #f6f6f6; border: 1px solid #ddd; padding: 1em;
      overflow-x: auto; line-height: 1.25; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: .25em .75em;
         text-align: right; }
th { background: #eee; }
td.key, th.key { text-align: left; }
.bad { color: #a00; font-weight: bold; }
.note { color: #666; font-style: italic; }
"""


# ----------------------------------------------------------------------
# data loading
# ----------------------------------------------------------------------


def load_report_data(source: str | Path) -> dict:
    """Collect report inputs from a journal file or a queue directory."""
    source = Path(source)
    if source.is_dir():
        return _load_queue(source)
    return _load_journal(source)


def _load_journal(path: Path) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    cells = []
    for key in sorted(doc.get("cells", {})):
        entry = doc["cells"][key]
        cells.append({
            "key": key,
            "status": entry.get("status"),
            "attempts": entry.get("attempts", 0),
            "error_type": entry.get("error_type"),
            "wall_s": None,
            "spans": None,
            "actual_speedup": None,
            "estimated_speedup": None,
            "stack_segments": None,
            "resumed_from_cycle": None,
        })
    return {
        "source": str(path),
        "kind": "journal",
        "cells": cells,
        "heartbeats": {},
    }


def _load_queue(queue_dir: Path) -> dict:
    from repro.queue.store import QueueStore

    store = QueueStore(queue_dir)
    cells = []
    states = store.states()
    for key in store.order:
        record = store.result(key) or {}
        spans = record.get("spans")
        cells.append({
            "key": key,
            "status": record.get("status", states.get(key, "pending")),
            "attempts": record.get(
                "attempts", record.get("expiries", 0)
            ),
            "error_type": record.get("error_type"),
            "wall_s": _queue_run_wall_s(spans),
            "spans": spans,
            "actual_speedup": record.get("actual_speedup"),
            "estimated_speedup": record.get("estimated_speedup"),
            "stack_segments": record.get("stack_segments"),
            "resumed_from_cycle": record.get("resumed_from_cycle"),
        })
    return {
        "source": str(queue_dir),
        "kind": "queue",
        "cells": cells,
        "heartbeats": store.worker_heartbeat_history(),
    }


def _queue_run_wall_s(spans) -> float | None:
    """A queue cell's wall clock: the duration of its ``queue.run``
    span (the whole claim-to-complete run on the worker)."""
    for row in spans or ():
        if row.get("name") == "queue.run":
            return row["dur_us"] / 1e6
    return None


# ----------------------------------------------------------------------
# text charts
# ----------------------------------------------------------------------


def _histogram_pre(values: list[float]) -> str:
    """Wall-clock histogram over ~8 equal-width buckets."""
    lo, hi = min(values), max(values)
    n_buckets = min(8, max(1, len(values)))
    width = (hi - lo) / n_buckets or 1e-9
    counts = [0] * n_buckets
    for value in values:
        index = min(n_buckets - 1, int((value - lo) / width))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left, right = lo + i * width, lo + (i + 1) * width
        bar = _bar(count, peak, BAR_WIDTH)
        lines.append(
            f"{left:8.2f}s – {right:8.2f}s  {count:4d}  {bar}"
        )
    return "\n".join(lines)


def _waterfall_pre(cell: dict) -> str:
    """One cell's span tree as an indented text waterfall.

    Bars are positioned against the cell's own root span, so worker
    epochs never need to align with anything else.
    """
    rows = cell["spans"] or []
    roots = span_roots(rows)
    if not roots:
        return "(no spans)"
    t0 = min(row["t0_us"] for row in roots)
    total = max(
        (row["t0_us"] + row["dur_us"] for row in rows), default=t0
    ) - t0
    total = max(total, 1)
    children: dict[object, list[dict]] = {}
    ids = {row["id"] for row in rows}
    for row in rows:
        parent = row.get("parent")
        children.setdefault(
            parent if parent in ids else None, []
        ).append(row)
    lines = []

    def emit(row: dict, depth: int) -> None:
        label = ("  " * depth + row["name"])[:28]
        offset = round((row["t0_us"] - t0) / total * BAR_WIDTH)
        bar = _bar(row["dur_us"], total, BAR_WIDTH) or "▏"
        lines.append(
            f"{label:<28s} {row['dur_us'] / 1000:9.2f}ms "
            f"{' ' * offset}{bar}"
        )
        for child in children.get(row["id"], ()):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda row: row["t0_us"]):
        emit(root, 0)
    return "\n".join(lines)


def _worker_strip_pre(heartbeats: dict[str, list[dict]]) -> str:
    """One character strip per worker over the sweep's wall-clock span.

    ``█`` = heartbeat holding a cell, ``░`` = idle heartbeat, space =
    no heartbeat landed in that bucket (an idle gap, a stall, or death).
    """
    stamps = [
        (doc.get("timestamp"), doc.get("current_cell"), worker)
        for worker, docs in heartbeats.items()
        for doc in docs
        if isinstance(doc.get("timestamp"), (int, float))
    ]
    if not stamps:
        return "(no heartbeat history)"
    t_lo = min(ts for ts, _, _ in stamps)
    t_hi = max(ts for ts, _, _ in stamps)
    span = max(t_hi - t_lo, 1e-9)
    lines = [f"{'worker':<12s} {span:6.1f}s of history, one row each"]
    for worker in sorted(heartbeats):
        cols = [" "] * BAR_WIDTH
        busy = 0
        total = 0
        for doc in heartbeats[worker]:
            ts = doc.get("timestamp")
            if not isinstance(ts, (int, float)):
                continue
            col = min(BAR_WIDTH - 1, int((ts - t_lo) / span * BAR_WIDTH))
            working = doc.get("current_cell") is not None
            total += 1
            busy += 1 if working else 0
            if working:
                cols[col] = "█"
            elif cols[col] == " ":
                cols[col] = "░"
        pct = 100.0 * busy / total if total else 0.0
        lines.append(f"{worker:<12s} [{''.join(cols)}] {pct:3.0f}% busy")
    return "\n".join(lines)


def _stack_pre(cell: dict) -> str:
    """One cell's speedup stack as labelled bars (Figure 2 style)."""
    segments = cell["stack_segments"] or {}
    try:
        scale = float(cell["key"].rsplit(":", 1)[1])
    except (IndexError, ValueError):
        scale = max((abs(v) for v in segments.values()), default=1.0)
    lines = []
    actual = cell.get("actual_speedup")
    estimated = cell.get("estimated_speedup")
    if actual is not None and estimated is not None:
        lines.append(
            f"  actual {actual:6.2f}   estimated {estimated:6.2f}"
        )
    for label, value in segments.items():
        if abs(value) < 0.005:
            continue
        bar = _bar(max(value, 0.0), scale, BAR_WIDTH)
        lines.append(f"  {label:<30s} {value:7.2f}  {bar}")
    return "\n".join(lines) or "  (no component breakdown recorded)"


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------


def _section(title: str, body: str) -> str:
    return f"<h2>{html.escape(title)}</h2>\n{body}\n"


def _pre(text: str) -> str:
    return f"<pre>{html.escape(text)}</pre>"


def _note(text: str) -> str:
    return f"<p class=\"note\">{html.escape(text)}</p>"


def render_report_html(data: dict) -> str:
    cells = data["cells"]
    counts = {
        "cells": len(cells),
        "ok": sum(1 for c in cells if c["status"] == "ok"),
        "failed": sum(
            1 for c in cells
            if c["status"] not in ("ok", "quarantined", "pending")
        ),
        "quarantined": sum(
            1 for c in cells if c["status"] == "quarantined"
        ),
        "retried": sum(1 for c in cells if (c["attempts"] or 0) > 1),
        "crash-resumed": sum(
            1 for c in cells if c["resumed_from_cycle"] is not None
        ),
    }
    parts = [
        "<!doctype html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>sweep health: {html.escape(data['source'])}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Sweep health report</h1>",
        f"<p>source: <code>{html.escape(data['source'])}</code> "
        f"({data['kind']})</p>",
    ]

    # headline counts
    rows = "".join(
        f"<tr><td class=\"key\">{html.escape(key)}</td>"
        f"<td{' class=' + chr(34) + 'bad' + chr(34) if key in ('failed', 'quarantined') and value else ''}>"
        f"{value}</td></tr>"
        for key, value in counts.items()
    )
    parts.append(_section("Health", f"<table>{rows}</table>"))

    # wall-clock histogram
    walls = [c["wall_s"] for c in cells if c["wall_s"] is not None]
    if walls:
        parts.append(_section(
            "Per-cell wall clock", _pre(_histogram_pre(walls))
        ))
    else:
        parts.append(_section(
            "Per-cell wall clock",
            _note("no wall-clock data — run the sweep with spans "
                  "enabled (--emit-spans) on the queue backend"),
        ))

    # span waterfalls of the slowest cells
    with_spans = [c for c in cells if c["spans"]]
    if with_spans:
        slowest = sorted(
            with_spans, key=lambda c: -(c["wall_s"] or 0)
        )[:WATERFALL_CELLS]
        body = "".join(
            f"<h3><code>{html.escape(c['key'])}</code>"
            + (f" — crash-resumed from cycle {c['resumed_from_cycle']}"
               if c["resumed_from_cycle"] is not None else "")
            + f"</h3>{_pre(_waterfall_pre(c))}"
            for c in slowest
        )
        parts.append(_section(
            f"Span waterfall ({len(slowest)} slowest cells)", body
        ))
    else:
        parts.append(_section(
            "Span waterfall",
            _note("no spans recorded — enable with --emit-spans"),
        ))

    # worker utilization
    if data["heartbeats"]:
        parts.append(_section(
            "Worker utilization",
            _pre(_worker_strip_pre(data["heartbeats"])),
        ))
    else:
        parts.append(_section(
            "Worker utilization",
            _note("no worker heartbeat history in this source"),
        ))

    # speedup stacks
    with_stacks = [c for c in cells if c["stack_segments"]]
    if with_stacks:
        body = "".join(
            f"<h3><code>{html.escape(c['key'])}</code></h3>"
            f"{_pre(_stack_pre(c))}"
            for c in with_stacks
        )
        parts.append(_section("Speedup stacks", body))
    else:
        parts.append(_section(
            "Speedup stacks",
            _note("no component breakdowns in this source (journals "
                  "record outcomes only; queue records carry them)"),
        ))

    parts.append(_section("Cells", _cell_table(cells)))

    parts.append("</body></html>")
    return "\n".join(parts)


def _cell_table(cells: list[dict]) -> str:
    header = (
        "<tr><th class=\"key\">cell</th><th>status</th><th>attempts</th>"
        "<th>wall s</th><th>speedup</th><th>resumed from</th></tr>"
    )
    rows = []
    for cell in cells:
        status = str(cell["status"])
        status_td = (
            f"<td class=\"bad\">{html.escape(status)}</td>"
            if status not in ("ok", "pending") else
            f"<td>{html.escape(status)}</td>"
        )
        wall = (
            "" if cell["wall_s"] is None else f"{cell['wall_s']:.2f}"
        )
        speedup = (
            "" if cell["actual_speedup"] is None
            else f"{cell['actual_speedup']:.2f}"
        )
        resumed = (
            "" if cell["resumed_from_cycle"] is None
            else str(cell["resumed_from_cycle"])
        )
        rows.append(
            "<tr>"
            f"<td class=\"key\"><code>{html.escape(cell['key'])}</code>"
            f"</td>{status_td}<td>{cell['attempts']}</td>"
            f"<td>{wall}</td><td>{speedup}</td><td>{resumed}</td></tr>"
        )
    return f"<table>{header}{''.join(rows)}</table>"


def write_report(source: str | Path, out: str | Path) -> dict:
    """Render ``source`` (journal or queue dir) to ``out``; returns the
    loaded data for the caller's summary line."""
    data = load_report_data(source)
    document = render_report_html(data)
    out = Path(out)
    tmp = out.with_suffix(out.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(document)
    os.replace(tmp, out)
    return data
