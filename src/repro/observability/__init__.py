"""Structured instrumentation for the simulator and the sweep stack.

The paper's contribution is *attribution* — explaining where a thread's
cycles went — and this package applies the same discipline to the
runner itself.  Four cooperating pieces:

* :mod:`repro.observability.events` — a typed event bus.  Producers
  (engine, chip, accountant, batch runner, parallel driver) hold an
  optional ``bus`` reference and emit frozen event values only when one
  is attached, so the disabled path costs a single ``is not None``
  check at scheduling frequency and *nothing* on the per-op hot path.
* :mod:`repro.observability.metrics` — a counters/gauges/histograms
  registry.  Deterministic simulation metrics are harvested from the
  engine's existing counters *after* a run (zero in-run overhead),
  serialized into the sweep journal per cell, and merged across
  ``--jobs N`` workers through the parent-only collection path.
* :mod:`repro.observability.timeline` — a Chrome trace-event /
  Perfetto exporter with per-core tracks for scheduling, spin, yield
  and memory-interference intervals (``repro trace <cell>``), built so
  the interval sums reconcile exactly with the cell's speedup-stack
  components.
* :mod:`repro.observability.progress` — live sweep telemetry: a
  ``--progress`` stderr renderer with ETA and a machine-readable
  heartbeat file for external monitoring.
* :mod:`repro.observability.spans` — hierarchical wall-clock spans
  around the harness's own phase boundaries (trace decode, ST
  reference, engine advance, harvest, journal write, chunk dispatch,
  queue claim/run/merge), shipped cross-process like metrics and
  exportable as an extra Chrome-trace track.  Spans are wall-clock and
  therefore never journaled.
* :mod:`repro.observability.profiling` — an opt-in deterministic
  ``sys.setprofile`` profiler feeding ``repro bench --profile``'s
  collapsed-stack file and BENCH ``profile`` section.
* :mod:`repro.observability.report` — ``repro report``: a
  self-contained HTML sweep health report built from a journal or a
  queue directory plus optional spans/metrics/heartbeat artifacts.

Everything here is observation only: attaching a bus, a registry, a
recorder or a reporter never changes a simulated cycle.  The
differential and golden suites pin that down.
"""

from repro.observability.events import (
    EVENT_TYPES,
    CellFinished,
    CellRetry,
    CellStarted,
    DeadlockDetected,
    EventBus,
    FaultArmed,
    InterThreadAccess,
    MissBlocked,
    SimEnded,
    SimStarted,
    SpinSegment,
    SpinTruncated,
    SweepFinished,
    SweepStarted,
    ThreadDescheduled,
    ThreadDispatched,
    WatchdogFired,
    WorkerCrashed,
    WorkerHeartbeat,
    YieldInterval,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    harvest_cell_metrics,
)
from repro.observability.profiling import DeterministicProfiler
from repro.observability.progress import ProgressReporter
from repro.observability.report import (
    load_report_data,
    render_report_html,
    write_report,
)
from repro.observability.spans import SpanRecorder, maybe_span, validate_span_rows
from repro.observability.timeline import (
    SPAN_PID_BASE,
    TimelineRecorder,
    interval_sums,
    spans_to_trace_events,
    trace_cell,
    validate_trace_events,
)

__all__ = [
    "CellFinished",
    "CellRetry",
    "CellStarted",
    "Counter",
    "DeadlockDetected",
    "DeterministicProfiler",
    "EVENT_TYPES",
    "EventBus",
    "FaultArmed",
    "Gauge",
    "harvest_cell_metrics",
    "Histogram",
    "InterThreadAccess",
    "interval_sums",
    "load_report_data",
    "maybe_span",
    "MetricsRegistry",
    "MissBlocked",
    "ProgressReporter",
    "render_report_html",
    "SimEnded",
    "SimStarted",
    "SPAN_PID_BASE",
    "SpanRecorder",
    "spans_to_trace_events",
    "SpinSegment",
    "SpinTruncated",
    "SweepFinished",
    "SweepStarted",
    "ThreadDescheduled",
    "ThreadDispatched",
    "TimelineRecorder",
    "trace_cell",
    "validate_span_rows",
    "validate_trace_events",
    "WatchdogFired",
    "WorkerCrashed",
    "WorkerHeartbeat",
    "write_report",
    "YieldInterval",
]
