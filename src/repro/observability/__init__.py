"""Structured instrumentation for the simulator and the sweep stack.

The paper's contribution is *attribution* — explaining where a thread's
cycles went — and this package applies the same discipline to the
runner itself.  Four cooperating pieces:

* :mod:`repro.observability.events` — a typed event bus.  Producers
  (engine, chip, accountant, batch runner, parallel driver) hold an
  optional ``bus`` reference and emit frozen event values only when one
  is attached, so the disabled path costs a single ``is not None``
  check at scheduling frequency and *nothing* on the per-op hot path.
* :mod:`repro.observability.metrics` — a counters/gauges/histograms
  registry.  Deterministic simulation metrics are harvested from the
  engine's existing counters *after* a run (zero in-run overhead),
  serialized into the sweep journal per cell, and merged across
  ``--jobs N`` workers through the parent-only collection path.
* :mod:`repro.observability.timeline` — a Chrome trace-event /
  Perfetto exporter with per-core tracks for scheduling, spin, yield
  and memory-interference intervals (``repro trace <cell>``), built so
  the interval sums reconcile exactly with the cell's speedup-stack
  components.
* :mod:`repro.observability.progress` — live sweep telemetry: a
  ``--progress`` stderr renderer with ETA and a machine-readable
  heartbeat file for external monitoring.

Everything here is observation only: attaching a bus, a registry, a
recorder or a reporter never changes a simulated cycle.  The
differential and golden suites pin that down.
"""

from repro.observability.events import (
    EVENT_TYPES,
    CellFinished,
    CellRetry,
    CellStarted,
    DeadlockDetected,
    EventBus,
    FaultArmed,
    InterThreadAccess,
    MissBlocked,
    SimEnded,
    SimStarted,
    SpinSegment,
    SpinTruncated,
    SweepFinished,
    SweepStarted,
    ThreadDescheduled,
    ThreadDispatched,
    WatchdogFired,
    WorkerCrashed,
    YieldInterval,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    harvest_cell_metrics,
)
from repro.observability.progress import ProgressReporter
from repro.observability.timeline import (
    TimelineRecorder,
    interval_sums,
    trace_cell,
    validate_trace_events,
)

__all__ = [
    "CellFinished",
    "CellRetry",
    "CellStarted",
    "Counter",
    "DeadlockDetected",
    "EVENT_TYPES",
    "EventBus",
    "FaultArmed",
    "Gauge",
    "harvest_cell_metrics",
    "Histogram",
    "InterThreadAccess",
    "interval_sums",
    "MetricsRegistry",
    "MissBlocked",
    "ProgressReporter",
    "SimEnded",
    "SimStarted",
    "SpinSegment",
    "SpinTruncated",
    "SweepFinished",
    "SweepStarted",
    "ThreadDescheduled",
    "ThreadDispatched",
    "TimelineRecorder",
    "trace_cell",
    "validate_trace_events",
    "WatchdogFired",
    "WorkerCrashed",
    "YieldInterval",
]
