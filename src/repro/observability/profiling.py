"""Deterministic self-profiler for the simulation hot path.

``sys.setprofile``-based and stdlib-only: every Python call/return
event charges the elapsed time since the previous event to the
*current* call stack as self time, which is exactly the attribution a
collapsed-stack ("flamegraph") file wants.  Being event-driven rather
than signal-driven makes the captured call tree deterministic — the
set of stacks depends only on the code executed, not on sampling luck
— so CI can assert structural facts about the profile (e.g. "the
engine inner loop is present and dominant").

Opt-in only: profiling multiplies Python-level call overhead several
times over, so nothing in the harness enables it implicitly.  Use
``repro bench --profile`` or wrap code in :class:`DeterministicProfiler`
by hand.

C-function events (``c_call``/``c_return``) are deliberately ignored:
their time accrues to the calling Python frame's self time, which
keeps the profile compact and matches what ``perf``-style collapsed
stacks of pure-Python code usually show.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable

__all__ = ["DeterministicProfiler", "ENGINE_PREFIX"]

# Functions whose qualified name starts with this prefix count as "the
# engine inner loop" for the BENCH profile section.
ENGINE_PREFIX = "repro.sim.engine."


def _frame_key(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{qualname}"


class DeterministicProfiler:
    """Collects self-time per collapsed call stack.

    Usage::

        profiler = DeterministicProfiler()
        with profiler:
            run_hot_code()
        open("profile.collapsed", "w").write("\\n".join(profiler.collapsed()))

    Only profiles the thread it is started on (``sys.setprofile``
    semantics).  Nesting profilers is not supported.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        self._keys: list[str] = []
        self._last_ns = 0
        self._active = False
        # collapsed stack tuple -> accumulated self time (ns)
        self.stacks: dict[tuple[str, ...], int] = {}
        # function key -> number of calls observed
        self.calls: dict[str, int] = {}

    # -- capture ------------------------------------------------------

    def _profile(self, frame: Any, event: str, arg: Any) -> None:
        now = self._clock()
        keys = self._keys
        if keys:
            path = tuple(keys)
            self.stacks[path] = self.stacks.get(path, 0) + (now - self._last_ns)
        if event == "call":
            key = _frame_key(frame)
            keys.append(key)
            self.calls[key] = self.calls.get(key, 0) + 1
        elif event == "return":
            # Frames entered before start() unwind past our shadow
            # stack; never pop below empty.
            if keys:
                keys.pop()
        # Exclude our own bookkeeping from the attributed time.
        self._last_ns = self._clock()

    def start(self) -> None:
        if self._active:
            raise RuntimeError("profiler already active")
        self._active = True
        self._keys.clear()
        self._last_ns = self._clock()
        sys.setprofile(self._profile)

    def stop(self) -> None:
        sys.setprofile(None)
        if not self._active:
            return
        self._active = False
        now = self._clock()
        if self._keys:
            path = tuple(self._keys)
            self.stacks[path] = self.stacks.get(path, 0) + (now - self._last_ns)
            self._keys.clear()

    def __enter__(self) -> "DeterministicProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- reporting ----------------------------------------------------

    def total_us(self) -> int:
        return sum(self.stacks.values()) // 1000

    def collapsed(self) -> list[str]:
        """Flamegraph collapsed-stack lines: ``a;b;c <microseconds>``.

        Sorted lexically by path so the file is deterministic for a
        deterministic run; zero-microsecond stacks are dropped.
        """
        lines = []
        for path in sorted(self.stacks):
            us = self.stacks[path] // 1000
            if us > 0:
                lines.append(f"{';'.join(path)} {us}")
        return lines

    def self_us_by_function(self) -> dict[str, int]:
        """Self time per function (leaf of each collapsed stack)."""
        out: dict[str, int] = {}
        for path, ns in self.stacks.items():
            leaf = path[-1]
            out[leaf] = out.get(leaf, 0) + ns // 1000
        return out

    def top_functions(self, n: int = 15) -> list[dict[str, Any]]:
        total = max(1, self.total_us())
        per_func = self.self_us_by_function()
        ranked = sorted(per_func.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return [
            {
                "function": func,
                "self_us": us,
                "self_pct": round(100.0 * us / total, 2),
                "calls": self.calls.get(func, 0),
            }
            for func, us in ranked
        ]

    def pct_in_prefix(self, prefix: str = ENGINE_PREFIX) -> float:
        """Percent of total self time in functions under ``prefix``."""
        total = sum(self.stacks.values())
        if total <= 0:
            return 0.0
        inside = sum(
            ns for path, ns in self.stacks.items() if path[-1].startswith(prefix)
        )
        return round(100.0 * inside / total, 2)

    def profile_section(
        self, top_n: int = 15, engine_prefix: str = ENGINE_PREFIX
    ) -> dict[str, Any]:
        """The ``profile`` section for ``BENCH_sweep.json``."""
        return {
            "profiler": "deterministic (sys.setprofile)",
            "total_self_us": self.total_us(),
            "distinct_stacks": len(self.stacks),
            "engine_inner_loop_pct": self.pct_in_prefix(engine_prefix),
            "engine_prefix": engine_prefix,
            "top_functions": self.top_functions(top_n),
        }
