"""Hierarchical wall-clock spans for self-profiling the harness.

A :class:`SpanRecorder` collects *spans* — named intervals with a parent
link — around the harness's own phase boundaries (trace decode,
ST-reference run, engine advance, accounting harvest, journal write,
chunk dispatch/execute/decode, queue claim/run/merge).  Spans measure
the runner, not the simulated machine: timestamps come from
``time.perf_counter_ns`` and are therefore wall-clock and
nondeterministic.  For that reason spans are **never** written into
sweep journals; they travel in chunk payloads / queue records exactly
like metrics and are merged parent-side.

Design rules (mirroring the PR-3 observability contract):

* Zero overhead when disabled: every producer holds an optional
  recorder (default ``None``) and guards with ``if spans is not None``.
* Rows are plain dicts with a fixed key order so serialized span
  documents are stable for tooling:
  ``{"id", "parent", "name", "cat", "t0_us", "dur_us", "origin"}``
  plus a trailing ``"args"`` key only when non-empty.
* Timestamps are integer microseconds relative to a **per-process
  epoch** captured at module import, so all spans recorded inside one
  process share a timeline.  Epochs differ across processes; exporters
  give each origin its own lane instead of pretending clocks align.
* Thread safe: parent linkage uses a per-thread span stack, so a
  lease-renewer thread's spans never adopt the main thread's parents.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "SpanRecorder",
    "maybe_span",
    "span_roots",
    "validate_span_rows",
]

# Captured once per process: every recorder in this process measures
# t0 relative to this instant, so spans from different recorders (e.g.
# one per queue cell) interleave correctly on a shared per-origin lane.
_PROCESS_EPOCH_NS = time.perf_counter_ns()

# Sentinel distinguishing "no parent given, use the thread's stack"
# from an explicit ``parent=None`` (force a root span).
_STACK = object()


class SpanRecorder:
    """Collects hierarchical spans with integer-microsecond timing."""

    def __init__(
        self,
        origin: str = "main",
        clock: Callable[[], int] = time.perf_counter_ns,
        epoch_ns: int | None = None,
    ) -> None:
        self.origin = origin
        self._clock = clock
        self._epoch_ns = _PROCESS_EPOCH_NS if epoch_ns is None else epoch_ns
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._rows: list[dict[str, Any]] = []
        self._by_id: dict[int, dict[str, Any]] = {}

    # -- recording ----------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _now_us(self) -> int:
        return (self._clock() - self._epoch_ns) // 1000

    def now_us(self) -> int:
        """Current time on this recorder's timeline (for
        :meth:`record`-style retroactive spans)."""
        return self._now_us()

    def start(
        self,
        name: str,
        cat: str = "runner",
        parent: Any = _STACK,
        **args: Any,
    ) -> int:
        """Open a span and return its id.

        ``parent`` defaults to the innermost open span *on this
        thread*; pass ``parent=None`` to force a root span or an
        explicit span id to attach elsewhere (e.g. from another
        thread).
        """
        stack = self._stack()
        if parent is _STACK:
            parent_id = stack[-1] if stack else None
        else:
            parent_id = parent
        t0 = self._now_us()
        row: dict[str, Any] = {
            "id": 0,
            "parent": parent_id,
            "name": name,
            "cat": cat,
            "t0_us": t0,
            "dur_us": None,
        }
        if args:
            row["args"] = dict(args)
        with self._lock:
            row["id"] = span_id = self._next_id
            self._next_id += 1
            self._rows.append(row)
            self._by_id[span_id] = row
        stack.append(span_id)
        return span_id

    def finish(self, span_id: int) -> None:
        """Close a span (idempotent; tolerates out-of-order closes)."""
        row = self._by_id.get(span_id)
        if row is None:
            return
        if row["dur_us"] is None:
            row["dur_us"] = max(0, self._now_us() - row["t0_us"])
        stack = self._stack()
        if span_id in stack:
            while stack and stack[-1] != span_id:
                stack.pop()
            if stack:
                stack.pop()

    @contextmanager
    def span(
        self, name: str, cat: str = "runner", parent: Any = _STACK, **args: Any
    ) -> Iterator[int]:
        span_id = self.start(name, cat, parent=parent, **args)
        try:
            yield span_id
        finally:
            self.finish(span_id)

    def record(
        self,
        name: str,
        cat: str,
        t0_us: int,
        dur_us: int,
        parent: int | None = None,
        **args: Any,
    ) -> int:
        """Append an already-measured span (retroactive recording)."""
        row: dict[str, Any] = {
            "id": 0,
            "parent": parent,
            "name": name,
            "cat": cat,
            "t0_us": int(t0_us),
            "dur_us": max(0, int(dur_us)),
            "origin": self.origin,
        }
        if args:
            row["args"] = dict(args)
        with self._lock:
            row["id"] = span_id = self._next_id
            self._next_id += 1
            self._rows.append(row)
            self._by_id[span_id] = row
        return span_id

    # -- export / merge -----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serializable rows in start order (fixed key order).

        Still-open spans export with their duration measured up to
        now, so a crash report never loses the enclosing span.
        """
        now = self._now_us()
        out: list[dict[str, Any]] = []
        with self._lock:
            rows = list(self._rows)
        for row in rows:
            dur = row["dur_us"]
            if dur is None:
                dur = max(0, now - row["t0_us"])
            exported: dict[str, Any] = {
                "id": row["id"],
                "parent": row["parent"],
                "name": row["name"],
                "cat": row["cat"],
                "t0_us": row["t0_us"],
                "dur_us": dur,
                "origin": row.get("origin", self.origin),
            }
            if row.get("args"):
                exported["args"] = dict(row["args"])
            out.append(exported)
        return out

    def subtree(self, span_id: int) -> list[dict[str, Any]]:
        """Export one span and its descendants, re-rooted.

        The subtree root's ``parent`` becomes ``None`` so the rows are
        self-contained — this is what workers attach to a single
        ``CellResult`` (and to spill lines) so a cell's spans survive
        independently of the rest of the chunk.
        """
        keep = {span_id}
        rows = []
        for row in self.to_dicts():
            if row["id"] == span_id:
                row = dict(row)
                row["parent"] = None
                rows.append(row)
            elif row["parent"] in keep:
                keep.add(row["id"])
                rows.append(row)
        return rows

    def absorb(
        self, rows: list[dict[str, Any]], parent: int | None = None
    ) -> list[int]:
        """Merge externally-recorded rows into this recorder.

        Ids are remapped into this recorder's id space; internal parent
        links are preserved, and root rows (parent absent from the
        batch) are attached under ``parent``.  Timestamps and origins
        are kept verbatim — a worker's epoch differs from ours, so the
        origin field is what keeps lanes honest downstream.
        """
        mapping: dict[int, int] = {}
        new_ids: list[int] = []
        with self._lock:
            for row in rows:
                new_id = self._next_id
                self._next_id += 1
                mapping[row["id"]] = new_id
                old_parent = row.get("parent")
                new_parent = mapping.get(old_parent, parent) if old_parent is not None else parent
                absorbed: dict[str, Any] = {
                    "id": new_id,
                    "parent": new_parent,
                    "name": row["name"],
                    "cat": row.get("cat", "runner"),
                    "t0_us": int(row["t0_us"]),
                    "dur_us": int(row["dur_us"]) if row.get("dur_us") is not None else 0,
                    "origin": row.get("origin", "remote"),
                }
                if row.get("args"):
                    absorbed["args"] = dict(row["args"])
                self._rows.append(absorbed)
                self._by_id[new_id] = absorbed
                new_ids.append(new_id)
        return new_ids


@contextmanager
def maybe_span(
    recorder: SpanRecorder | None,
    name: str,
    cat: str = "runner",
    **args: Any,
) -> Iterator[int | None]:
    """Context manager that is a no-op when ``recorder`` is None."""
    if recorder is None:
        yield None
        return
    with recorder.span(name, cat, **args) as span_id:
        yield span_id


def span_roots(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Rows whose parent is None or missing from the batch."""
    ids = {row["id"] for row in rows}
    return [row for row in rows if row.get("parent") not in ids]


def validate_span_rows(rows: list[dict[str, Any]]) -> list[str]:
    """Schema + monotonicity checks for a span document.

    Returns a list of problems (empty == valid):

    * every row has the required keys with the right types;
    * ids are unique; parents reference previously seen ids (or None);
    * timestamps are monotonic along same-origin ancestry: a child
      never starts before its parent, and no span has a negative start
      or duration.  (Global per-origin order is *not* required — a
      merged document absorbs worker batches in completion order, and
      cross-origin timestamps use different process epochs.)
    """
    problems: list[str] = []
    by_id: dict[int, dict[str, Any]] = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"row {i}: not an object")
            continue
        for key, types in (
            ("id", int),
            ("name", str),
            ("cat", str),
            ("t0_us", int),
            ("dur_us", int),
            ("origin", str),
        ):
            if not isinstance(row.get(key), types) or isinstance(row.get(key), bool):
                problems.append(f"row {i}: bad {key!r}: {row.get(key)!r}")
        if not isinstance(row.get("id"), int):
            continue
        span_id = row["id"]
        if span_id in by_id:
            problems.append(f"row {i}: duplicate id {span_id}")
        by_id[span_id] = row
        t0 = row.get("t0_us")
        dur = row.get("dur_us")
        if isinstance(t0, int) and t0 < 0:
            problems.append(f"row {i}: negative t0_us")
        if isinstance(dur, int) and dur < 0:
            problems.append(f"row {i}: negative dur_us")
        parent = row.get("parent")
        if parent is None:
            continue
        if not isinstance(parent, int) or parent not in by_id:
            problems.append(
                f"row {i}: parent {parent!r} not a previously seen id"
            )
            continue
        parent_row = by_id[parent]
        if (
            parent_row.get("origin") == row.get("origin")
            and isinstance(t0, int)
            and isinstance(parent_row.get("t0_us"), int)
            and t0 < parent_row["t0_us"]
        ):
            problems.append(
                f"row {i}: t0_us {t0} precedes its parent's"
                f" ({parent_row['t0_us']}) within origin"
                f" {row.get('origin')!r}"
            )
    return problems
