"""Typed event bus for engine, accounting and sweep instrumentation.

Design constraints, in order of importance:

1. **Zero overhead when disabled.**  Producers keep an optional ``bus``
   reference (default ``None``) and guard every emission with ``if bus
   is not None``.  No event object is ever constructed on the disabled
   path, and no hook sits on the per-op hot loops — emission points are
   at *scheduling* frequency (dispatch, block, spin episode, blocked
   miss, cell boundary), not per instruction or per cache access.
2. **Typed events.**  Every event is a small frozen dataclass; handlers
   subscribe per type (or to everything), so a consumer interested only
   in :class:`SpinSegment` never sees — or pays dispatch for — cache
   events.
3. **Pure observation.**  Emitting an event must never change simulated
   state; handlers receive immutable values.  A handler that raises
   propagates (instrumentation bugs should be loud in tests), but the
   engine's emission points carry no state mutations after the emit, so
   simulated results are unaffected either way.

Producers that want to skip even the cost of *constructing* an event
when nobody listens can pre-check ``EventType in bus`` (see
:meth:`EventBus.__contains__`) — the chip does this for
:class:`MissBlocked`, the highest-frequency event.
"""

from __future__ import annotations

from dataclasses import dataclass


# ----------------------------------------------------------------------
# engine events (scheduling frequency)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SimStarted:
    """A simulation run began."""

    n_threads: int
    n_cores: int


@dataclass(frozen=True)
class SimEnded:
    """A simulation run completed (or was truncated)."""

    total_cycles: int
    total_instrs: int
    truncated: bool
    reason: str | None = None


@dataclass(frozen=True)
class ThreadDispatched:
    """A thread was switched onto a core."""

    tid: int
    core: int
    t: int


@dataclass(frozen=True)
class ThreadDescheduled:
    """A thread left its core (``reason``: blocked/preempted/finished)."""

    tid: int
    core: int
    t: int
    reason: str


@dataclass(frozen=True)
class SpinSegment:
    """One contiguous on-core spin-waiting interval of a thread.

    ``outcome`` is how the segment ended: ``"acquired"`` (lock claimed),
    ``"released"`` (barrier generation flipped), ``"yielded"`` (spin
    budget exhausted, thread blocked), or ``"preempted"`` (timeslice
    expired mid-spin).  Segments of one logical episode tile exactly:
    summed per thread they equal the engine's ground-truth
    ``gt_spin_cycles``.
    """

    tid: int
    core: int
    start: int
    end: int
    outcome: str


@dataclass(frozen=True)
class YieldInterval:
    """A thread was scheduled out on synchronization from ``start`` to
    ``end`` (the instant it is running again — Section 4.4's yield
    interval, identical to what the accountant is told)."""

    tid: int
    core: int
    start: int
    end: int


@dataclass(frozen=True)
class WatchdogFired:
    """The engine watchdog truncated the run."""

    reason: str
    t: int


@dataclass(frozen=True)
class DeadlockDetected:
    """No runnable core with blocked threads remaining."""

    t: int
    blocked_tids: tuple[int, ...]


# ----------------------------------------------------------------------
# memory-system events (blocked-miss frequency)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MissBlocked:
    """An LLC miss blocked the ROB head from ``start`` to ``end``.

    ``interference`` is the portion attributable to other cores
    (bus/bank waits plus ORA-attributed page conflicts, capped at the
    blocked interval) — the same attribution the accountant's
    ``on_miss_blocked`` hook records, so per-core sums reconcile
    exactly with the negative-memory stack component.
    """

    core: int
    start: int
    end: int
    interference: int
    is_load: bool


# ----------------------------------------------------------------------
# accountant events (sampled / episode frequency)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InterThreadAccess:
    """The ATD classified a sampled LLC access as inter-thread
    interference (``kind``: ``"hit"`` or ``"miss"``)."""

    core: int
    kind: str


@dataclass(frozen=True)
class SpinTruncated:
    """The sync library abandoned a spin loop to yield; the accountant
    charged ``elapsed`` spin cycles outside its hardware detectors."""

    core: int
    elapsed: int


# ----------------------------------------------------------------------
# sweep events (cell frequency)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepStarted:
    n_cells: int
    jobs: int


@dataclass(frozen=True)
class SweepFinished:
    ok: int
    failed: int
    resumed: int


@dataclass(frozen=True)
class CellStarted:
    key: str
    attempt: int


@dataclass(frozen=True)
class CellRetry:
    key: str
    attempt: int
    delay_s: float
    error: str


@dataclass(frozen=True)
class CellFinished:
    key: str
    status: str
    attempts: int


@dataclass(frozen=True)
class ChunkDispatched:
    """A chunk of cells was submitted to a warm worker pool.

    ``keys`` lists the chunk's cells in execution order; ``est_cost``
    is the planner's deterministic cost estimate (arbitrary units, see
    :func:`~repro.parallel.chunking.estimate_cell_cost`)."""

    chunk_id: str
    keys: tuple[str, ...]
    est_cost: float


@dataclass(frozen=True)
class ChunkFinished:
    """A chunk's worker returned its results (``n_cells`` of them,
    split into ``ok`` and ``failed``)."""

    chunk_id: str
    n_cells: int
    ok: int
    failed: int


@dataclass(frozen=True)
class FaultArmed:
    """A fault-injection plan entry was applied to a cell."""

    key: str
    kind: str


@dataclass(frozen=True)
class WorkerCrashed:
    """A worker process died; ``suspects`` are the cells quarantined
    for exact attribution."""

    suspects: tuple[str, ...]


# ----------------------------------------------------------------------
# work-queue events (lease frequency — emitted by the queue driver)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeaseExpired:
    """A worker's lease on a cell outlived its TTL (the worker was
    killed, hung, or its heartbeat stalled) and was reclaimed."""

    key: str
    worker: str
    expiries: int


@dataclass(frozen=True)
class CellRequeued:
    """A reclaimed or released cell went back to the pending queue,
    claimable after ``delay_s`` of (jittered) backoff."""

    key: str
    delay_s: float


@dataclass(frozen=True)
class CellQuarantined:
    """A poison cell: it expired ``expiries`` leases in a row and was
    pulled from circulation with its post-mortem attached."""

    key: str
    expiries: int


@dataclass(frozen=True)
class WorkerHeartbeat:
    """A queue worker refreshed its heartbeat file.

    ``timestamp`` is the worker's wall-clock (``time.time``) at write
    time; ``current_cell`` is the cell it was running, or None while
    idle.  The driver emits one of these per observed heartbeat change
    so the progress line can show per-worker last-heartbeat ages."""

    worker: str
    timestamp: float
    current_cell: str | None


#: every event type, for subscribe-to-everything consumers and docs
EVENT_TYPES = (
    SimStarted,
    SimEnded,
    ThreadDispatched,
    ThreadDescheduled,
    SpinSegment,
    YieldInterval,
    WatchdogFired,
    DeadlockDetected,
    MissBlocked,
    InterThreadAccess,
    SpinTruncated,
    SweepStarted,
    SweepFinished,
    CellStarted,
    CellRetry,
    CellFinished,
    ChunkDispatched,
    ChunkFinished,
    FaultArmed,
    WorkerCrashed,
    LeaseExpired,
    CellRequeued,
    CellQuarantined,
    WorkerHeartbeat,
)


class EventBus:
    """Synchronous publish/subscribe dispatch over the typed events.

    Handlers are called in subscription order, type-specific handlers
    before subscribe-all handlers.  ``unsubscribe`` during dispatch is
    safe (dispatch iterates over a snapshot).
    """

    __slots__ = ("_handlers", "_all", "n_emitted")

    def __init__(self) -> None:
        self._handlers: dict[type, list] = {}
        self._all: list = []
        #: total events emitted to at least zero handlers (diagnostics)
        self.n_emitted = 0

    # -- subscriptions --------------------------------------------------

    def subscribe(self, event_type: type, handler) -> None:
        """Call ``handler(event)`` for every emitted ``event_type``."""
        if event_type not in EVENT_TYPES and event_type is not object:
            raise TypeError(f"unknown event type: {event_type!r}")
        self._handlers.setdefault(event_type, []).append(handler)

    def subscribe_all(self, handler) -> None:
        """Call ``handler(event)`` for every event of any type."""
        self._all.append(handler)

    def unsubscribe(self, event_type: type, handler) -> None:
        """Remove one subscription; raises ``ValueError`` if absent."""
        handlers = self._handlers.get(event_type)
        if not handlers or handler not in handlers:
            raise ValueError(
                f"handler not subscribed to {event_type.__name__}"
            )
        handlers.remove(handler)
        if not handlers:
            del self._handlers[event_type]

    def unsubscribe_all(self, handler) -> None:
        """Remove a subscribe-all subscription."""
        self._all.remove(handler)

    # -- introspection --------------------------------------------------

    def __contains__(self, event_type: type) -> bool:
        """True when emitting ``event_type`` would reach a handler —
        producers use this to skip constructing high-frequency events
        nobody listens to."""
        return bool(self._all) or event_type in self._handlers

    @property
    def active(self) -> bool:
        """True when any subscription exists at all."""
        return bool(self._all or self._handlers)

    # -- dispatch -------------------------------------------------------

    def emit(self, event) -> None:
        self.n_emitted += 1
        handlers = self._handlers.get(type(event))
        if handlers:
            for handler in tuple(handlers):
                handler(event)
        if self._all:
            for handler in tuple(self._all):
                handler(event)
