"""Live sweep telemetry: stderr progress lines and a heartbeat file.

A :class:`ProgressReporter` subscribes to the sweep-level events
(:class:`~repro.observability.events.CellStarted` /
:class:`CellFinished` / :class:`CellRetry` / :class:`WorkerCrashed`)
and renders a one-line status on every change::

    sweep 12/48 ok=11 failed=1 | running cholesky:16 (8.2s) | eta 1m03s

ETA is the mean duration of finished cells times the remaining count,
divided by the worker slots — crude, but it converges as cells finish
and needs no prior model of cell cost.  Under chunked dispatch
(``ChunkDispatched`` seen) per-cell durations are chunk-granular, so
the reporter switches to completed-cell throughput
(``elapsed / done × remaining``) instead.  Queue sweeps additionally
feed :class:`~repro.observability.events.WorkerHeartbeat` events, and
the line then carries each worker's last-heartbeat age.

With a ``heartbeat_path`` the reporter also writes a small JSON
document (atomically: temp file + rename) on every event, so an
external monitor — or a human with ``watch cat`` — can follow a
headless sweep without parsing stderr.  Heartbeats carry wall-clock
timestamps and are *never* part of the journal, which must stay
byte-deterministic.

The reporter is thread-safe: in a ``--jobs N`` sweep the parent emits
cell events from future-completion callbacks, which may run on a
different thread than the collector loop.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.observability.events import (
    CellFinished,
    CellQuarantined,
    CellRequeued,
    CellRetry,
    CellStarted,
    ChunkDispatched,
    ChunkFinished,
    EventBus,
    LeaseExpired,
    SweepFinished,
    SweepStarted,
    WorkerCrashed,
    WorkerHeartbeat,
)


def _fmt_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Renders sweep progress to a stream and (optionally) a heartbeat
    file, driven entirely by bus events."""

    def __init__(
        self,
        n_cells: int,
        jobs: int = 1,
        stream=None,
        heartbeat_path: str | None = None,
        heartbeat_log_path: str | None = None,
        clock=time.monotonic,
        wall_clock=time.time,
    ) -> None:
        self.n_cells = n_cells
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.heartbeat_path = heartbeat_path
        self.heartbeat_log_path = heartbeat_log_path
        self._clock = clock
        self._wall = wall_clock
        self._lock = threading.Lock()
        self._t0 = clock()
        self._running: dict[str, float] = {}  # key -> start time
        self._durations: list[float] = []
        self.ok = 0
        self.failed = 0
        self.resumed = 0
        self.retries = 0
        self.crashes = 0
        self.lease_expiries = 0
        self.requeues = 0
        self.quarantined = 0
        self.chunks_dispatched = 0
        self.chunks_finished = 0
        #: worker -> (last heartbeat wall timestamp, current cell)
        self._worker_beats: dict[str, tuple[float, str | None]] = {}

    # -- bus wiring -----------------------------------------------------

    _SUBSCRIPTIONS = (
        (SweepStarted, "_on_sweep_started"),
        (SweepFinished, "_on_sweep_finished"),
        (CellStarted, "_on_cell_started"),
        (CellRetry, "_on_cell_retry"),
        (CellFinished, "_on_cell_finished"),
        (ChunkDispatched, "_on_chunk_dispatched"),
        (ChunkFinished, "_on_chunk_finished"),
        (WorkerCrashed, "_on_worker_crashed"),
        (WorkerHeartbeat, "_on_worker_heartbeat"),
        (LeaseExpired, "_on_lease_expired"),
        (CellRequeued, "_on_cell_requeued"),
        (CellQuarantined, "_on_cell_quarantined"),
    )

    def attach(self, bus: EventBus) -> "ProgressReporter":
        for event_type, method in self._SUBSCRIPTIONS:
            bus.subscribe(event_type, getattr(self, method))
        return self

    def detach(self, bus: EventBus) -> None:
        for event_type, method in self._SUBSCRIPTIONS:
            bus.unsubscribe(event_type, getattr(self, method))

    # -- derived state --------------------------------------------------

    @property
    def done(self) -> int:
        return self.ok + self.failed + self.resumed

    def eta_seconds(self) -> float | None:
        with self._lock:
            return self._eta_locked()

    # -- handlers -------------------------------------------------------

    def _on_sweep_started(self, event) -> None:
        with self._lock:
            self.n_cells = event.n_cells
            self.jobs = max(1, event.jobs)
            self._t0 = self._clock()
        self._emit("started")

    def _on_sweep_finished(self, event) -> None:
        self._emit("finished", final=True)

    def _on_cell_started(self, event) -> None:
        with self._lock:
            self._running.setdefault(event.key, self._clock())
        self._emit(f"run {event.key}")

    def _on_cell_retry(self, event) -> None:
        with self._lock:
            self.retries += 1
        self._emit(f"retry {event.key} (attempt {event.attempt})")

    def _on_cell_finished(self, event) -> None:
        with self._lock:
            started = self._running.pop(event.key, None)
            if started is not None:
                self._durations.append(self._clock() - started)
            if event.status == "ok":
                self.ok += 1
            elif event.status == "resumed":
                self.resumed += 1
            else:
                self.failed += 1
        self._emit(f"{event.status} {event.key}")

    def _on_chunk_dispatched(self, event) -> None:
        with self._lock:
            self.chunks_dispatched += 1
        self._emit(
            f"chunk {event.chunk_id} dispatched ({len(event.keys)} cells)"
        )

    def _on_chunk_finished(self, event) -> None:
        with self._lock:
            self.chunks_finished += 1
        self._emit(
            f"chunk {event.chunk_id} finished "
            f"(ok={event.ok} failed={event.failed})"
        )

    def _on_worker_crashed(self, event) -> None:
        with self._lock:
            self.crashes += 1
        self._emit(f"worker crashed ({len(event.suspects)} cells suspect)")

    def _on_worker_heartbeat(self, event) -> None:
        # heartbeats are frequent and carry no sweep-state change, so
        # they refresh the heartbeat file but never print a line; the
        # ages surface on the next rendered event
        with self._lock:
            self._worker_beats[event.worker] = (
                event.timestamp, event.current_cell
            )
            heartbeat = (
                self._heartbeat_locked()
                if self.heartbeat_path or self.heartbeat_log_path
                else None
            )
        if heartbeat is not None:
            self._write_heartbeat(heartbeat)

    def _on_lease_expired(self, event) -> None:
        with self._lock:
            self.lease_expiries += 1
            # the cell is no longer making progress under that worker
            self._running.pop(event.key, None)
        self._emit(
            f"lease expired {event.key} "
            f"(worker {event.worker}, expiry #{event.expiries})"
        )

    def _on_cell_requeued(self, event) -> None:
        with self._lock:
            self.requeues += 1
        self._emit(f"requeued {event.key} (+{event.delay_s:.1f}s backoff)")

    def _on_cell_quarantined(self, event) -> None:
        with self._lock:
            self.quarantined += 1
        self._emit(
            f"quarantined {event.key} after {event.expiries} lease expiries"
        )

    # -- output ---------------------------------------------------------

    def _emit(self, what: str, final: bool = False) -> None:
        with self._lock:
            line = self._render_locked(what)
            heartbeat = (
                self._heartbeat_locked()
                if self.heartbeat_path or self.heartbeat_log_path
                else None
            )
        print(line, file=self.stream)
        if final:
            self.stream.flush()
        if heartbeat is not None:
            self._write_heartbeat(heartbeat)

    def _render_locked(self, what: str) -> str:
        now = self._clock()
        parts = [
            f"sweep {self.done}/{self.n_cells}",
            f"ok={self.ok}",
        ]
        if self.resumed:
            parts.append(f"resumed={self.resumed}")
        if self.failed:
            parts.append(f"failed={self.failed}")
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.crashes:
            parts.append(f"crashes={self.crashes}")
        if self.lease_expiries:
            parts.append(f"expiries={self.lease_expiries}")
        if self.requeues:
            parts.append(f"requeues={self.requeues}")
        if self.quarantined:
            parts.append(f"quarantined={self.quarantined}")
        if self.chunks_dispatched:
            parts.append(
                f"chunks={self.chunks_finished}/{self.chunks_dispatched}"
            )
        line = " ".join(parts) + f" | {what}"
        if self._running:
            active = ", ".join(
                f"{key} ({_fmt_duration(now - t)})"
                for key, t in sorted(self._running.items())
            )
            line += f" | active: {active}"
        if self._worker_beats:
            wall = self._wall()
            ages = " ".join(
                f"{worker}={_fmt_duration(max(0.0, wall - ts))}"
                for worker, (ts, _cell) in sorted(self._worker_beats.items())
            )
            line += f" | hb {ages}"
        eta = self._eta_locked()
        if eta is not None:
            line += f" | eta {_fmt_duration(eta)}"
        return line

    def _eta_locked(self) -> float | None:
        if self.chunks_dispatched:
            # chunked dispatch reports a chunk's cells together, so the
            # per-cell durations in self._durations are chunk-granular
            # (every cell appears to take its whole chunk's wall time)
            # and the mean-duration formula overestimates by roughly
            # the chunk size; use completed-cell throughput instead —
            # worker parallelism is already folded into the rate
            if self.done <= 0:
                return None
            remaining = self.n_cells - self.done
            if remaining <= 0:
                return 0.0
            elapsed = max(self._clock() - self._t0, 1e-9)
            return elapsed * remaining / self.done
        if not self._durations:
            return None
        remaining = self.n_cells - self.done
        if remaining <= 0:
            return 0.0
        mean = sum(self._durations) / len(self._durations)
        return mean * remaining / self.jobs

    def _heartbeat_locked(self) -> dict:
        now = self._clock()
        doc = {
            "timestamp": self._wall(),
            "elapsed_s": round(now - self._t0, 3),
            "total": self.n_cells,
            "done": self.done,
            "ok": self.ok,
            "failed": self.failed,
            "resumed": self.resumed,
            "retries": self.retries,
            "worker_crashes": self.crashes,
            "lease_expiries": self.lease_expiries,
            "requeues": self.requeues,
            "quarantined": self.quarantined,
            "chunks_dispatched": self.chunks_dispatched,
            "chunks_finished": self.chunks_finished,
            "jobs": self.jobs,
            "active": {
                key: round(now - t, 3)
                for key, t in sorted(self._running.items())
            },
            "eta_s": (
                round(self._eta_locked(), 3)
                if self._eta_locked() is not None else None
            ),
        }
        if self._worker_beats:
            wall = self._wall()
            doc["workers"] = {
                worker: {
                    "age_s": round(max(0.0, wall - ts), 3),
                    "current_cell": cell,
                }
                for worker, (ts, cell) in sorted(self._worker_beats.items())
            }
        return doc

    def _write_heartbeat(self, payload: dict) -> None:
        if self.heartbeat_path is not None:
            tmp = f"{self.heartbeat_path}.tmp.{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=1)
                handle.write("\n")
            os.replace(tmp, self.heartbeat_path)
        if self.heartbeat_log_path is not None:
            # append-only JSONL history of every heartbeat, one compact
            # object per line — the input `repro report` and
            # tools/validate_trace.py --kind heartbeat-log consume
            try:
                with open(self.heartbeat_log_path, "a") as handle:
                    handle.write(
                        json.dumps(payload, separators=(",", ":")) + "\n"
                    )
            except OSError:
                pass  # history is advisory; never fail the sweep for it
