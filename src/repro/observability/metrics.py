"""Metrics registry: counters, gauges and histograms for sweep runs.

Two kinds of metrics flow through the registry:

* **Deterministic simulation metrics** (``sim.*``) — LLC hits/misses,
  ROB-block stall cycles, spin-loop detections, ground-truth spin/yield
  cycles, instruction counts.  These are *harvested from counters the
  simulator already maintains* after a cell finishes
  (:func:`harvest_cell_metrics`), so collecting them adds nothing to
  the simulated hot path.  They are bit-identical between a serial
  sweep and any ``--jobs N`` sweep (the differential tests assert it),
  and are the part serialized into the sweep journal per cell.
* **Runtime metrics** (``runtime.*``) — per-cell wall time, retries,
  worker crashes.  Host-dependent by nature; they live in the registry
  (and the ``--emit-metrics`` document / heartbeat) but never in the
  journal, which must stay byte-deterministic.

Aggregation across worker processes follows the parent-only collection
path of :mod:`repro.parallel`: each worker harvests its cell's flat
``sim.*`` dict into the picklable ``CellResult``, and the parent merges
into its registry in submission order.  All merge operations (counter
sum, gauge max, histogram bucket sum) are commutative, so the aggregate
is independent of completion order.
"""

from __future__ import annotations

import json
from bisect import bisect_left

#: Canonical metric registry: every metric the harness emits, keyed by
#: base name (labels stripped), with its kind and label set.  This is
#: the single source of truth for metric naming — the table in
#: ``docs/observability.md`` renders it, and
#: ``tests/observability/test_counter_registry.py`` greps the source
#: tree to fail on any emission not listed here (and on any listed
#: name nothing emits).  Naming rules: ``runtime.*`` for host-dependent
#: harness telemetry (never journaled), ``sim.*`` for deterministic
#: simulator counters (journaled per cell); snake_case; counters named
#: for the counted noun (``cells_ok``, not ``ok_cells``).
METRIC_REGISTRY: dict[str, dict] = {
    # -- runtime.* (host-dependent; registry/heartbeat only) -----------
    "runtime.cells_ok": {
        "kind": "counter", "labels": (),
        "help": "cells that reached a terminal ok state",
    },
    "runtime.cells_failed": {
        "kind": "counter", "labels": (),
        "help": "cells that reached a terminal failed state",
    },
    "runtime.retries": {
        "kind": "counter", "labels": (),
        "help": "in-cell retry attempts (on_error=retry)",
    },
    "runtime.cell_wall_s": {
        "kind": "histogram", "labels": (),
        "help": "wall-clock seconds per cell attempt",
    },
    "runtime.worker_crashes": {
        "kind": "counter", "labels": (),
        "help": "worker processes that died mid-sweep",
    },
    "runtime.lease_expiries": {
        "kind": "counter", "labels": (),
        "help": "queue leases reclaimed from silent workers",
    },
    "runtime.requeues": {
        "kind": "counter", "labels": (),
        "help": "cells put back in the queue after a lease expiry",
    },
    "runtime.quarantined": {
        "kind": "counter", "labels": (),
        "help": "poison cells quarantined after repeated expiries",
    },
    "runtime.chunks_dispatched": {
        "kind": "counter", "labels": (),
        "help": "chunks submitted to the worker pool",
    },
    "runtime.chunks_finished": {
        "kind": "counter", "labels": (),
        "help": "chunks whose results were collected",
    },
    "runtime.cells_recovered_from_spill": {
        "kind": "counter", "labels": (),
        "help": "cells recovered from a dead worker's spill file",
    },
    # -- sim.* (deterministic; journaled per cell) ---------------------
    "sim.l1_hits": {"kind": "counter", "labels": ("core",),
                    "help": "L1 hits"},
    "sim.l1_misses": {"kind": "counter", "labels": ("core",),
                      "help": "L1 misses"},
    "sim.llc_hits": {"kind": "counter", "labels": ("core",),
                     "help": "LLC hits"},
    "sim.llc_misses": {"kind": "counter", "labels": ("core",),
                       "help": "LLC misses"},
    "sim.llc_load_misses": {"kind": "counter", "labels": ("core",),
                            "help": "LLC load misses"},
    "sim.c2c_transfers": {"kind": "counter", "labels": ("core",),
                          "help": "cache-to-cache transfers"},
    "sim.dram_accesses": {"kind": "counter", "labels": ("core",),
                          "help": "DRAM accesses"},
    "sim.rob_block_stall_cycles": {
        "kind": "counter", "labels": ("core",),
        "help": "cycles the ROB head was blocked on an LLC load miss",
    },
    "sim.stall_cycles": {"kind": "counter", "labels": ("core",),
                         "help": "total stall cycles"},
    "sim.busy_cycles": {"kind": "counter", "labels": ("core",),
                        "help": "cycles the core retired work"},
    "sim.coherency_misses": {"kind": "counter", "labels": ("core",),
                             "help": "invalidation-caused misses"},
    "sim.spin_loop_detections": {
        "kind": "counter", "labels": ("core",),
        "help": "hardware spin-detector episodes",
    },
    "sim.sampled_inter_thread_misses": {
        "kind": "counter", "labels": ("core",),
        "help": "sampled negative-interference misses",
    },
    "sim.sampled_inter_thread_hits": {
        "kind": "counter", "labels": ("core",),
        "help": "sampled positive-interference hits",
    },
    "sim.memory_interference_stall": {
        "kind": "counter", "labels": ("core",),
        "help": "stall cycles attributed to other cores' interference",
    },
    "sim.spin_cycles": {"kind": "counter", "labels": ("thread",),
                        "help": "ground-truth spin cycles"},
    "sim.yield_cycles": {"kind": "counter", "labels": ("thread",),
                         "help": "ground-truth yield cycles"},
    "sim.sync_cycles": {"kind": "counter", "labels": ("thread",),
                        "help": "ground-truth synchronization cycles"},
    "sim.spin_instrs": {"kind": "counter", "labels": ("thread",),
                        "help": "instructions retired while spinning"},
    "sim.yields": {"kind": "counter", "labels": ("thread",),
                   "help": "scheduler yields"},
    "sim.lock_acquires": {"kind": "counter", "labels": ("thread",),
                          "help": "lock acquisitions"},
    "sim.barrier_waits": {"kind": "counter", "labels": ("thread",),
                          "help": "barrier arrivals"},
    "sim.total_cycles": {"kind": "counter", "labels": (),
                         "help": "simulated cycles of the accounted run"},
    "sim.instructions": {"kind": "counter", "labels": (),
                         "help": "instructions retired"},
    "sim.spin_instructions": {"kind": "counter", "labels": (),
                              "help": "spin instructions retired"},
    "sim.truncated_runs": {"kind": "counter", "labels": (),
                           "help": "1 when the run hit a watchdog"},
    "sim.cells": {"kind": "counter", "labels": (),
                  "help": "cells aggregated into this registry"},
}


def metric_key(name: str, **labels) -> str:
    """Canonical metric key: ``name{k=v,...}`` with sorted label keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += n


class Gauge:
    """Last-known value of a quantity; merges by maximum so that
    cross-process aggregation is order-independent."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


#: default histogram bucket upper bounds: powers of two, covering
#: microsecond-to-minute wall times and cycle counts alike
DEFAULT_BUCKETS = tuple(2.0 ** e for e in range(-10, 21))


class Histogram:
    """Fixed-bucket histogram (cumulative-free, one count per bucket
    plus overflow), with total sum and count for mean computation."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- access-or-create ----------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, **labels)
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, **labels)
        gauge = self.gauges.get(key)
        if gauge is None:
            gauge = self.gauges[key] = Gauge()
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = metric_key(name, **labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(bounds)
        return histogram

    # -- bulk updates ---------------------------------------------------

    def absorb(self, flat: dict[str, int]) -> None:
        """Add a flat ``{key: int}`` dict (a harvested cell) into the
        counters."""
        counters = self.counters
        for key, value in flat.items():
            counter = counters.get(key)
            if counter is None:
                counter = counters[key] = Counter()
            counter.value += value

    def merge(self, doc: dict) -> None:
        """Merge a :meth:`to_dict` document from another registry:
        counters sum, gauges max, histograms bucket-sum."""
        self.absorb(doc.get("counters", {}))
        for key, value in doc.get("gauges", {}).items():
            gauge = self.gauges.get(key)
            if gauge is None:
                gauge = self.gauges[key] = Gauge(value)
            else:
                gauge.value = max(gauge.value, value)
        for key, payload in doc.get("histograms", {}).items():
            incoming = Histogram(tuple(payload["bounds"]))
            incoming.counts = list(payload["counts"])
            incoming.total = payload["total"]
            incoming.count = payload["count"]
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = incoming
            else:
                mine.merge(incoming)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready document with deterministically sorted keys."""
        return {
            "counters": {
                key: self.counters[key].value
                for key in sorted(self.counters)
            },
            "gauges": {
                key: self.gauges[key].value for key in sorted(self.gauges)
            },
            "histograms": {
                key: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for key, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(doc)
        return registry

    def subset(self, prefix: str) -> dict[str, int]:
        """Counters whose key starts with ``prefix`` (e.g. ``"sim."``)."""
        return {
            key: counter.value
            for key, counter in sorted(self.counters.items())
            if key.startswith(prefix)
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")


# ----------------------------------------------------------------------
# harvesting: simulator counters -> flat deterministic metrics
# ----------------------------------------------------------------------


def harvest_sim_metrics(sim_result, report=None) -> dict[str, int]:
    """Flatten one finished run's counters into ``sim.*`` metrics.

    Reads only counters the engine, chip and accountant already
    maintain — harvesting is a post-run walk, never an in-run hook.
    The dict is built in a fixed order so its JSON serialization (and
    therefore the sweep journal) is byte-deterministic.
    """
    flat: dict[str, int] = {}
    for core_id, stats in enumerate(sim_result.chip.stats):
        flat[metric_key("sim.l1_hits", core=core_id)] = stats.l1_hits
        flat[metric_key("sim.l1_misses", core=core_id)] = stats.l1_misses
        flat[metric_key("sim.llc_hits", core=core_id)] = stats.llc_hits
        flat[metric_key("sim.llc_misses", core=core_id)] = stats.llc_misses
        flat[metric_key("sim.llc_load_misses", core=core_id)] = (
            stats.llc_load_misses
        )
        flat[metric_key("sim.c2c_transfers", core=core_id)] = (
            stats.c2c_transfers
        )
        flat[metric_key("sim.dram_accesses", core=core_id)] = (
            stats.dram_accesses
        )
        flat[metric_key("sim.rob_block_stall_cycles", core=core_id)] = (
            stats.llc_load_miss_stall
        )
        flat[metric_key("sim.stall_cycles", core=core_id)] = (
            stats.stall_cycles
        )
        flat[metric_key("sim.busy_cycles", core=core_id)] = stats.busy_cycles
        flat[metric_key("sim.coherency_misses", core=core_id)] = (
            stats.coherency_misses
        )
    for thread in sim_result.threads:
        tid = thread.tid
        flat[metric_key("sim.spin_cycles", thread=tid)] = (
            thread.gt_spin_cycles
        )
        flat[metric_key("sim.yield_cycles", thread=tid)] = (
            thread.gt_yield_cycles
        )
        flat[metric_key("sim.sync_cycles", thread=tid)] = (
            thread.gt_sync_cycles
        )
        flat[metric_key("sim.spin_instrs", thread=tid)] = thread.spin_instrs
        flat[metric_key("sim.yields", thread=tid)] = thread.n_yields
        flat[metric_key("sim.lock_acquires", thread=tid)] = (
            thread.n_lock_acquires
        )
        flat[metric_key("sim.barrier_waits", thread=tid)] = (
            thread.n_barrier_waits
        )
    if report is not None:
        for raw in report.cores:
            core_id = raw.core_id
            flat[metric_key("sim.spin_loop_detections", core=core_id)] = (
                raw.n_spin_episodes
            )
            flat[
                metric_key("sim.sampled_inter_thread_misses", core=core_id)
            ] = raw.sampled_inter_thread_misses
            flat[
                metric_key("sim.sampled_inter_thread_hits", core=core_id)
            ] = raw.sampled_inter_thread_hits
            flat[
                metric_key("sim.memory_interference_stall", core=core_id)
            ] = raw.memory_interference_stall
    flat["sim.total_cycles"] = sim_result.total_cycles
    flat["sim.instructions"] = sim_result.total_instrs
    flat["sim.spin_instructions"] = sim_result.total_spin_instrs
    flat["sim.truncated_runs"] = 1 if sim_result.truncated else 0
    return flat


def harvest_cell_metrics(experiment_result) -> dict[str, int]:
    """``sim.*`` metrics of one finished experiment cell (the accounted
    multi-threaded run; the memoized reference run is excluded so that
    cells sharing one ``Ts`` measurement aggregate identically in any
    execution order)."""
    flat = harvest_sim_metrics(
        experiment_result.mt_result, experiment_result.report
    )
    flat["sim.cells"] = 1
    return flat
