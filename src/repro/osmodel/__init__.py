"""Operating-system model: software threads and scheduling state.

The scheduling policy itself (run queues, timeslices, block/wakeup)
lives in :mod:`repro.sim.engine`, which drives these states.
"""
