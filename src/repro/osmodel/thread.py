"""Software-thread state for the OS model."""

from __future__ import annotations

from typing import Iterator

READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
FINISHED = "finished"

#: Reasons a thread leaves a core.
BLOCK_SYNC = "sync"
BLOCK_PREEMPT = "preempt"


class SpinContext:
    """State of a thread inside a contended acquire/barrier spin loop."""

    __slots__ = ("kind", "obj", "iters", "episode_start", "my_generation",
                 "contention_start", "segment_start")

    def __init__(self, kind: str, obj, now: int, my_generation: int = 0) -> None:
        self.kind = kind
        self.obj = obj
        self.iters = 0
        self.episode_start = now
        self.my_generation = my_generation
        #: when the thread first started waiting (never reset by wakeups)
        self.contention_start = now
        #: start of the current *on-core* spin stretch (reset on every
        #: re-dispatch); the observability layer closes one SpinSegment
        #: per stretch so the segments tile gt_spin_cycles exactly
        self.segment_start = now

    def restart(self, now: int) -> None:
        """Reset the spin budget after the thread was woken by the OS."""
        self.iters = 0
        self.episode_start = now
        self.segment_start = now


class SoftwareThread:
    """One software thread: an op stream plus scheduling state."""

    __slots__ = (
        "tid",
        "body",
        "state",
        "core_id",
        "ready_time",
        "spin",
        "block_start",
        "block_reason",
        "run_start",
        "instrs",
        "spin_instrs",
        "sync_instrs",
        "end_time",
        "n_yields",
        "n_lock_acquires",
        "n_barrier_waits",
        "gt_spin_cycles",
        "gt_sync_cycles",
        "gt_yield_cycles",
    )

    def __init__(self, tid: int, body: Iterator) -> None:
        self.tid = tid
        self.body = body
        self.state = READY
        self.core_id = -1
        self.ready_time = 0
        self.spin: SpinContext | None = None
        self.block_start = 0
        self.block_reason = ""
        self.run_start = 0
        self.instrs = 0
        self.spin_instrs = 0
        self.sync_instrs = 0
        self.end_time = -1
        self.n_yields = 0
        self.n_lock_acquires = 0
        self.n_barrier_waits = 0
        # Ground-truth ("oracle") cycle counters maintained by the engine,
        # used to validate the hardware accounting estimates in tests.
        self.gt_spin_cycles = 0
        self.gt_sync_cycles = 0
        self.gt_yield_cycles = 0

    def __repr__(self) -> str:
        return f"SoftwareThread(tid={self.tid}, state={self.state})"
