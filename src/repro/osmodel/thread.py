"""Software-thread state for the OS model."""

from __future__ import annotations

from typing import Iterator

READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
FINISHED = "finished"

#: Reasons a thread leaves a core.
BLOCK_SYNC = "sync"
BLOCK_PREEMPT = "preempt"


class SpinContext:
    """State of a thread inside a contended acquire/barrier spin loop."""

    __slots__ = ("kind", "obj", "iters", "episode_start", "my_generation",
                 "contention_start", "segment_start")

    def __init__(self, kind: str, obj, now: int, my_generation: int = 0) -> None:
        self.kind = kind
        self.obj = obj
        self.iters = 0
        self.episode_start = now
        self.my_generation = my_generation
        #: when the thread first started waiting (never reset by wakeups)
        self.contention_start = now
        #: start of the current *on-core* spin stretch (reset on every
        #: re-dispatch); the observability layer closes one SpinSegment
        #: per stretch so the segments tile gt_spin_cycles exactly
        self.segment_start = now

    def restart(self, now: int) -> None:
        """Reset the spin budget after the thread was woken by the OS."""
        self.iters = 0
        self.episode_start = now
        self.segment_start = now

    def state_dict(self) -> dict:
        """JSON-safe spin-loop state; the waited-on object is recorded
        by kind and id and re-resolved against the restored sync
        manager on load."""
        if self.kind == "lock":
            obj_id = self.obj.lock_id
        else:
            obj_id = self.obj.barrier_id
        return {
            "kind": self.kind,
            "obj_id": obj_id,
            "iters": self.iters,
            "episode_start": self.episode_start,
            "my_generation": self.my_generation,
            "contention_start": self.contention_start,
            "segment_start": self.segment_start,
        }

    @classmethod
    def from_state_dict(cls, state: dict, obj) -> "SpinContext":
        ctx = cls(state["kind"], obj, state["episode_start"],
                  state["my_generation"])
        ctx.iters = state["iters"]
        ctx.contention_start = state["contention_start"]
        ctx.segment_start = state["segment_start"]
        return ctx


class SoftwareThread:
    """One software thread: an op stream plus scheduling state."""

    __slots__ = (
        "tid",
        "body",
        "state",
        "core_id",
        "ready_time",
        "spin",
        "block_start",
        "block_reason",
        "run_start",
        "instrs",
        "spin_instrs",
        "sync_instrs",
        "end_time",
        "n_yields",
        "n_lock_acquires",
        "n_barrier_waits",
        "gt_spin_cycles",
        "gt_sync_cycles",
        "gt_yield_cycles",
        "ops_taken",
    )

    #: scalar slots serialized verbatim by :meth:`state_dict` (``body``
    #: is represented by the ``ops_taken`` cursor, ``spin`` separately)
    _STATE_SLOTS = (
        "tid", "state", "core_id", "ready_time", "block_start",
        "block_reason", "run_start", "instrs", "spin_instrs",
        "sync_instrs", "end_time", "n_yields", "n_lock_acquires",
        "n_barrier_waits", "gt_spin_cycles", "gt_sync_cycles",
        "gt_yield_cycles", "ops_taken",
    )

    def __init__(self, tid: int, body: Iterator) -> None:
        self.tid = tid
        self.body = body
        self.state = READY
        self.core_id = -1
        self.ready_time = 0
        self.spin: SpinContext | None = None
        self.block_start = 0
        self.block_reason = ""
        self.run_start = 0
        self.instrs = 0
        self.spin_instrs = 0
        self.sync_instrs = 0
        self.end_time = -1
        self.n_yields = 0
        self.n_lock_acquires = 0
        self.n_barrier_waits = 0
        # Ground-truth ("oracle") cycle counters maintained by the engine,
        # used to validate the hardware accounting estimates in tests.
        self.gt_spin_cycles = 0
        self.gt_sync_cycles = 0
        self.gt_yield_cycles = 0
        # Operation cursor: how many ops the engine has pulled from
        # ``body``.  Generators are unpicklable, so checkpoints record
        # this cursor and restore by replaying it against a freshly
        # (deterministically) rebuilt program.
        self.ops_taken = 0

    def state_dict(self) -> dict:
        state = {slot: getattr(self, slot) for slot in self._STATE_SLOTS}
        state["spin"] = None if self.spin is None else self.spin.state_dict()
        return state

    def load_state_dict(self, state: dict, resolve_sync=None) -> None:
        """Restore scheduling/counter state.  ``resolve_sync(kind, id)``
        maps a serialized spin target back to the live lock/barrier
        object (required when the thread was mid-spin).  The op stream
        itself is restored separately by the engine, which replays
        ``ops_taken`` operations against a rebuilt program *before*
        calling this."""
        for slot in self._STATE_SLOTS:
            setattr(self, slot, state[slot])
        spin_state = state["spin"]
        if spin_state is None:
            self.spin = None
        else:
            obj = resolve_sync(spin_state["kind"], spin_state["obj_id"])
            self.spin = SpinContext.from_state_dict(spin_state, obj)

    def __repr__(self) -> str:
        return f"SoftwareThread(tid={self.tid}, state={self.state})"
