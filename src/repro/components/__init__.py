"""Pluggable simulator components.

This package is the seam between string-valued configuration and the
simulator's mechanisms.  It provides:

* :mod:`~repro.components.protocols` — ``typing.Protocol`` interfaces
  for each swappable component family;
* :mod:`~repro.components.registry` — the ``(kind, name)`` registry
  with :func:`register`, :func:`resolve`, :func:`available`;
* built-in implementations, extracted from the ``sim`` and
  ``accounting`` packages: cache replacement
  (:mod:`~repro.components.replacement`), DRAM page policies
  (:mod:`~repro.components.paging`), spin detectors
  (:mod:`~repro.components.spin`), the engine scheduler
  (:mod:`~repro.components.scheduling`), and the simulation engine
  backends themselves (:mod:`~repro.components.engines`).

Importing this package registers every built-in, so
``available("replacement")`` etc. is complete after
``import repro.components``.
"""

from __future__ import annotations

from repro.components.protocols import (
    PagePolicy,
    ReplacementPolicy,
    Scheduler,
    SpinDetector,
)
from repro.components.registry import (
    available,
    kinds,
    register,
    resolve,
    unregister,
    validate_choice,
)

# Import the built-in implementations for their registration side
# effects (order matters only in that each must come after registry).
from repro.components import engines as engines  # noqa: E402
from repro.components import paging as paging  # noqa: E402
from repro.components import replacement as replacement  # noqa: E402
from repro.components import scheduling as scheduling  # noqa: E402
from repro.components import spin as spin  # noqa: E402

__all__ = [
    "PagePolicy",
    "ReplacementPolicy",
    "Scheduler",
    "SpinDetector",
    "available",
    "engines",
    "kinds",
    "paging",
    "register",
    "replacement",
    "resolve",
    "scheduling",
    "spin",
    "unregister",
    "validate_choice",
]
