"""Registered spin-detector factories.

The detector implementations live in :mod:`repro.accounting.spin_tian`
and :mod:`repro.accounting.spin_li`; this module only binds them to
registry names and to the factory convention (an
:class:`~repro.config.AccountingConfig` in, one per-core detector
instance out).  The accountant builds one detector per core through
these factories and feeds every detector *both* event streams; each
implementation ignores the stream it does not use.

The detector classes are imported inside the factories — not at module
level — because ``repro.accounting`` imports ``repro.config``, which
validates its defaults against this registry while *it* is still being
imported.  Keeping :mod:`repro.components` free of config/accounting
imports breaks that cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.components.registry import register

if TYPE_CHECKING:
    from repro.accounting.spin_li import LiSpinDetector
    from repro.accounting.spin_tian import TianSpinDetector
    from repro.config import AccountingConfig


@register("spin_detector", "tian")
def make_tian(config: "AccountingConfig") -> "TianSpinDetector":
    """Tian et al. load-value watch table (the paper's default)."""
    from repro.accounting.spin_tian import TianSpinDetector

    return TianSpinDetector(
        n_entries=config.spin_table_entries,
        threshold=config.spin_value_threshold,
    )


@register("spin_detector", "li")
def make_li(config: "AccountingConfig") -> "LiSpinDetector":
    """Li, Lebeck and Sorin backward-branch detection (alternative)."""
    from repro.accounting.spin_li import LiSpinDetector

    return LiSpinDetector()
