"""Built-in cache replacement policies (extracted from ``sim.cache``).

Each policy is a tiny strategy object owned by one
:class:`~repro.sim.cache.SetAssocCache` instance.  The cache keeps the
hot path (set indexing, residency probes, counter updates) and asks the
policy only for the two decisions that differ between schemes: whether
hits promote, and which line a full set evicts.

The ``"random"`` policy is *deterministically* seeded from the cache
geometry (``size_bytes ^ assoc``), exactly as the pre-registry
implementation was, so golden fixtures and differential runs are
bit-identical across the refactor.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.components.registry import register

if TYPE_CHECKING:
    from repro.config import CacheConfig


@register("replacement", "lru")
class LruPolicy:
    """True LRU: hits promote to MRU, the set front is the victim."""

    promote_on_hit = True

    def __init__(self, config: "CacheConfig") -> None:
        pass

    def select_victim(self, cache_set: OrderedDict[int, bool]) -> int:
        return next(iter(cache_set))

    def reset(self) -> None:
        pass


@register("replacement", "fifo")
class FifoPolicy:
    """Insertion order: hits do not promote, oldest insertion evicts."""

    promote_on_hit = False

    def __init__(self, config: "CacheConfig") -> None:
        pass

    def select_victim(self, cache_set: OrderedDict[int, bool]) -> int:
        return next(iter(cache_set))

    def reset(self) -> None:
        pass


@register("replacement", "random")
class RandomPolicy:
    """Seeded-random victim selection, deterministic across runs.

    The RNG is consumed once per eviction, so two caches with the same
    geometry that see the same fill sequence evict identically — the
    property the seeded-determinism tests pin down.
    """

    promote_on_hit = False

    def __init__(self, config: "CacheConfig") -> None:
        self._seed = config.size_bytes ^ config.assoc
        self._rng = random.Random(self._seed)

    def select_victim(self, cache_set: OrderedDict[int, bool]) -> int:
        return self._rng.choice(list(cache_set))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def state_dict(self) -> dict:
        # Mersenne Twister state is (version, (int, ...), gauss_next);
        # flatten the inner tuple for JSON and rebuild it on load.
        version, internal, gauss_next = self._rng.getstate()
        return {
            "version": version,
            "internal": list(internal),
            "gauss_next": gauss_next,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.setstate(
            (state["version"], tuple(state["internal"]), state["gauss_next"])
        )
