"""DRAM page (row-buffer) policies (extracted from ``sim.memory``).

The outcome constants live here — not in ``sim.memory`` — so policy
implementations never import the memory model (``sim.memory`` imports
this module and re-exports the names for backward compatibility).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.components.registry import register

if TYPE_CHECKING:
    from repro.config import DramConfig

#: the requested page is already in the row buffer
PAGE_HIT = "hit"
#: the bank had no page open (activate + access)
PAGE_EMPTY = "empty"
#: a different page is open (precharge + activate + access)
PAGE_CONFLICT = "conflict"


@register("page_policy", "open")
class OpenPagePolicy:
    """The paper's configuration: a serviced page stays open.

    Back-to-back accesses to the same page by the same core become
    row-buffer hits; a different core opening another page in between
    turns them into page conflicts — the open-page interference channel
    the ORA accounting attributes (Section 4.1).
    """

    def __init__(self, config: "DramConfig") -> None:
        self._hit = config.page_hit_cycles
        self._empty = config.page_empty_cycles
        self._conflict = config.page_conflict_cycles

    def classify(self, open_page: int | None, page_id: int) -> tuple[str, int]:
        if open_page is None:
            return PAGE_EMPTY, self._empty
        if open_page == page_id:
            return PAGE_HIT, self._hit
        return PAGE_CONFLICT, self._conflict

    def page_after(self, page_id: int) -> int | None:
        return page_id


@register("page_policy", "closed")
class ClosedPagePolicy:
    """Auto-precharge: the bank closes its page after every access.

    Every access pays the activate cost (``page_empty_cycles``) but no
    access ever pays a conflict precharge — trading away row-buffer
    locality for immunity to inter-core open-page interference.  Not
    the paper's configuration; a registered alternative for design
    studies.
    """

    def __init__(self, config: "DramConfig") -> None:
        self._empty = config.page_empty_cycles

    def classify(self, open_page: int | None, page_id: int) -> tuple[str, int]:
        return PAGE_EMPTY, self._empty

    def page_after(self, page_id: int) -> int | None:
        return None
