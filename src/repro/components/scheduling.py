"""Engine core-pick schedulers (extracted from ``sim.engine``).

The scheduler decides which core the conservative discrete-event loop
steps next.  It is consulted once per step, returns the chosen core,
the time at which that core can act, and the *horizon* — the earliest
instant any other core could act — which bounds the engine's
instruction-block fast-forward.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.components.registry import register

if TYPE_CHECKING:
    from repro.config import SchedConfig
    from repro.sim.engine import _CoreRuntime

_INFINITY = float("inf")


@register("scheduler", "earliest")
class EarliestCoreScheduler:
    """Smallest-local-clock-first selection (the reference policy).

    This is the only order for which the engine's causality argument
    holds unconditionally — shared state is touched at step start
    times, and steps execute in global start-time order, with ties
    broken deterministically by core id (the iteration order).
    """

    def __init__(self, config: "SchedConfig") -> None:
        pass

    def pick(
        self, cores: Sequence["_CoreRuntime"]
    ) -> tuple["_CoreRuntime | None", float, float]:
        best: "_CoreRuntime | None" = None
        best_time = _INFINITY
        second_time = _INFINITY
        for core in cores:
            if core.current is not None:
                avail: float = core.now
            elif core.queue:
                earliest = min(t.ready_time for t in core.queue)
                avail = earliest if earliest > core.now else core.now
            else:
                continue
            if avail < best_time:
                second_time = best_time
                best_time = avail
                best = core
            elif avail < second_time:
                second_time = avail
        return best, best_time, second_time
