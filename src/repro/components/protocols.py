"""Typed interfaces for the swappable simulator components.

These are :class:`typing.Protocol` classes — structural, not nominal:
an implementation only has to *look* right, never to inherit.  The
registry (:mod:`repro.components.registry`) maps string names from the
configuration onto factories producing these shapes; the consuming
modules (``sim.cache``, ``sim.memory``, ``sim.engine``,
``accounting.accountant``) are written against the protocol alone.

The factory convention: every registered object is a callable taking
the relevant config section and returning the component instance —
``ReplacementPolicy`` factories take a
:class:`~repro.config.CacheConfig`, ``PagePolicy`` factories a
:class:`~repro.config.DramConfig`, ``SpinDetector`` factories an
:class:`~repro.config.AccountingConfig`, and ``Scheduler`` factories a
:class:`~repro.config.SchedConfig`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    from repro.sim.engine import _CoreRuntime


@runtime_checkable
class Snapshotable(Protocol):
    """Anything whose mutable run state externalizes to plain data.

    The ML-framework idiom: ``state_dict()`` returns a JSON-serializable
    tree (dicts/lists/scalars only — no object references, no tuples
    that must survive a round trip, no generators) capturing *all*
    mutable state the object accumulates during a run, and
    ``load_state_dict`` restores an identically-configured fresh
    instance to exactly that state.  The contract the checkpoint layer
    relies on:

    * **round trip** — ``b.load_state_dict(a.state_dict())`` on a fresh
      ``b`` built from the same configuration makes ``b`` behaviourally
      indistinguishable from ``a``, and ``b.state_dict()`` re-serializes
      byte-identically (stable key and element order);
    * **JSON stability** — the tree survives
      ``json.loads(json.dumps(state))`` unchanged (so no int dict keys,
      no sets, no tuples whose tuple-ness matters);
    * **purity** — ``state_dict()`` never mutates the object.

    Implemented across all six stateful layers (engine, chip/caches,
    accountant, spin detectors, sync primitives, OS-model threads);
    stateless components (LRU/FIFO replacement, page policies, the
    earliest-core scheduler) simply don't implement it and are skipped.
    """

    def state_dict(self) -> dict[str, Any]:
        """Serialize all mutable state to a JSON-safe tree."""
        ...

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` on a fresh,
        identically-configured instance."""
        ...


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Victim selection for one set-associative cache instance.

    ``promote_on_hit`` is read once at cache construction and inlined
    into the lookup hot path, so a policy cannot change it per access.
    ``select_victim`` is only called on a *full* set and must return a
    line address that is currently in ``cache_set``.
    """

    #: whether a hit moves the line to the protected (MRU) end
    promote_on_hit: bool

    def select_victim(self, cache_set: OrderedDict[int, bool]) -> int:
        """Pick the victim line address from a full set (ordered from
        eviction candidate at the front to most recently inserted/used
        at the back)."""
        ...

    def reset(self) -> None:
        """Return to the post-construction state (re-seed any RNG); the
        owning cache calls this from :meth:`SetAssocCache.reset` so
        pooled runs stay bit-identical to fresh ones."""
        ...


@runtime_checkable
class SpinDetector(Protocol):
    """Per-core hardware spin detection (Section 4.3 of the paper).

    A detector receives *both* event streams — retired loads (Tian
    et al.) and spin-loop backward branches (Li et al.) — and is free
    to ignore the one it does not use.  ``spin_cycles`` accumulates the
    detected spin time; ``flush`` models the context-switch clear of
    the physical per-core table.
    """

    #: cumulative detected spin cycles on this core
    spin_cycles: int

    def on_load(
        self,
        pc: int,
        addr: int,
        value: int,
        writer_core: int,
        now: int,
        self_core: int,
    ) -> None:
        """Observe one retired load (value is the coherence version of
        the word; ``writer_core`` is its last writer, -1 if unknown)."""
        ...

    def on_backward_branch(self, pc: int, state_signature: int, now: int) -> None:
        """Observe one spin-loop backward branch with the loop body's
        observable-state signature."""
        ...

    def flush(self) -> None:
        """Context switch: drop per-core table state."""
        ...


@runtime_checkable
class PagePolicy(Protocol):
    """DRAM row-buffer management for one memory controller.

    ``classify`` maps (currently open page, requested page) to the
    access outcome (one of :data:`~repro.components.paging.PAGE_HIT`,
    ``PAGE_EMPTY``, ``PAGE_CONFLICT``) and its bank service time;
    ``page_after`` says which page the bank holds open once the access
    completes (``None`` = bank precharged/closed).
    """

    def classify(self, open_page: int | None, page_id: int) -> tuple[str, int]:
        """Return ``(outcome, bank_service_cycles)`` for an access to
        ``page_id`` while ``open_page`` is in the row buffer."""
        ...

    def page_after(self, page_id: int) -> int | None:
        """The page left open in the bank after servicing ``page_id``."""
        ...


@runtime_checkable
class Scheduler(Protocol):
    """The engine's core-pick policy.

    Called once per engine step to choose which core acts next.  The
    conservative discrete-event invariant — shared state is only
    touched at a step's start time, steps execute in global start-time
    order — holds only for earliest-first selection, so alternative
    schedulers must preserve it (e.g. deterministic tie-breaks on top
    of the same earliest-availability rule).
    """

    def pick(
        self, cores: Sequence["_CoreRuntime"]
    ) -> tuple["_CoreRuntime | None", float, float]:
        """Return ``(core, avail_time, horizon)``: the core to step
        (``None`` when every core is idle with an empty queue — the
        deadlock signal), the time at which it can act, and the
        earliest instant any *other* core could act (the engine's
        fast-forward horizon)."""
        ...
