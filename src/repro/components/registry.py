"""String-keyed component registry.

Every swappable mechanism of the simulator — cache replacement, spin
detection, DRAM page policy, the engine's core-pick scheduler — is a
*component*: an object registered under a ``(kind, name)`` pair and
resolved by name at construction time.  Configuration files and CLI
flags therefore carry plain strings, while the code that consumes them
gets a typed factory (see :mod:`repro.components.protocols`) and a
*precise, early* failure mode: an unknown name raises
:class:`~repro.errors.ConfigError` naming the bad field and listing
every registered choice, instead of a silent fall-through or a late
``KeyError`` deep inside the engine.

Third-party code (tests, notebooks, future backends) can add a new
policy without touching ``repro.sim``::

    from repro.components import register

    @register("replacement", "mru")
    class MruPolicy:
        promote_on_hit = True
        def __init__(self, config): ...
        def select_victim(self, cache_set): return next(reversed(cache_set))
        def reset(self): ...

    CacheConfig(size_bytes=..., assoc=..., replacement="mru")  # now valid
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")

#: kind -> {name -> component factory (class or callable)}
_REGISTRY: dict[str, dict[str, Any]] = {}


def register(kind: str, name: str) -> Callable[[_T], _T]:
    """Class/function decorator registering a component factory.

    Re-registering the *same* object under the same ``(kind, name)`` is
    a no-op (harmless under module reloads); registering a *different*
    object under a taken name raises :class:`ConfigError` — shadowing a
    built-in policy silently would make configs mean different things
    in different processes.
    """

    def decorator(obj: _T) -> _T:
        bucket = _REGISTRY.setdefault(kind, {})
        current = bucket.get(name)
        if current is not None and current is not obj:
            raise ConfigError(
                f"component {kind}:{name!r} is already registered "
                f"(to {current!r}); unregister it first"
            )
        bucket[name] = obj
        return obj

    return decorator


def unregister(kind: str, name: str) -> None:
    """Remove one registration (primarily for test cleanup)."""
    bucket = _REGISTRY.get(kind)
    if bucket is None or name not in bucket:
        raise ConfigError(f"component {kind}:{name!r} is not registered")
    del bucket[name]


def resolve(kind: str, name: str) -> Any:
    """Look up a registered factory; unknown names fail loudly.

    The raised :class:`ConfigError` carries ``field`` (the kind) and
    ``choices`` (every registered name) so config loaders can point the
    user at the exact line and the valid spellings.
    """
    bucket = _REGISTRY.get(kind)
    if bucket is None:
        raise ConfigError(
            f"unknown component kind {kind!r}; "
            f"registered kinds: {', '.join(kinds()) or '(none)'}",
            field=kind,
        )
    factory = bucket.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown {kind} {name!r}; registered {kind} components: "
            f"{', '.join(sorted(bucket))}",
            field=kind,
            choices=available(kind),
        )
    return factory


def available(kind: str) -> tuple[str, ...]:
    """Sorted names registered under ``kind`` (empty for unknown kinds)."""
    return tuple(sorted(_REGISTRY.get(kind, ())))


def kinds() -> tuple[str, ...]:
    """Sorted component kinds with at least one registration."""
    return tuple(sorted(_REGISTRY))


def validate_choice(kind: str, name: str, field: str) -> None:
    """Config-side validation helper: raise a :class:`ConfigError`
    naming the offending *config field* (not just the kind) when
    ``name`` is not a registered ``kind`` component."""
    if name not in _REGISTRY.get(kind, ()):
        raise ConfigError(
            f"{field}: unknown {kind} {name!r}; registered choices: "
            f"{', '.join(available(kind)) or '(none)'}",
            field=field,
            choices=available(kind),
        )
