"""Engine backends registered as swappable components.

The ``engine`` kind selects which simulation engine a run uses:

* ``reference`` — :class:`~repro.sim.engine.Simulation`, the per-op
  conservative loop every other backend is validated against (the
  default);
* ``vectorized`` — :class:`~repro.sim.engine_vec.VectorizedSimulation`,
  flat-array cache/ATD runtime state plus spin event-horizon batching;
  requires numpy (the ``vectorized`` extra) and produces exactly the
  reference results.

Factories are lazy functions, not the engine classes themselves: this
module is imported by ``repro.components`` for its registration side
effect, which happens while ``repro.config`` (and therefore
``repro.sim.engine``, whose import triggers it) may still be mid-import
— a module-level engine import here would be circular.  The cost is
deferred to the first ``resolve("engine", ...)`` call.
"""

from __future__ import annotations

from repro.components.registry import register


@register("engine", "reference")
def reference_engine(*args, **kwargs):
    """Per-op conservative engine (the validation baseline)."""
    from repro.sim.engine import Simulation

    return Simulation(*args, **kwargs)


@register("engine", "vectorized")
def vectorized_engine(*args, **kwargs):
    """Flat-state engine with event-horizon fast-forward (needs numpy)."""
    from repro.sim.engine_vec import VectorizedSimulation

    return VectorizedSimulation(*args, **kwargs)
