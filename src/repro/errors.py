"""Exception types for the repro package.

The taxonomy (documented in ``docs/architecture.md``):

* :class:`ReproError` — root of everything this package raises on purpose;
* :class:`SimulationError` — inconsistent simulator state, optionally
  carrying an :class:`~repro.robustness.snapshot.EngineSnapshot` of the
  engine at the moment of failure (``.snapshot``) for post-mortem;

  * :class:`DeadlockError` — all unfinished threads are blocked;
  * :class:`LivelockError` — the watchdog saw no forward progress;

* :class:`ConfigError` — invalid machine or workload configuration;

  * :class:`TraceParseError` — malformed trace file, carrying the
    source name and line number;

* :class:`ExperimentError` — a (benchmark, thread-count) experiment
  cell failed; wraps the underlying error as ``__cause__``;

* :class:`CheckpointError` — a checkpoint file cannot be loaded
  (schema mismatch, config-hash mismatch, or corrupt payload).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Inconsistent simulator state (e.g. releasing an unheld lock).

    ``snapshot`` (when not ``None``) is an
    :class:`~repro.robustness.snapshot.EngineSnapshot` captured at the
    moment the error was raised.
    """

    #: engine-state snapshot attached at the raise site (may stay None)
    snapshot = None


class DeadlockError(SimulationError):
    """All unfinished threads are blocked and nothing can wake them."""


class LivelockError(SimulationError):
    """The watchdog observed no forward progress (e.g. threads spinning
    forever on a lock whose holder will never release it)."""


class ConfigError(ReproError, ValueError):
    """Invalid machine or workload configuration.

    Also a :class:`ValueError` so callers validating config values with
    the stdlib idiom keep working.  ``field`` (when set) names the
    offending config field or component kind; ``choices`` lists the
    registered/valid values so tooling can suggest the right spelling.
    """

    def __init__(
        self,
        message: str,
        *,
        field: str | None = None,
        choices: tuple[str, ...] = (),
    ) -> None:
        self.field = field
        self.choices = tuple(choices)
        super().__init__(message)


class TraceParseError(ConfigError):
    """Malformed line in a trace file.

    Carries the trace's source name (file path or logical name) and the
    1-based line number so batch tooling can point at the exact input.
    """

    def __init__(
        self, message: str, source: str = "trace", line_no: int | None = None
    ) -> None:
        self.source = source
        self.line_no = line_no
        where = source if line_no is None else f"{source}:{line_no}"
        super().__init__(f"{where}: {message}")


class CheckpointError(ReproError):
    """A checkpoint cannot be loaded or applied.

    Raised when the on-disk schema version is not understood, when the
    checkpoint's config hash does not match the experiment it is being
    loaded into, or when the payload is corrupt/inconsistent with the
    rebuilt program (e.g. a thread body exhausts before the recorded
    operation cursor is reached).
    """


class ExperimentError(ReproError):
    """One (benchmark, thread-count) experiment cell failed.

    Raised by the batch runner in ``--on-error abort`` mode; the
    underlying failure is chained as ``__cause__``.
    """

    def __init__(
        self, benchmark: str, n_threads: int, message: str | None = None
    ) -> None:
        self.benchmark = benchmark
        self.n_threads = n_threads
        detail = f": {message}" if message else ""
        super().__init__(f"experiment {benchmark}:{n_threads} failed{detail}")
