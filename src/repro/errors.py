"""Exception types for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Inconsistent simulator state (e.g. releasing an unheld lock)."""


class DeadlockError(SimulationError):
    """All unfinished threads are blocked and nothing can wake them."""


class ConfigError(ReproError):
    """Invalid machine or workload configuration."""
