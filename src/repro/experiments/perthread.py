"""Per-thread validation of the accounting (beyond the paper's).

The paper validates only the aggregate: estimated speedup Ŝ against
measured S (Equation 6). But the accounting actually produces a
*per-thread* estimate first — Equation 2's

    T̂_i = Tp − Σⱼ O(i,j) + P_i

is thread i's estimated contribution to single-threaded time, i.e. the
time thread i's work would take running alone. This module validates
those per-thread estimates directly: it extracts each thread's op
stream from the multi-threaded program, runs it *in isolation* on a
single core of the same machine (locks uncontended, barriers
single-party), and compares.

This is a stronger check than the paper's: aggregate errors can hide
compensating per-thread errors, and this harness quantifies exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting.accountant import CycleAccountant
from repro.config import MachineConfig
from repro.sim.engine import Simulation
from repro.workloads.program import Program
from repro.workloads.spec import BenchmarkSpec, build_program


@dataclass(frozen=True)
class ThreadValidation:
    """One thread's estimated vs measured isolated time."""

    thread_id: int
    estimated_cycles: float
    isolated_cycles: int
    tp_cycles: int

    @property
    def error(self) -> float:
        """Signed error normalized by Tp (comparable to Equation 6's
        per-run normalization by N·Tp, applied per thread)."""
        if self.tp_cycles == 0:
            return 0.0
        return (self.estimated_cycles - self.isolated_cycles) / self.tp_cycles


@dataclass(frozen=True)
class PerThreadValidation:
    threads: list[ThreadValidation]

    @property
    def mean_abs_error(self) -> float:
        if not self.threads:
            return 0.0
        return sum(abs(t.error) for t in self.threads) / len(self.threads)

    @property
    def aggregate_error(self) -> float:
        """The paper-style aggregate: (Σ T̂ − Σ T_iso) / (N · Tp)."""
        if not self.threads:
            return 0.0
        est = sum(t.estimated_cycles for t in self.threads)
        iso = sum(t.isolated_cycles for t in self.threads)
        n = len(self.threads)
        tp = self.threads[0].tp_cycles
        if n == 0 or tp == 0:
            return 0.0
        return (est - iso) / (n * tp)


def validate_per_thread(
    spec: BenchmarkSpec,
    n_threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
) -> PerThreadValidation:
    """Run the accounted MT experiment plus one isolated run per thread."""
    if machine is None:
        machine = MachineConfig(n_cores=n_threads)

    accountant = CycleAccountant(machine)
    mt_program = build_program(spec, n_threads, scale=scale)
    mt_result = Simulation(machine, mt_program, accountant).run()
    report = accountant.report(mt_result)

    single = machine.with_cores(1)
    rows = []
    for tid in range(n_threads):
        # Rebuild the program to get a fresh generator for thread tid,
        # and run just that thread's stream alone.  Its barriers become
        # single-party no-ops; its locks are uncontended.
        rebuilt = build_program(spec, n_threads, scale=scale)
        isolated_program = Program(
            f"{spec.full_name}/t{tid}",
            [rebuilt.thread_bodies[tid]],
            warmup=[rebuilt.warmup[tid]] if rebuilt.warmup else None,
        )
        isolated = Simulation(single, isolated_program).run()
        comp = report.threads[tid]
        rows.append(
            ThreadValidation(
                thread_id=tid,
                estimated_cycles=(
                    report.tp_cycles + comp.single_thread_estimate_share
                ),
                isolated_cycles=isolated.total_cycles,
                tp_cycles=report.tp_cycles,
            )
        )
    return PerThreadValidation(threads=rows)


def render_per_thread(validation: PerThreadValidation) -> str:
    lines = [
        f"{'thread':>7s}{'estimated':>12s}{'isolated':>11s}{'error':>8s}"
    ]
    for t in validation.threads:
        lines.append(
            f"{t.thread_id:>7d}{t.estimated_cycles:>12.0f}"
            f"{t.isolated_cycles:>11d}{t.error * 100:>7.1f}%"
        )
    lines.append(
        f"mean per-thread |error| = {validation.mean_abs_error * 100:.1f}%  "
        f"(aggregate: {validation.aggregate_error * 100:+.1f}%)"
    )
    return "\n".join(lines)
