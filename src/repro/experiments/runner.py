"""Experiment runner: reference + accounted runs -> speedup stacks.

The paper's measurement protocol (Sections 2 and 6):

1. run the program single-threaded to measure ``Ts`` (actual-speedup
   reference; "results are gathered from the parallel fraction of the
   benchmarks only" — our programs *are* the parallel fraction);
2. run it with ``N`` threads on ``N`` cores with the cycle-accounting
   hardware enabled, measuring ``Tp`` and all cycle components;
3. build the speedup stack from the accounted run, and validate the
   estimated speedup against ``Ts/Tp``.

The runner also measures the dynamic-instruction-count increase of the
multi-threaded run over the single-threaded run minus spin instructions,
the paper's proxy for parallelization overhead (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting.accountant import CycleAccountant
from repro.accounting.report import AccountingReport
from repro.config import MachineConfig
from repro.core.stack import SpeedupStack, build_stack
from repro.sim.engine import SimResult, Simulation
from repro.workloads.program import Program


@dataclass
class ExperimentResult:
    """Everything produced by one (benchmark, N) experiment."""

    name: str
    n_threads: int
    machine: MachineConfig
    stack: SpeedupStack
    report: AccountingReport
    mt_result: SimResult
    st_result: SimResult | None

    @property
    def actual_speedup(self) -> float | None:
        return self.stack.actual_speedup

    @property
    def estimated_speedup(self) -> float:
        return self.stack.estimated_speedup

    @property
    def parallelization_overhead(self) -> float | None:
        """Fractional extra instructions of the MT run over the ST run,
        after subtracting spin-loop instructions (Section 6)."""
        if self.st_result is None:
            return None
        st_instrs = self.st_result.total_instrs
        if st_instrs == 0:
            return None
        mt_real = self.mt_result.total_instrs - self.mt_result.total_spin_instrs
        return (mt_real - st_instrs) / st_instrs


def run_accounted(
    machine: MachineConfig, program: Program
) -> tuple[SimResult, AccountingReport]:
    """One multi-threaded run with the accounting hardware attached."""
    accountant = CycleAccountant(machine)
    result = Simulation(machine, program, accountant).run()
    return result, accountant.report(result)


def run_reference(machine: MachineConfig, program: Program) -> SimResult:
    """Single-threaded reference run of a one-thread program on one core
    of the same machine (no accounting hardware needed)."""
    if program.n_threads != 1:
        raise ValueError(
            "reference run expects the single-threaded program variant"
        )
    single_core = machine.with_cores(1)
    return Simulation(single_core, program).run()


def run_experiment(
    name: str,
    machine: MachineConfig,
    mt_program: Program,
    st_program: Program | None = None,
) -> ExperimentResult:
    """Full protocol: (optional) reference run, accounted run, stack."""
    st_result = None
    ts = None
    if st_program is not None:
        st_result = run_reference(machine, st_program)
        ts = st_result.total_cycles
    mt_result, report = run_accounted(machine, mt_program)
    stack = build_stack(name, report, ts_cycles=ts)
    return ExperimentResult(
        name=name,
        n_threads=mt_program.n_threads,
        machine=machine,
        stack=stack,
        report=report,
        mt_result=mt_result,
        st_result=st_result,
    )
