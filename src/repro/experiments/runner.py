"""Experiment runner: reference + accounted runs -> speedup stacks.

The paper's measurement protocol (Sections 2 and 6):

1. run the program single-threaded to measure ``Ts`` (actual-speedup
   reference; "results are gathered from the parallel fraction of the
   benchmarks only" — our programs *are* the parallel fraction);
2. run it with ``N`` threads on ``N`` cores with the cycle-accounting
   hardware enabled, measuring ``Tp`` and all cycle components;
3. build the speedup stack from the accounted run, and validate the
   estimated speedup against ``Ts/Tp``.

The runner also measures the dynamic-instruction-count increase of the
multi-threaded run over the single-threaded run minus spin instructions,
the paper's proxy for parallelization overhead (Section 6).

On top of the single-cell protocol sits the *hardened batch runner*
(:class:`BatchRunner`): per-cell isolation, retry-with-backoff,
checkpoint/resume through a :class:`~repro.robustness.journal.SweepJournal`,
watchdog-truncated partial results, and a failure-report aggregator —
one bad (benchmark, N) cell never kills a sweep.  See
``docs/robustness.md``.

Every run path here drives its engine through the steppable
:class:`~repro.session.kernel.SimulationKernel` (the batch lifecycle is
its no-pause degenerate case), so the batch protocol and interactive
:class:`~repro.session.Session`\\ s share one simulation host.
"""

from __future__ import annotations

import logging
import random
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.accounting.report import AccountingReport
from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    cell_descriptor,
    fault_descriptor,
    resume_simulation,
)
from repro.config import (
    ON_ERROR_MODES,
    ExperimentConfig,
    MachineConfig,
    RunConfig,
)
from repro.core.stack import SpeedupStack, build_stack
from repro.errors import CheckpointError, ExperimentError, ReproError
from repro.observability.events import (
    CellFinished,
    CellRetry,
    CellStarted,
    FaultArmed,
    SweepFinished,
    SweepStarted,
)
from repro.observability.metrics import harvest_cell_metrics
from repro.observability.spans import maybe_span
from repro.robustness.drain import DrainableHook, DrainRequested
from repro.robustness.faults import CellFault, make_fault
from repro.robustness.journal import SweepJournal
from repro.session.kernel import SimulationKernel
from repro.sim.engine import SimResult, Simulation
from repro.workloads.program import Program
from repro.workloads.spec import BenchmarkSpec, build_program

logger = logging.getLogger(__name__)


@dataclass
class ExperimentResult:
    """Everything produced by one (benchmark, N) experiment."""

    name: str
    n_threads: int
    machine: MachineConfig
    stack: SpeedupStack
    report: AccountingReport
    mt_result: SimResult
    st_result: SimResult | None

    @property
    def actual_speedup(self) -> float | None:
        return self.stack.actual_speedup

    @property
    def estimated_speedup(self) -> float:
        return self.stack.estimated_speedup

    @property
    def parallelization_overhead(self) -> float | None:
        """Fractional extra instructions of the MT run over the ST run,
        after subtracting spin-loop instructions (Section 6)."""
        if self.st_result is None:
            return None
        st_instrs = self.st_result.total_instrs
        if st_instrs == 0:
            return None
        mt_real = self.mt_result.total_instrs - self.mt_result.total_spin_instrs
        return (mt_real - st_instrs) / st_instrs


def run_accounted(
    machine: MachineConfig,
    program: Program,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    on_timeout: str = "raise",
    bus=None,
    checkpoint=None,
    engine: str = "reference",
) -> tuple[SimResult, AccountingReport]:
    """One multi-threaded run with the accounting hardware attached.

    With ``on_timeout="truncate"`` a watchdog-cut run still yields a
    (flagged) report — the partial-run speedup stack.  ``bus`` attaches
    an observability :class:`~repro.observability.events.EventBus` to
    both the engine and the accountant.  ``checkpoint`` arms a
    :class:`~repro.checkpoint.policy.CheckpointHook` on the engine.
    ``engine`` picks the backend (results are backend-invariant).

    Hosted on :class:`~repro.session.kernel.SimulationKernel` — the
    batch path is the kernel's degenerate no-pause lifecycle, so this
    is byte-identical to driving the engine inline.
    """
    kernel = SimulationKernel(
        machine, program,
        accounted=True,
        engine=engine,
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout=on_timeout,
        bus=bus,
        checkpoint=checkpoint,
    )
    result = kernel.finish()
    return result, kernel.report()


def accounted_snapshot(
    machine: MachineConfig,
    program: Program,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    on_timeout: str = "raise",
    engine: str = "reference",
) -> dict:
    """One accounted run, returning the accountant's cumulative counter
    snapshot (:meth:`CycleAccountant.snapshot`).

    The public-API route to the raw per-core counters behind the stack
    components — ``llc_accesses``, interference stalls, spin and yield
    cycles — without going through report post-processing.  Region code
    differences two of these; callers here get the end-of-run totals.
    """
    kernel = SimulationKernel(
        machine, program,
        accounted=True,
        engine=engine,
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout=on_timeout,
    )
    kernel.finish()
    return kernel.accountant.snapshot()


def run_reference(
    machine: MachineConfig,
    program: Program,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    on_timeout: str = "raise",
    engine: str = "reference",
) -> SimResult:
    """Single-threaded reference run of a one-thread program on one core
    of the same machine (no accounting hardware needed)."""
    if program.n_threads != 1:
        raise ValueError(
            "reference run expects the single-threaded program variant"
        )
    kernel = SimulationKernel(
        machine.with_cores(1), program,
        accounted=False,
        engine=engine,
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout=on_timeout,
    )
    return kernel.finish()


def run_experiment(
    name: str,
    machine: MachineConfig,
    mt_program: Program,
    st_program: Program | None = None,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    on_timeout: str = "raise",
    bus=None,
    checkpoint=None,
    spans=None,
    engine: str = "reference",
) -> ExperimentResult:
    """Full protocol: (optional) reference run, accounted run, stack.

    ``bus`` instruments the accounted multi-threaded run only — the
    reference run is a measurement fixture, not the subject.  The same
    holds for ``checkpoint``: only the accounted run is saved (the
    reference run is cheap to recompute and fully deterministic).
    ``spans`` (a :class:`~repro.observability.spans.SpanRecorder`)
    times the harness phases — ST reference, engine advance, harvest.
    ``engine`` selects the backend for both runs; every backend
    produces the same cycles and stacks, so the choice only changes
    wall-clock time.
    """
    st_result = None
    ts = None
    if st_program is not None:
        with maybe_span(spans, "st.reference", cat="cell"):
            st_result = run_reference(
                machine, st_program,
                max_cycles=max_cycles,
                livelock_window=livelock_window,
                on_timeout=on_timeout,
                engine=engine,
            )
        ts = None if st_result.truncated else st_result.total_cycles
    with maybe_span(spans, "engine.advance", cat="cell"):
        mt_result, report = run_accounted(
            machine, mt_program,
            max_cycles=max_cycles,
            livelock_window=livelock_window,
            on_timeout=on_timeout,
            bus=bus,
            checkpoint=checkpoint,
            engine=engine,
        )
    with maybe_span(spans, "harvest", cat="cell"):
        stack = build_stack(name, report, ts_cycles=ts)
    return ExperimentResult(
        name=name,
        n_threads=mt_program.n_threads,
        machine=machine,
        stack=stack,
        report=report,
        mt_result=mt_result,
        st_result=st_result,
    )


# ----------------------------------------------------------------------
# hardened batch runner
# ----------------------------------------------------------------------

# ON_ERROR_MODES now lives in repro.config (RunConfig validates against
# it) and is re-exported above for existing importers.

CELL_OK = "ok"
CELL_FAILED = "failed"
#: cell skipped because the journal says it already succeeded
CELL_RESUMED = "resumed"


@dataclass(frozen=True)
class RunPolicy:
    """How the batch runner reacts to failing cells.

    ``on_error``:

    * ``"abort"`` — re-raise as :class:`~repro.errors.ExperimentError`
      (old behaviour: first failure kills the sweep);
    * ``"skip"``  — record the failure and move on (default);
    * ``"retry"`` — re-run the cell up to ``max_retries`` extra times
      with exponential backoff, then record the failure and move on.

    Retry backoff grows geometrically from ``backoff_s`` by
    ``backoff_factor`` per attempt, capped at ``backoff_max_s`` (the
    uncapped growth of earlier versions was a footgun: ten retries at
    factor 2 sleep for 17 minutes).  With ``backoff_jitter`` (default)
    each delay is drawn uniformly from ``[0, capped]`` — *full jitter*,
    which decorrelates many workers retrying concurrently (the
    thundering-herd fix) — seeded from the cell key and attempt number
    so every delay is still deterministic and reproducible.

    ``max_cycles`` / ``livelock_window`` arm the engine watchdog for
    every run of the sweep; watchdog hits *truncate* (flagged partial
    results) rather than fail.

    ``checkpoint_dir`` arms per-cell engine checkpoints: each cell's
    multi-threaded run saves its state to
    ``<dir>/<benchmark>_n<threads>.ckpt`` every ``checkpoint_every``
    simulated cycles (plus on watchdog fires and engine faults), and a
    cell that finds a matching checkpoint on disk — same config hash —
    resumes from it instead of starting over.  Resumed cells produce
    byte-identical results to uninterrupted ones, so crash recovery
    never changes a sweep's numbers.
    """

    on_error: str = "skip"
    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    #: hard ceiling on any single retry delay; None = uncapped
    backoff_max_s: float | None = 60.0
    #: full jitter: draw each delay uniformly from [0, capped delay]
    backoff_jitter: bool = True
    max_cycles: int | None = None
    livelock_window: int | None = None
    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None
    #: engine backend for every run of the sweep (backend-invariant
    #: results; see repro.components.engines)
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}: {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s is not None and self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before ``attempt`` (the second attempt is
        ``attempt=2``) of the cell identified by ``key``.

        Deterministic: the jitter RNG is seeded from ``(key, attempt)``,
        so a retried cell backs off identically in a serial sweep, a
        ``--jobs N`` worker, and a queue worker — which keeps the
        differential suites and the observability event streams stable
        while still decorrelating *different* cells retrying at once.
        """
        if attempt <= 1 or self.backoff_s <= 0:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (attempt - 2)
        if self.backoff_max_s is not None:
            delay = min(delay, self.backoff_max_s)
        if self.backoff_jitter:
            seed = zlib.crc32(f"{key}:{attempt}".encode())
            delay = random.Random(seed).uniform(0.0, delay)
        return delay

    @classmethod
    def from_run(cls, run: RunConfig) -> "RunPolicy":
        """Project the serializable :class:`~repro.config.RunConfig`
        onto the runner's internal policy (drops ``jobs``, which the
        execution layer consumes)."""
        return cls(
            on_error=run.on_error,
            max_retries=run.max_retries,
            backoff_s=run.backoff_s,
            backoff_factor=run.backoff_factor,
            backoff_max_s=run.backoff_max_s,
            backoff_jitter=run.backoff_jitter,
            max_cycles=run.max_cycles,
            livelock_window=run.livelock_window,
            checkpoint_every=run.checkpoint_every,
            checkpoint_dir=run.checkpoint_dir,
            engine=run.engine,
        )


@dataclass
class CellOutcome:
    """What happened to one (benchmark, N) cell of a sweep."""

    name: str
    n_threads: int
    status: str
    attempts: int = 0
    result: ExperimentResult | None = None
    error: str | None = None
    error_type: str | None = None
    #: engine post-mortem (plain dict) when the failure carried one
    snapshot: dict | None = None
    #: harvested ``sim.*`` metrics (only when collection is enabled)
    metrics: dict | None = None

    @property
    def key(self) -> str:
        return f"{self.name}:{self.n_threads}"


@dataclass
class SweepReport:
    """Aggregated outcome of a whole sweep."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    #: True when the sweep stopped early on a drain signal: every
    #: recorded outcome is final (journaled), the rest never ran
    interrupted: bool = False

    @property
    def completed(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == CELL_OK]

    @property
    def resumed(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == CELL_RESUMED]

    @property
    def failures(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == CELL_FAILED]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render_failure_report(self) -> str:
        """Human-readable failure aggregate (empty string when clean)."""
        if not self.failures:
            return ""
        lines = [f"{len(self.failures)} of {len(self.outcomes)} cells failed:"]
        for outcome in self.failures:
            lines.append(
                f"  {outcome.key:<28s} {outcome.error_type or 'Error'}"
                f" after {outcome.attempts} attempt(s): {outcome.error}"
            )
            snapshot = outcome.snapshot or {}
            threads = snapshot.get("threads") or ()
            if threads:
                states: dict[str, int] = {}
                for t in threads:
                    states[t["state"]] = states.get(t["state"], 0) + 1
                state_txt = ", ".join(
                    f"{k}={v}" for k, v in sorted(states.items())
                )
                lines.append(
                    f"    engine state at cycle {snapshot.get('cycle')}: "
                    f"threads {state_txt}"
                )
            for lock in snapshot.get("locks") or ():
                if lock["holder_tid"] is not None or lock["waiter_tids"]:
                    lines.append(
                        f"    lock {lock['lock_id']}: held by "
                        f"T{lock['holder_tid']}, waiters "
                        f"{list(lock['waiter_tids'])}"
                    )
            for barrier in snapshot.get("barriers") or ():
                if barrier["waiter_tids"] or barrier["arrived"]:
                    lines.append(
                        f"    barrier {barrier['barrier_id']}: "
                        f"{barrier['arrived']}/{barrier['n_parties']} "
                        f"arrived, waiters {list(barrier['waiter_tids'])}"
                    )
        return "\n".join(lines)


class BatchRunner:
    """Run many (benchmark, N) cells with isolation, retries and resume.

    ``fault_plan`` maps cell keys (``"name:N"``) to
    :data:`~repro.robustness.faults.CellFault` callables applied to the
    multi-threaded program/machine of that cell before it runs — the
    hook the fault injector (and the tests) use to provoke failures in
    exactly one cell.  A plan value may also be a bare fault *kind*
    string from :data:`~repro.robustness.faults.FAULT_KINDS`, resolved
    via :func:`~repro.robustness.faults.make_fault` when the cell runs
    (strings pickle; closures do not — see ``repro.parallel``).

    The single-threaded reference run of a cell depends only on the
    benchmark spec, scale and (post-fault) machine, so it is memoized
    across the sweep: ``bench:2`` and ``bench:16`` share one ``Ts``
    measurement exactly as the paper's protocol intends.
    """

    def __init__(
        self,
        policy: RunPolicy | None = None,
        scale: float | None = None,
        journal: SweepJournal | None = None,
        fault_plan: dict[str, CellFault | str] | None = None,
        machine_factory=None,
        sleep=time.sleep,
        bus=None,
        metrics=None,
        experiment: ExperimentConfig | None = None,
        drain=None,
        spans=None,
    ) -> None:
        """``experiment`` supplies defaults for everything it covers —
        the policy (from ``experiment.run``), the scale (from
        ``experiment.workload``) and the machine factory (from
        ``experiment.machine``, re-cored per cell); an explicit
        ``policy``/``scale``/``machine_factory`` argument still wins.

        ``drain`` (a :class:`~repro.robustness.drain.DrainController`)
        makes the runner signal-aware: a drain stops the sweep between
        cells, and mid-cell the in-flight run checkpoints (when
        checkpointing is armed) and unwinds via
        :class:`~repro.robustness.drain.DrainRequested` — nothing is
        recorded for the interrupted cell, so a resumed sweep re-runs
        it from its checkpoint.
        """
        if experiment is not None:
            policy = policy or RunPolicy.from_run(experiment.run)
            if scale is None:
                scale = experiment.workload.scale
            machine_factory = machine_factory or experiment.machine.with_cores
        self.experiment = experiment
        self.policy = policy or RunPolicy()
        self.scale = 1.0 if scale is None else scale
        self.journal = journal or SweepJournal(None)
        self.fault_plan = fault_plan or {}
        #: optional observability EventBus for sweep/cell lifecycle
        #: events (also threaded into each cell's engine + accountant)
        self.bus = bus
        #: optional MetricsRegistry; when set, each ok cell's harvested
        #: ``sim.*`` metrics are absorbed here and journaled, and
        #: ``runtime.*`` wall-time/retry metrics accumulate alongside
        self.metrics = metrics
        #: optional DrainController: polled between cells and (via the
        #: checkpoint hook) once per engine scheduling step mid-cell
        self.drain = drain
        #: optional SpanRecorder timing the harness's own phases (trace
        #: decode, ST reference, engine advance, harvest, journal
        #: write).  Spans are wall-clock so they are never journaled;
        #: warm workers re-point this attribute per chunk — it is
        #: mutable state *outside* the WorkerCaches key on purpose.
        self.spans = spans
        self._machine_factory = machine_factory or (
            lambda n_threads: MachineConfig(n_cores=n_threads)
        )
        self._sleep = sleep
        self._st_cache: dict[tuple, SimResult] = {}

    # ------------------------------------------------------------------
    # one cell
    # ------------------------------------------------------------------

    def run_cell(self, spec: BenchmarkSpec, n_threads: int) -> CellOutcome:
        """One isolated cell: build programs, run, classify the outcome."""
        spans = self.spans
        if spans is None:
            return self._run_cell_inner(spec, n_threads)
        with spans.span(f"{spec.full_name}:{n_threads}", cat="cell"):
            return self._run_cell_inner(spec, n_threads)

    def _run_cell_inner(
        self, spec: BenchmarkSpec, n_threads: int
    ) -> CellOutcome:
        policy = self.policy
        bus = self.bus
        metrics = self.metrics
        name = spec.full_name
        key = f"{name}:{n_threads}"
        fault = self.fault_plan.get(key)
        fault_seed = 0
        if isinstance(fault, tuple):
            # (kind, seed) — how the parallel layer ships seeded faults
            fault, fault_seed = fault
        if isinstance(fault, str):
            fault_kind = fault
            #: checkpoint-descriptor identity of the fault (replayable)
            fault_info = (fault, fault_seed)
            fault = make_fault(fault, fault_seed)
        else:
            fault_kind = type(fault).__name__ if fault is not None else None
            # a bare callable cannot be rebuilt on resume: record it as
            # opaque so its checkpoints refuse cross-process resume
            fault_info = fault_kind
        if fault is not None and bus is not None:
            bus.emit(FaultArmed(key, fault_kind or "fault"))
        attempts = 0
        last_error: BaseException | None = None
        max_attempts = (
            1 + policy.max_retries if policy.on_error == "retry" else 1
        )
        t_cell = time.monotonic()
        while attempts < max_attempts:
            attempts += 1
            if attempts > 1:
                delay = policy.backoff_delay(attempts, key)
                if bus is not None:
                    bus.emit(CellRetry(
                        key, attempts, delay, str(last_error)
                    ))
                if metrics is not None:
                    metrics.counter("runtime.retries").inc()
                if delay > 0:
                    logger.info(
                        "retrying %s (attempt %d/%d) after %.2fs backoff",
                        key, attempts, max_attempts, delay,
                    )
                    self._sleep(delay)
            elif bus is not None:
                bus.emit(CellStarted(key, attempts))
            try:
                result = self._run_once(
                    spec, n_threads, fault,
                    fault_info=fault_info, attempt=attempts,
                )
            except ReproError as exc:
                last_error = exc
                logger.warning(
                    "cell %s failed (attempt %d/%d): %s",
                    key, attempts, max_attempts, exc,
                )
                continue
            if result.mt_result.truncated:
                logger.warning(
                    "cell %s truncated (%s) — partial stack",
                    key, result.mt_result.truncation_reason,
                )
            cell_metrics = None
            if metrics is not None:
                cell_metrics = harvest_cell_metrics(result)
                metrics.absorb(cell_metrics)
                metrics.counter("runtime.cells_ok").inc()
                metrics.histogram("runtime.cell_wall_s").observe(
                    time.monotonic() - t_cell
                )
            if bus is not None:
                bus.emit(CellFinished(key, CELL_OK, attempts))
            return CellOutcome(
                name=name,
                n_threads=n_threads,
                status=CELL_OK,
                attempts=attempts,
                result=result,
                metrics=cell_metrics,
            )
        assert last_error is not None
        if policy.on_error == "abort":
            raise ExperimentError(
                name, n_threads, str(last_error)
            ) from last_error
        if metrics is not None:
            metrics.counter("runtime.cells_failed").inc()
            metrics.histogram("runtime.cell_wall_s").observe(
                time.monotonic() - t_cell
            )
        if bus is not None:
            bus.emit(CellFinished(key, CELL_FAILED, attempts))
        snapshot = getattr(last_error, "snapshot", None)
        return CellOutcome(
            name=name,
            n_threads=n_threads,
            status=CELL_FAILED,
            attempts=attempts,
            error=str(last_error),
            error_type=type(last_error).__name__,
            snapshot=snapshot.to_dict() if snapshot is not None else None,
        )

    def _run_once(
        self, spec: BenchmarkSpec, n_threads: int, fault,
        fault_info=None, attempt: int = 1,
    ) -> ExperimentResult:
        spans = self.spans
        machine = self._machine_factory(n_threads)
        hook = self._cell_checkpoint(
            spec, n_threads, machine, fault_info, attempt
        )
        # The fresh program is built (and the fault applied) even when a
        # checkpoint will be resumed: the fault transform yields the
        # post-fault machine for the ST reference and keeps the
        # injector's per-application RNG sequence in step for later
        # attempts; the untouched generators cost nothing.
        with maybe_span(spans, "trace.decode", cat="cell"):
            mt_program = build_program(spec, n_threads, scale=self.scale)
            if fault is not None:
                mt_program, machine = fault(mt_program, machine)
        with maybe_span(spans, "st.reference", cat="cell"):
            st_result = self._st_reference(spec, machine)
        ts = None if st_result.truncated else st_result.total_cycles
        sim = None
        if hook is not None and hook.path is not None and hook.path.exists():
            sim = self._try_resume(hook, spec)
        with maybe_span(spans, "engine.advance", cat="cell"):
            if sim is not None:
                kernel = SimulationKernel.from_simulation(
                    sim,
                    max_cycles=self.policy.max_cycles,
                    livelock_window=self.policy.livelock_window,
                    on_timeout="truncate",
                    checkpoint=hook,
                )
            else:
                kernel = SimulationKernel(
                    machine, mt_program,
                    accounted=True,
                    engine=self.policy.engine,
                    max_cycles=self.policy.max_cycles,
                    livelock_window=self.policy.livelock_window,
                    on_timeout="truncate",
                    bus=self.bus,
                    checkpoint=hook,
                )
            mt_result = kernel.finish()
            report = kernel.report()
        if hook is not None and hook.path is not None and not mt_result.truncated:
            # clean completion: the checkpoint has nothing left to
            # resume (truncated runs keep theirs for inspect/resume
            # under raised watchdog limits)
            hook.path.unlink(missing_ok=True)
        with maybe_span(spans, "harvest", cat="cell"):
            stack = build_stack(spec.full_name, report, ts_cycles=ts)
        return ExperimentResult(
            name=spec.full_name,
            n_threads=mt_program.n_threads,
            machine=machine,
            stack=stack,
            report=report,
            mt_result=mt_result,
            st_result=st_result,
        )

    def _cell_checkpoint(
        self, spec: BenchmarkSpec, n_threads: int,
        machine: MachineConfig, fault_info, attempt: int,
    ) -> CheckpointHook | None:
        """Arm the cell's checkpoint hook (None when not checkpointing).

        The descriptor carries the *pre-fault* machine plus the fault's
        replay identity; its hash gates resume, so a checkpoint from a
        different attempt (the injector RNG advances per application) or
        a different experiment config is ignored rather than resumed.

        With a drain controller attached the (possibly absent) hook is
        wrapped in a :class:`~repro.robustness.drain.DrainableHook`, so
        the engine's once-per-step checkpoint poll doubles as the
        drain point: a signal checkpoints the in-flight cell (when a
        checkpoint target exists) and unwinds cleanly mid-run.
        """
        policy = self.policy
        if policy.checkpoint_dir is None:
            if self.drain is not None:
                return DrainableHook(None, self.drain)
            return None
        if fault_info is None:
            fault_desc = None
        elif isinstance(fault_info, tuple):
            kind, seed = fault_info
            fault_desc = fault_descriptor(kind, seed, attempt)
        else:
            fault_desc = {"opaque": fault_info, "applications": attempt}
        descriptor = cell_descriptor(
            machine, spec.full_name, n_threads, self.scale,
            fault=fault_desc,
            max_cycles=policy.max_cycles,
            livelock_window=policy.livelock_window,
        )
        path = (
            Path(policy.checkpoint_dir)
            / f"{spec.full_name}_n{n_threads}.ckpt"
        )
        hook = CheckpointHook(path, descriptor, CheckpointPolicy(
            every_cycles=policy.checkpoint_every,
            on_watchdog=True,
            on_fault=True,
        ))
        if self.drain is not None:
            return DrainableHook(hook, self.drain)
        return hook

    def _try_resume(self, hook: CheckpointHook, spec: BenchmarkSpec):
        """Resume the cell's simulation from its on-disk checkpoint, or
        None (fresh run) when the checkpoint belongs to a different
        config/attempt or cannot be rebuilt."""
        try:
            sim, header = resume_simulation(
                hook.path, spec=spec,
                expected_descriptor=hook.descriptor, bus=self.bus,
                engine=self.policy.engine,
            )
        except CheckpointError as exc:
            logger.warning(
                "ignoring checkpoint %s (running fresh): %s",
                hook.path, exc,
            )
            return None
        logger.info(
            "resuming %s from cycle %d (saved on %s)",
            hook.path, header["cycle"], header["reason"],
        )
        return sim

    def _st_reference(
        self, spec: BenchmarkSpec, machine: MachineConfig
    ) -> SimResult:
        """Memoized single-threaded reference run for one cell.

        The key covers everything the run depends on — the spec, the
        scale, the single-core view of the (post-fault) machine, and
        the watchdog limits — all frozen dataclasses or scalars.
        """
        key = (
            spec, self.scale, machine.with_cores(1),
            self.policy.max_cycles, self.policy.livelock_window,
        )
        st_result = self._st_cache.get(key)
        if st_result is None:
            st_program = build_program(spec, 1, scale=self.scale)
            st_result = run_reference(
                machine, st_program,
                max_cycles=self.policy.max_cycles,
                livelock_window=self.policy.livelock_window,
                on_timeout="truncate",
                engine=self.policy.engine,
            )
            self._st_cache[key] = st_result
        return st_result

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------

    def run_sweep(
        self,
        cells: list[tuple[BenchmarkSpec, int]],
        resume: bool = False,
    ) -> SweepReport:
        """Run every cell, journaling after each one.

        With ``resume=True``, cells the journal already records as
        ``ok`` are skipped (status ``"resumed"``); failed and unseen
        cells run normally — so a re-run after a partial sweep touches
        only what is missing.

        With a drain controller attached, a SIGINT/SIGTERM stops the
        sweep at the next cell boundary (mid-cell the engine
        checkpoints first when checkpointing is armed); the journal
        already holds every finished cell, so ``--resume`` continues
        exactly where the drain cut in.  The report comes back with
        ``interrupted=True``.
        """
        report = SweepReport()
        if self.bus is not None:
            self.bus.emit(SweepStarted(len(cells), 1))
        for spec, n_threads in cells:
            name = spec.full_name
            if self.drain is not None and self.drain.requested:
                report.interrupted = True
                logger.warning(
                    "drain: stopping sweep with %d cell(s) not run",
                    len(cells) - len(report.outcomes),
                )
                break
            if resume and self.journal.completed(name, n_threads):
                logger.info("resume: skipping completed cell %s:%d",
                            name, n_threads)
                report.outcomes.append(CellOutcome(
                    name=name,
                    n_threads=n_threads,
                    status=CELL_RESUMED,
                ))
                if self.bus is not None:
                    self.bus.emit(CellFinished(
                        f"{name}:{n_threads}", CELL_RESUMED, 0
                    ))
                continue
            logger.info("running cell %s:%d", name, n_threads)
            try:
                outcome = self.run_cell(spec, n_threads)
            except DrainRequested as exc:
                # nothing is journaled for the interrupted cell: its
                # checkpoint (when armed) carries the partial run, and
                # a --resume re-runs it from there
                report.interrupted = True
                logger.warning(
                    "drain (%s): cell %s:%d interrupted%s",
                    exc.reason, name, n_threads,
                    " after a checkpoint save" if exc.saved else "",
                )
                break
            with maybe_span(self.spans, "journal.write", cat="sweep"):
                if outcome.status == CELL_OK:
                    assert outcome.result is not None
                    self.journal.record_ok(
                        name, n_threads,
                        attempts=outcome.attempts,
                        total_cycles=outcome.result.mt_result.total_cycles,
                        truncated=outcome.result.mt_result.truncated,
                        metrics=outcome.metrics,
                    )
                else:
                    self.journal.record_failure(
                        name, n_threads,
                        attempts=outcome.attempts,
                        error=outcome.error or "",
                        error_type=outcome.error_type or "",
                        snapshot=outcome.snapshot,
                    )
            report.outcomes.append(outcome)
        if self.bus is not None:
            self.bus.emit(SweepFinished(
                len(report.completed), len(report.failures),
                len(report.resumed),
            ))
        logger.info(
            "sweep done: %d ok, %d resumed, %d failed",
            len(report.completed), len(report.resumed), len(report.failures),
        )
        return report
