"""Multi-program per-thread cycle accounting — the [7] baseline.

The speedup-stack accounting extends Eyerman et al.'s per-thread cycle
accounting for *multi-program* workloads: independent single-threaded
programs co-running on a CMP, where only negative interference exists
(no sharing, no synchronization).  That baseline is reproduced here:
co-schedule one single-threaded program per core, account bus/bank/page
and inter-thread LLC interference per core, and estimate each program's
*isolated* execution time as

    T̂_isolated(i) = T_co(i) − O_neg(i)

(the co-run time minus the accounted interference).  Validation runs
each program alone on the same machine and compares.  This is the
quality-of-service use case of Section 8: "identifying how much
co-executing threads affect each other's performance".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting.accountant import CycleAccountant
from repro.config import MachineConfig
from repro.sim.engine import Simulation
from repro.workloads.program import (
    BarrierWait,
    LockAcquire,
    LockRelease,
    Program,
)
from repro.workloads.spec import BenchmarkSpec, build_program


@dataclass(frozen=True)
class ProgramSlowdown:
    """Per-program results of one multi-program experiment."""

    name: str
    core_id: int
    co_run_cycles: int
    isolated_cycles: int
    estimated_isolated_cycles: float
    accounted_interference: float

    @property
    def slowdown(self) -> float:
        """Measured co-run slowdown versus isolated execution."""
        if self.isolated_cycles == 0:
            return 0.0
        return self.co_run_cycles / self.isolated_cycles

    @property
    def estimated_slowdown(self) -> float:
        if self.estimated_isolated_cycles <= 0:
            return 0.0
        return self.co_run_cycles / self.estimated_isolated_cycles

    @property
    def error(self) -> float:
        """Signed estimation error of the isolated time, as a fraction
        of the measured isolated time."""
        if self.isolated_cycles == 0:
            return 0.0
        return (
            self.estimated_isolated_cycles - self.isolated_cycles
        ) / self.isolated_cycles


@dataclass(frozen=True)
class MultiProgramResult:
    programs: list[ProgramSlowdown]

    @property
    def mean_abs_error(self) -> float:
        if not self.programs:
            return 0.0
        return sum(abs(p.error) for p in self.programs) / len(self.programs)


def _single_thread_program(spec: BenchmarkSpec, scale: float) -> Program:
    return build_program(spec, 1, scale=scale)


#: lock-id namespace stride between co-running programs
_SYNC_NAMESPACE = 1 << 16


def _isolate_sync(body, namespace: int):
    """Adapt a single-threaded program's op stream for co-running.

    The programs are independent: their locks must not collide in the
    shared lock namespace (remapped per program), and their barriers —
    single-party no-ops in isolation — are dropped (a shared barrier
    would couple the programs)."""
    for op in body:
        if isinstance(op, BarrierWait):
            continue
        if isinstance(op, LockAcquire):
            yield LockAcquire(op.lock_id + namespace)
        elif isinstance(op, LockRelease):
            yield LockRelease(op.lock_id + namespace)
        else:
            yield op


def run_multiprogram(
    specs: list[BenchmarkSpec],
    machine: MachineConfig | None = None,
    scale: float = 1.0,
) -> MultiProgramResult:
    """Co-run one single-threaded program per core and account it.

    ``specs`` gives the program for each core (one entry per core).
    """
    if machine is None:
        machine = MachineConfig(n_cores=len(specs))
    if len(specs) != machine.n_cores:
        raise ValueError(
            f"{len(specs)} programs for {machine.n_cores} cores"
        )

    # Isolated reference runs: each program alone on one core.
    isolated_cycles = []
    for spec in specs:
        single = machine.with_cores(1)
        program = _single_thread_program(spec, scale)
        isolated_cycles.append(Simulation(single, program).run().total_cycles)

    # The co-run: each program's op stream is one "thread", pinned to
    # its own core; programs are independent (no shared data beyond the
    # incidental, no synchronization).
    bodies = []
    warmups = []
    for core_id, spec in enumerate(specs):
        program = _single_thread_program(spec, scale)
        bodies.append(
            _isolate_sync(
                program.thread_bodies[0], (core_id + 1) * _SYNC_NAMESPACE
            )
        )
        warmups.append(program.warmup[0] if program.warmup else [])
    co_program = Program(
        "multiprogram", bodies, warmup=warmups
    )
    accountant = CycleAccountant(machine)
    co_result = Simulation(machine, co_program, accountant).run()

    programs = []
    for core_id, spec in enumerate(specs):
        raw = accountant.raw_counters(core_id)
        interference = (
            raw.sampled_inter_miss_blocked_stall * raw.sampling_factor
            + raw.memory_interference_stall
        )
        co_cycles = co_result.threads[core_id].end_time
        programs.append(
            ProgramSlowdown(
                name=spec.full_name,
                core_id=core_id,
                co_run_cycles=co_cycles,
                isolated_cycles=isolated_cycles[core_id],
                estimated_isolated_cycles=co_cycles - interference,
                accounted_interference=interference,
            )
        )
    return MultiProgramResult(programs=programs)


def render_multiprogram(result: MultiProgramResult) -> str:
    lines = [
        f"{'program':<24s}{'co-run':>10s}{'isolated':>10s}{'estimated':>11s}"
        f"{'slowdown':>10s}{'error':>8s}"
    ]
    for p in result.programs:
        lines.append(
            f"{p.name:<24s}{p.co_run_cycles:>10d}{p.isolated_cycles:>10d}"
            f"{p.estimated_isolated_cycles:>11.0f}{p.slowdown:>10.2f}"
            f"{p.error * 100:>7.1f}%"
        )
    lines.append(f"mean |error| = {result.mean_abs_error * 100:.1f}%")
    return "\n".join(lines)
