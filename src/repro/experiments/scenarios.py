"""Canned experiments: one driver per table/figure of the paper.

Each function reproduces the data behind one artifact of the
evaluation:

* :func:`speedup_curves`            — Figure 1 (and Figure 5's inputs)
* :func:`validation_sweep`          — Figure 4 + the error-per-thread-count
                                      numbers quoted in Section 6
* :func:`stack_series`              — Figure 5
* :func:`classification_tree`       — Figure 6
* :func:`ferret_core_sweep`         — Figure 7
* :func:`interference_breakdown`    — Figure 8
* :func:`llc_size_sweep`            — Figure 9

All drivers share an :class:`ExperimentCache` so that e.g. the Figure 4
sweep reuses the Figure 1 runs.  ``scale`` shrinks the workloads
uniformly (used by the test suite; the benches run at scale 1).
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field

from repro.config import MB, ExperimentConfig, MachineConfig
from repro.core.analysis import (
    LlcInterference,
    LlcSizeSweepPoint,
    llc_interference,
)
from repro.core.classification import ClassificationTree, classify_stack
from repro.core.stack import SpeedupStack
from repro.core.validation import ValidationRow, errors_by_thread_count
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.sim.engine import Simulation
from repro.workloads.pipeline import build_pipeline_program
from repro.workloads.spec import BenchmarkSpec, build_program
from repro.workloads.suite import FIG5_BENCHMARKS, FIG8_BENCHMARKS, SUITE, by_name

logger = logging.getLogger(__name__)

THREAD_COUNTS = (2, 4, 8, 16)
FIG9_LLC_SIZES = (2 * MB, 4 * MB, 8 * MB, 16 * MB)


def default_scale() -> float:
    """Workload scale factor, overridable via ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class ExperimentCache:
    """Memoizes experiment runs within one process.

    ``machine`` (when set) is the base machine every run derives from by
    re-coring — the way an :class:`~repro.config.ExperimentConfig`'s
    machine reaches the figure drivers.  ``None`` keeps the historical
    default of a fresh paper-default machine per thread count.
    """

    scale: float = 1.0
    machine: MachineConfig | None = None
    _results: dict[tuple, ExperimentResult] = field(default_factory=dict)
    _references: dict[tuple, object] = field(default_factory=dict)

    @classmethod
    def from_experiment(cls, experiment: ExperimentConfig) -> "ExperimentCache":
        """Cache whose runs use the experiment's machine and scale."""
        return cls(scale=experiment.workload.scale, machine=experiment.machine)

    def _reference(self, spec: BenchmarkSpec, machine: MachineConfig):
        """Single-threaded reference run (cached per spec + machine)."""
        key = (spec.full_name, machine.with_cores(1), self.scale)
        if key not in self._references:
            logger.debug("reference run: %s (scale %.3g)",
                         spec.full_name, self.scale)
            program = build_program(spec, 1, scale=self.scale)
            single = machine.with_cores(1)
            self._references[key] = Simulation(single, program).run()
        return self._references[key]

    def reference_cycles(
        self, spec: BenchmarkSpec, machine: MachineConfig
    ) -> int:
        """Single-threaded execution time Ts (cached per spec+machine)."""
        return self._reference(spec, machine).total_cycles

    def run(
        self,
        spec: BenchmarkSpec,
        n_threads: int,
        machine: MachineConfig | None = None,
    ) -> ExperimentResult:
        """Accounted N-thread run + reference, cached."""
        if machine is None:
            machine = (
                self.machine.with_cores(n_threads)
                if self.machine is not None
                else MachineConfig(n_cores=n_threads)
            )
        key = (spec.full_name, n_threads, machine, self.scale)
        if key not in self._results:
            logger.info("accounted run: %s n=%d", spec.full_name, n_threads)
            st_result = self._reference(spec, machine)
            mt_program = build_program(spec, n_threads, scale=self.scale)
            result = run_experiment(spec.full_name, machine, mt_program)
            # Attach the cached reference run and rebuild the stack with
            # the measured single-threaded time.
            from repro.core.stack import build_stack

            result.st_result = st_result
            result.stack = build_stack(
                spec.full_name, result.report,
                ts_cycles=st_result.total_cycles,
            )
            self._results[key] = result
        return self._results[key]


# ----------------------------------------------------------------------
# Figure 1 — speedup curves
# ----------------------------------------------------------------------

def speedup_curves(
    cache: ExperimentCache,
    benchmarks: tuple[str, ...] = FIG5_BENCHMARKS,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
) -> dict[str, dict[int, float]]:
    """Measured speedup as a function of thread count (speedup is 1.0
    at one thread by definition)."""
    curves: dict[str, dict[int, float]] = {}
    for name in benchmarks:
        spec = by_name(name)
        curve: dict[int, float] = {1: 1.0}
        for n in thread_counts:
            result = cache.run(spec, n)
            assert result.stack.actual_speedup is not None
            curve[n] = result.stack.actual_speedup
        curves[name] = curve
    return curves


# ----------------------------------------------------------------------
# Figure 4 — validation of estimated vs actual speedup
# ----------------------------------------------------------------------

@dataclass
class ValidationSummary:
    rows: list[ValidationRow]
    #: mean absolute error per thread count (fractions of N)
    error_by_threads: dict[int, float]
    #: parallelization overhead per benchmark (Section 6 discussion)
    overheads: dict[str, float]


def validation_sweep(
    cache: ExperimentCache,
    specs: tuple[BenchmarkSpec, ...] = SUITE,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
) -> ValidationSummary:
    """Actual vs estimated speedup for every benchmark and thread count."""
    rows: list[ValidationRow] = []
    overheads: dict[str, float] = {}
    for spec in specs:
        for n in thread_counts:
            result = cache.run(spec, n)
            stack = result.stack
            assert stack.actual_speedup is not None
            rows.append(
                ValidationRow(
                    name=spec.full_name,
                    n_threads=n,
                    actual_speedup=stack.actual_speedup,
                    estimated_speedup=stack.estimated_speedup,
                )
            )
            if n == max(thread_counts):
                # Overhead proxy: MT instructions minus spin instructions
                # versus the single-threaded program's instruction count
                # (Section 6's parallelization-overhead estimate).
                overhead = result.parallelization_overhead
                if overhead is not None:
                    overheads[spec.full_name] = overhead
    return ValidationSummary(
        rows=rows,
        error_by_threads=errors_by_thread_count(rows),
        overheads=overheads,
    )


# ----------------------------------------------------------------------
# Figure 5 — speedup stacks per thread count
# ----------------------------------------------------------------------

def stack_series(
    cache: ExperimentCache,
    benchmark: str,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
) -> list[SpeedupStack]:
    spec = by_name(benchmark)
    return [cache.run(spec, n).stack for n in thread_counts]


# ----------------------------------------------------------------------
# Figure 6 — classification tree
# ----------------------------------------------------------------------

def classification_tree(
    cache: ExperimentCache,
    specs: tuple[BenchmarkSpec, ...] = SUITE,
    n_threads: int = 16,
) -> ClassificationTree:
    tree = ClassificationTree()
    for spec in specs:
        result = cache.run(spec, n_threads)
        tree.add(classify_stack(result.stack, suite=spec.suite))
    return tree


# ----------------------------------------------------------------------
# Figure 7 — ferret: threads vs cores under oversubscription
# ----------------------------------------------------------------------

@dataclass
class CoreSweepPoint:
    n_cores: int
    n_threads: int
    speedup: float


def ferret_core_sweep(
    cache: ExperimentCache,
    core_counts: tuple[int, ...] = (2, 4, 8, 16),
    oversubscribed_threads: int = 16,
) -> tuple[list[CoreSweepPoint], list[CoreSweepPoint]]:
    """Speedups with threads == cores and with 16 threads on each core
    count (Figure 7).

    Uses the ferret *pipeline* program (dedicated serial-stage thread,
    bounded queue, heterogeneous item costs — see
    :mod:`repro.workloads.pipeline`): its structure, not a knob, is what
    produces the paper's observations that the 16-thread version
    saturates around 8 cores and that spawning more software threads
    than cores improves performance.  Oversubscribed runs have no
    speedup stack — the paper scopes scheduling effects out of the
    accounting — so raw simulations are used and speedup is measured
    against the same single-threaded reference.
    """
    n_items = max(10, int(100 * cache.scale))
    ts = Simulation(
        MachineConfig(n_cores=1), build_pipeline_program(1, n_items=n_items)
    ).run().total_cycles
    matched: list[CoreSweepPoint] = []
    oversubscribed: list[CoreSweepPoint] = []
    for n_cores in core_counts:
        machine = MachineConfig(n_cores=n_cores)
        tp = Simulation(
            machine, build_pipeline_program(n_cores, n_items=n_items)
        ).run().total_cycles
        matched.append(CoreSweepPoint(n_cores, n_cores, ts / tp))
        tp = Simulation(
            machine,
            build_pipeline_program(oversubscribed_threads, n_items=n_items),
        ).run().total_cycles
        oversubscribed.append(
            CoreSweepPoint(n_cores, oversubscribed_threads, ts / tp)
        )
    return matched, oversubscribed


# ----------------------------------------------------------------------
# Figure 8 — negative/positive/net LLC interference per benchmark
# ----------------------------------------------------------------------

def interference_breakdown(
    cache: ExperimentCache,
    benchmarks: tuple[str, ...] = FIG8_BENCHMARKS,
    n_threads: int = 16,
) -> list[LlcInterference]:
    return [
        llc_interference(cache.run(by_name(name), n_threads).stack)
        for name in benchmarks
    ]


# ----------------------------------------------------------------------
# Figure 9 — cholesky LLC interference vs LLC size
# ----------------------------------------------------------------------

def llc_size_sweep(
    cache: ExperimentCache,
    benchmark: str = "cholesky",
    llc_sizes: tuple[int, ...] = FIG9_LLC_SIZES,
    n_threads: int = 16,
) -> list[LlcSizeSweepPoint]:
    spec = by_name(benchmark)
    points = []
    for size in llc_sizes:
        machine = MachineConfig(n_cores=n_threads).with_llc_size(size)
        result = cache.run(spec, n_threads, machine)
        points.append(
            LlcSizeSweepPoint(
                llc_bytes=size,
                interference=llc_interference(
                    result.stack, name=f"{benchmark}@{size // MB}MB"
                ),
            )
        )
    return points
