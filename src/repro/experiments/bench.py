"""Sweep wall-clock benchmark harness.

Times the hardened suite sweep end-to-end — serial and at one or more
``--jobs`` levels — plus the engine-level fast paths in isolation
(instruction-block fast-forward on vs. off), the observability layer
wide open vs disabled, and periodic checkpointing on vs off (with
explicit save/restore round-trip timings), and emits a JSON document
(``BENCH_sweep.json``) suitable for checking into the repo or uploading
as a CI artifact.

All numbers are *measured on the machine that ran the harness*; the
document records the host's CPU count precisely so a 1-core CI runner's
parallel numbers are not mistaken for a workstation's.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time

from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    cell_descriptor,
    load_checkpoint,
    resume_simulation,
    save_checkpoint,
)
from repro.experiments.runner import BatchRunner, RunPolicy, run_accounted
from repro.observability import MetricsRegistry, TimelineRecorder
from repro.observability.events import EventBus
from repro.observability.profiling import ENGINE_PREFIX, DeterministicProfiler
from repro.observability.spans import SpanRecorder
from repro.parallel import (
    ChunkingPolicy,
    cells_from_sweep,
    plan_chunks,
    run_parallel_sweep,
)
from repro.robustness.journal import SweepJournal
from repro.sim.engine import Simulation
from repro.config import MachineConfig
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name, sweep_cells

#: sweep defaults: whole suite at two thread counts, scaled down so the
#: harness finishes in CI time while still touching every benchmark
DEFAULT_THREADS = (2, 4)
DEFAULT_SCALE = 0.25
DEFAULT_MAX_CYCLES = 20_000_000

#: representative cell for the fast-forward on/off micro-benchmark
FF_BENCHMARK = "cholesky"
FF_THREADS = 4

#: the checkpoint overhead benchmark runs its cell at full scale (the
#: workloads that need checkpointing are the long ones) and saves once
#: per run — per-save cost is ~constant, so one save against the
#: longest denominator the harness affords is the stable way to detect
#: a save-path regression under a percentage gate
CKPT_SCALE = 1.0
CKPT_INTERVAL = 50_000

#: the warm-worker acceptance gate: parallel sweeps must beat serial by
#: this factor at this jobs level — but only on hosts with enough cores
#: to make the comparison meaningful (a 1-core container physically
#: cannot show a parallel speedup; the doc records the gate as
#: unenforced there instead of reporting a bogus failure)
WARM_GATE_JOBS = 4
WARM_GATE_MIN_SPEEDUP = 1.5

#: the vectorized-engine acceptance gate: one warm-heavy cell must run
#: at least this much faster under ``--engine vectorized`` than under
#: the reference engine (identical results, enforced by assertion).
#: The cell is deliberately warm-dominated — that is where the fused
#: numpy warm kernel earns its keep; 10x is the aspirational target for
#: fully batched workloads, the enforced floor is 3x.  Unenforceable
#: (not failed) when numpy is absent.
VEC_BENCHMARK = "fft"
VEC_THREADS = 16
VEC_SCALE = 0.2
VEC_GATE_MIN_SPEEDUP = 3.0


def _have_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _timed_sweep(cells, scale, policy, jobs, repeats):
    """Best-of-``repeats`` wall-clock for one sweep configuration."""
    times = []
    ok = failed = 0
    for _ in range(repeats):
        start = time.perf_counter()
        if jobs > 1:
            report = run_parallel_sweep(
                cells_from_sweep(cells, scale=scale),
                jobs=jobs, policy=policy, journal=SweepJournal(None),
            )
        else:
            report = BatchRunner(policy=policy, scale=scale).run_sweep(cells)
        times.append(time.perf_counter() - start)
        ok = len(report.completed)
        failed = len(report.failures)
    return {
        "jobs": jobs,
        "wall_s": round(min(times), 4),
        "wall_s_all": [round(t, 4) for t in times],
        "cells_ok": ok,
        "cells_failed": failed,
    }


def _bench_fast_forward(scale, max_cycles, repeats):
    """Same accountant-less run with the engine fast-forward on vs off."""
    spec = by_name(FF_BENCHMARK)
    machine = MachineConfig(n_cores=FF_THREADS)
    timings = {}
    cycles = {}
    for enabled in (True, False):
        best = None
        for _ in range(repeats):
            program = build_program(spec, FF_THREADS, scale=scale)
            start = time.perf_counter()
            result = Simulation(
                machine, program, fast_forward=enabled
            ).run(max_cycles=max_cycles, on_timeout="truncate")
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            cycles[enabled] = result.total_cycles
        timings[enabled] = best
    assert cycles[True] == cycles[False], (
        "fast-forward changed simulated time — fast path is unsound"
    )
    return {
        "cell": f"{FF_BENCHMARK}:{FF_THREADS}",
        "wall_s_on": round(timings[True], 4),
        "wall_s_off": round(timings[False], 4),
        "speedup": round(timings[False] / timings[True], 3),
        "total_cycles": cycles[True],
    }


def _bench_engine_vec(repeats, max_cycles=DEFAULT_MAX_CYCLES):
    """One warm-heavy accounted cell under each engine backend.

    Both engines must report the same simulated time and instruction
    count (the differential test suite holds them byte-identical on the
    full state tree; the bench re-checks the cheap invariants).  The
    gate mirrors the warm-worker one: ``enforced`` is False when numpy
    is missing, with ``met = None`` so downstream checks distinguish
    "failed" from "host can't tell".
    """
    cell = f"{VEC_BENCHMARK}:{VEC_THREADS}"
    gate = {
        "min_speedup": VEC_GATE_MIN_SPEEDUP,
        "aspirational_speedup": 10.0,
        "enforced": False,
        "met": None,
        "note": None,
    }
    if not _have_numpy():
        gate["note"] = (
            "numpy not installed; the vectorized engine is unavailable "
            "(pip install 'repro[vectorized]')"
        )
        return {"cell": cell, "gate": gate}
    spec = by_name(VEC_BENCHMARK)
    machine = MachineConfig(n_cores=VEC_THREADS)
    timings = {}
    observed = {}
    for engine in ("reference", "vectorized"):
        best = None
        for _ in range(repeats):
            program = build_program(spec, VEC_THREADS, scale=VEC_SCALE)
            start = time.perf_counter()
            result, _report = run_accounted(
                machine, program, max_cycles=max_cycles,
                on_timeout="truncate", engine=engine,
            )
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            observed[engine] = (result.total_cycles, result.total_instrs)
        timings[engine] = best
    assert observed["reference"] == observed["vectorized"], (
        "engine backends disagree on simulated time/instructions — "
        "the vectorized engine is unsound"
    )
    speedup = round(timings["reference"] / timings["vectorized"], 3)
    gate["enforced"] = True
    gate["met"] = speedup >= VEC_GATE_MIN_SPEEDUP
    gate["note"] = (
        "3x is the enforced floor on this warm-heavy cell; 10x is the "
        "aspirational target for fully batched workloads"
    )
    return {
        "cell": cell,
        "scale": VEC_SCALE,
        "wall_s_reference": round(timings["reference"], 4),
        "wall_s_vectorized": round(timings["vectorized"], 4),
        "speedup": speedup,
        "total_cycles": observed["reference"][0],
        "results_identical": True,
        "gate": gate,
    }


def _bench_observability(scale, max_cycles, repeats):
    """One accounted cell instrumented wide open vs fully disabled.

    "Wide open" is the worst case the observability layer supports: an
    event bus with a :class:`TimelineRecorder` subscribed to every
    engine event family, a :class:`MetricsRegistry` harvesting the
    cell, *and* a :class:`SpanRecorder` timing the harness phases — so
    the measured overhead bounds what ``repro trace``,
    ``sweep --emit-metrics`` and ``sweep --emit-spans`` cost together.
    Simulated cycles must be identical either way (instrumentation
    observes, never perturbs); CI gates on ``overhead_pct``.
    """
    spec = by_name(FF_BENCHMARK)
    policy = RunPolicy(on_error="skip", max_cycles=max_cycles)
    timings = {}
    cycles = {}
    n_events = 0
    n_spans = 0
    for enabled in (False, True):
        best = None
        for _ in range(repeats):
            bus = metrics = spans = None
            if enabled:
                bus = EventBus()
                TimelineRecorder().attach(bus)
                metrics = MetricsRegistry()
                spans = SpanRecorder()
            runner = BatchRunner(
                policy=policy, scale=scale, bus=bus, metrics=metrics,
                spans=spans,
            )
            start = time.perf_counter()
            outcome = runner.run_cell(spec, FF_THREADS)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            cycles[enabled] = outcome.result.mt_result.total_cycles
            if bus is not None:
                n_events = bus.n_emitted
            if spans is not None:
                n_spans = len(spans)
        timings[enabled] = best
    assert cycles[True] == cycles[False], (
        "instrumentation changed simulated time — the bus is not "
        "observation-only"
    )
    return {
        "cell": f"{FF_BENCHMARK}:{FF_THREADS}",
        "wall_s_disabled": round(timings[False], 4),
        "wall_s_enabled": round(timings[True], 4),
        "overhead_pct": round(
            100.0 * (timings[True] - timings[False]) / timings[False], 2
        ),
        "events_emitted": n_events,
        "spans_recorded": n_spans,
        "total_cycles": cycles[True],
    }


def _bench_profile(scale, max_cycles, top_n=15, engine="reference"):
    """One accounted cell under the deterministic sampling profiler.

    Returns the BENCH ``profile`` section: total self-time, the top-N
    self-time functions and the share of time inside the engine inner
    loop — plus the full collapsed-stack text under ``"collapsed"``
    (callers write it to a ``.collapsed`` artifact and usually pop it
    from the JSON document, where it would dwarf everything else).

    The section is tagged with the ``engine`` backend it ran under.
    ``engine_inner_loop_pct`` widens its frame filter for non-reference
    backends: ``repro.sim.engine`` (no trailing dot) covers both the
    reference module and backend modules like ``engine_vec``.
    """
    spec = by_name(FF_BENCHMARK)
    policy = RunPolicy(on_error="skip", max_cycles=max_cycles, engine=engine)
    runner = BatchRunner(policy=policy, scale=scale)
    profiler = DeterministicProfiler()
    start = time.perf_counter()
    with profiler:
        outcome = runner.run_cell(spec, FF_THREADS)
    elapsed = time.perf_counter() - start
    section = {
        "cell": f"{FF_BENCHMARK}:{FF_THREADS}",
        "engine": engine,
        "wall_s": round(elapsed, 4),
        "total_cycles": outcome.result.mt_result.total_cycles,
    }
    prefix = ENGINE_PREFIX if engine == "reference" else "repro.sim.engine"
    section.update(
        profiler.profile_section(top_n=top_n, engine_prefix=prefix)
    )
    section["collapsed"] = profiler.collapsed()
    return section


def _bench_checkpoint(max_cycles, repeats):
    """One accounted cell with periodic checkpointing on vs off.

    The enabled run saves the full SimState tree to disk every
    :data:`CKPT_INTERVAL` simulated cycles at :data:`CKPT_SCALE`.
    Disabled/enabled repeats interleave so background load drifts into
    both sides of the comparison equally.  Simulated cycles must be
    identical either way (saving never mutates the engine); CI gates on
    ``overhead_pct`` staying within budget.  ``save_ms``/``load_ms``
    time one explicit :func:`save_checkpoint` write and one full
    :func:`resume_simulation` rebuild of the same mid-run state.
    """
    spec = by_name(FF_BENCHMARK)
    machine = MachineConfig(n_cores=FF_THREADS)
    timings = {False: None, True: None}
    cycles = {}
    n_saves = 0
    save_best = load_best = None
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "bench.ckpt")
        descriptor = cell_descriptor(
            machine, spec.full_name, FF_THREADS, CKPT_SCALE,
            max_cycles=max_cycles,
        )
        for _ in range(repeats):
            for enabled in (False, True):
                program = build_program(spec, FF_THREADS, scale=CKPT_SCALE)
                hook = None
                if enabled:
                    hook = CheckpointHook(
                        path, descriptor,
                        CheckpointPolicy(every_cycles=CKPT_INTERVAL),
                    )
                start = time.perf_counter()
                mt_result, _report = run_accounted(
                    machine, program, max_cycles=max_cycles,
                    on_timeout="truncate", checkpoint=hook,
                )
                elapsed = time.perf_counter() - start
                best = timings[enabled]
                timings[enabled] = (
                    elapsed if best is None else min(best, elapsed)
                )
                cycles[enabled] = mt_result.total_cycles
                if hook is not None:
                    n_saves = hook.n_saves
        assert cycles[True] == cycles[False], (
            "checkpointing changed simulated time — saving must not "
            "perturb the engine"
        )
        if os.path.exists(path):  # at least one interval save happened
            header, state = load_checkpoint(path)
            for _ in range(repeats):
                start = time.perf_counter()
                save_checkpoint(
                    path, state, descriptor,
                    cycle=header["cycle"], reason=header["reason"],
                )
                elapsed = time.perf_counter() - start
                save_best = (
                    elapsed if save_best is None else min(save_best, elapsed)
                )
                start = time.perf_counter()
                resume_simulation(path, spec=spec)
                elapsed = time.perf_counter() - start
                load_best = (
                    elapsed if load_best is None else min(load_best, elapsed)
                )
    return {
        "cell": f"{FF_BENCHMARK}:{FF_THREADS}",
        "scale": CKPT_SCALE,
        "every_cycles": CKPT_INTERVAL,
        "wall_s_disabled": round(timings[False], 4),
        "wall_s_enabled": round(timings[True], 4),
        "overhead_pct": round(
            100.0 * (timings[True] - timings[False]) / timings[False], 2
        ),
        "n_saves": n_saves,
        "save_ms": (
            None if save_best is None else round(save_best * 1000, 3)
        ),
        "load_ms": (
            None if load_best is None else round(load_best * 1000, 3)
        ),
        "total_cycles": cycles[True],
    }


def _chunk_plan_stats(cells, scale, jobs) -> dict:
    """Describe the deterministic chunk plan a ``--jobs N`` sweep uses.

    Pure planning — no timing — so the doc shows how the dispatcher
    groups this sweep's cells (how much per-task overhead amortizes,
    how balanced the estimated costs are) on any host.
    """
    pending = list(enumerate(cells_from_sweep(cells, scale=scale)))
    chunks = plan_chunks(pending, jobs, ChunkingPolicy())
    sizes = [len(chunk.cells) for chunk in chunks]
    costs = [chunk.est_cost for chunk in chunks]
    return {
        "jobs": jobs,
        "n_chunks": len(chunks),
        "cells_per_chunk_min": min(sizes),
        "cells_per_chunk_max": max(sizes),
        "cells_per_chunk_mean": round(sum(sizes) / len(sizes), 2),
        "est_cost_imbalance": round(
            max(costs) / (sum(costs) / len(costs)), 3
        ),
    }


def _warm_workers_section(cells, scale, runs) -> dict:
    """Summarize the warm-worker results already measured in ``runs``
    and evaluate the speedup gate (no extra timing).

    ``gate.enforced`` is False when the host has fewer cores than the
    gate's jobs level; ``gate.met`` is None in that case (unknowable
    here), so downstream checks (``tools/bench_sweep.py --min-warm-
    speedup``) can distinguish "failed" from "host can't tell".
    """
    cpu_count = os.cpu_count() or 1
    parallel_runs = [r for r in runs if r["jobs"] > 1]
    gate_run = next(
        (r for r in parallel_runs if r["jobs"] == WARM_GATE_JOBS), None
    )
    enforced = cpu_count >= WARM_GATE_JOBS and gate_run is not None
    return {
        "dispatch": "persistent pool, chunked cells, canonical-JSON "
                    "results, per-worker warm caches",
        "runs": [
            {
                "jobs": r["jobs"],
                "speedup_vs_serial": r["speedup_vs_serial"],
                "chunk_plan": _chunk_plan_stats(cells, scale, r["jobs"]),
            }
            for r in parallel_runs
        ],
        "gate": {
            "jobs": WARM_GATE_JOBS,
            "min_speedup": WARM_GATE_MIN_SPEEDUP,
            "enforced": enforced,
            "met": (
                gate_run["speedup_vs_serial"] >= WARM_GATE_MIN_SPEEDUP
                if enforced else None
            ),
            "note": (
                None if cpu_count >= WARM_GATE_JOBS else
                f"host has {cpu_count} CPU(s); gate needs "
                f">= {WARM_GATE_JOBS} to be meaningful"
            ),
        },
    }


def run_bench(
    benchmarks=None,
    thread_counts=DEFAULT_THREADS,
    scale=DEFAULT_SCALE,
    jobs_list=(1,),
    repeats=1,
    max_cycles=DEFAULT_MAX_CYCLES,
    profile=False,
) -> dict:
    """Run the whole harness and return the BENCH document.

    With ``profile`` the document gains a ``profile`` section (see
    :func:`_bench_profile`); its ``"collapsed"`` text is meant to be
    popped into a separate artifact file by the caller.
    """
    cells = sweep_cells(benchmarks, tuple(thread_counts))
    policy = RunPolicy(on_error="skip", max_cycles=max_cycles)
    jobs_list = sorted(set(jobs_list) | {1})
    runs = [
        _timed_sweep(cells, scale, policy, jobs, repeats)
        for jobs in jobs_list
    ]
    serial_wall = next(r["wall_s"] for r in runs if r["jobs"] == 1)
    for run in runs:
        run["speedup_vs_serial"] = round(serial_wall / run["wall_s"], 3)
    doc = {
        "bench": "sweep-wall-clock",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "benchmarks": sorted({spec.full_name for spec, _ in cells}),
            "thread_counts": list(thread_counts),
            "n_cells": len(cells),
            "scale": scale,
            "max_cycles": max_cycles,
            "repeats": repeats,
        },
        "sweep": runs,
        "warm_workers": _warm_workers_section(cells, scale, runs),
        "engine_fast_forward": _bench_fast_forward(
            scale, max_cycles, repeats
        ),
        "engine_vec": _bench_engine_vec(repeats),
        "observability": _bench_observability(scale, max_cycles, repeats),
        "checkpoint": _bench_checkpoint(max_cycles, repeats),
    }
    if profile:
        prof = _bench_profile(scale, max_cycles)
        if _have_numpy():
            # same cell profiled under the vectorized backend: only the
            # inner-loop share is kept (the full vectorized collapsed
            # stacks would double the artifact for little insight)
            vec_prof = _bench_profile(scale, max_cycles, engine="vectorized")
            prof["engine_inner_loop_pct_by_backend"] = {
                "reference": prof["engine_inner_loop_pct"],
                "vectorized": vec_prof["engine_inner_loop_pct"],
            }
        doc["profile"] = prof
    return doc


def render_bench(doc: dict) -> str:
    """Human-readable summary of a BENCH document."""
    host = doc["host"]
    config = doc["config"]
    lines = [
        f"sweep benchmark: {config['n_cells']} cells "
        f"(scale {config['scale']}) on {host['cpu_count']} CPU(s)",
        f"{'jobs':>6s} {'wall s':>10s} {'vs serial':>10s} {'ok':>4s} "
        f"{'failed':>7s}",
    ]
    for run in doc["sweep"]:
        lines.append(
            f"{run['jobs']:>6d} {run['wall_s']:>10.3f} "
            f"{run['speedup_vs_serial']:>9.2f}x {run['cells_ok']:>4d} "
            f"{run['cells_failed']:>7d}"
        )
    warm = doc.get("warm_workers")
    if warm is not None:
        gate = warm["gate"]
        if gate["enforced"]:
            status = "met" if gate["met"] else "NOT met"
            verdict = (
                f"gate >= {gate['min_speedup']}x at --jobs "
                f"{gate['jobs']}: {status}"
            )
        else:
            verdict = f"gate not enforced ({gate['note']})"
        for run in warm["runs"]:
            plan = run["chunk_plan"]
            lines.append(
                f"warm workers --jobs {run['jobs']}: "
                f"{run['speedup_vs_serial']:.2f}x vs serial, "
                f"{plan['n_chunks']} chunks "
                f"(~{plan['cells_per_chunk_mean']:.1f} cells each)"
            )
        lines.append(f"warm workers: {verdict}")
    ff = doc["engine_fast_forward"]
    lines.append(
        f"engine fast-forward ({ff['cell']}): "
        f"{ff['wall_s_off']:.3f}s -> {ff['wall_s_on']:.3f}s "
        f"({ff['speedup']:.2f}x, cycles identical)"
    )
    vec = doc.get("engine_vec")
    if vec is not None:
        gate = vec["gate"]
        if gate["enforced"]:
            status = "met" if gate["met"] else "NOT met"
            lines.append(
                f"vectorized engine ({vec['cell']}): "
                f"{vec['wall_s_reference']:.3f}s -> "
                f"{vec['wall_s_vectorized']:.3f}s "
                f"({vec['speedup']:.2f}x, results identical); "
                f"gate >= {gate['min_speedup']:g}x: {status}"
            )
        else:
            lines.append(
                f"vectorized engine ({vec['cell']}): gate not enforced "
                f"({gate['note']})"
            )
    obs = doc.get("observability")
    if obs is not None:
        spans_txt = (
            f", {obs['spans_recorded']} spans"
            if obs.get("spans_recorded") else ""
        )
        lines.append(
            f"observability ({obs['cell']}): "
            f"{obs['wall_s_disabled']:.3f}s -> "
            f"{obs['wall_s_enabled']:.3f}s enabled "
            f"({obs['overhead_pct']:+.1f}%, {obs['events_emitted']} "
            f"events{spans_txt}, cycles identical)"
        )
    prof = doc.get("profile")
    if prof is not None:
        top = prof["top_functions"][:3]
        top_txt = ", ".join(
            f"{entry['function'].rsplit('.', 1)[-1]} "
            f"{entry['self_pct']:.0f}%"
            for entry in top
        )
        lines.append(
            f"profile ({prof['cell']}): "
            f"{prof['engine_inner_loop_pct']:.0f}% in engine inner loop; "
            f"top self-time: {top_txt}"
        )
    ckpt = doc.get("checkpoint")
    if ckpt is not None:
        save_ms = ckpt["save_ms"]
        load_ms = ckpt["load_ms"]
        roundtrip = (
            "no saves triggered" if save_ms is None
            else f"save {save_ms:.1f}ms / restore {load_ms:.1f}ms"
        )
        lines.append(
            f"checkpoint ({ckpt['cell']}): "
            f"{ckpt['wall_s_disabled']:.3f}s -> "
            f"{ckpt['wall_s_enabled']:.3f}s saving every "
            f"{ckpt['every_cycles']} cycles "
            f"({ckpt['overhead_pct']:+.1f}%, {ckpt['n_saves']} saves, "
            f"{roundtrip}, cycles identical)"
        )
    return "\n".join(lines)


def write_bench(doc: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
