"""Experiment protocol and per-figure drivers for the evaluation."""
