"""The per-thread cycle-accounting architecture (Section 4).

:class:`CycleAccountant` is the software model of the hardware the
paper proposes: per core, an auxiliary tag directory (ATD), an open row
array (ORA) and a spin-detection table, plus a handful of raw cycle and
event counters.  It receives only hardware-observable events from the
simulator through the hook interface, and afterwards the
:meth:`CycleAccountant.report` step performs the software-side
extrapolation (negative interference via the sampling factor) and
interpolation (positive interference via the average miss penalty).

The accounting is per *core*; speedup stacks are built for the pinned
one-thread-per-core configuration the paper evaluates, where core *i*
runs thread *i*.  Over-subscribed runs (more threads than cores, as in
Figure 7) report raw speedups only — the paper explicitly scopes
scheduling effects out ("this is out of the scope for this paper").
"""

from __future__ import annotations

from repro.accounting.atd import AuxiliaryTagDirectory
from repro.accounting.interface import INTER_THREAD_HIT, INTER_THREAD_MISS
from repro.observability.events import InterThreadAccess, SpinTruncated
from repro.accounting.ora import OpenRowArray
from repro.accounting.report import (
    AccountingReport,
    CoreRawCounters,
    ThreadComponents,
)
from repro.components.registry import resolve
from repro.config import MachineConfig
from repro.errors import CheckpointError, SimulationError
from repro.sim.memory import DramAccessResult


def _component_state(component, kind: str) -> dict:
    """``state_dict()`` of a registry-resolved component, or a clear
    error when a third-party component is not checkpointable."""
    state_fn = getattr(component, "state_dict", None)
    if state_fn is None:
        raise CheckpointError(
            f"{kind} component {type(component).__name__!r} does not "
            "implement state_dict()/load_state_dict() and cannot be "
            "checkpointed"
        )
    return state_fn()


class CycleAccountant:
    """Hardware cycle-component accounting for one simulated run."""

    enabled = True

    def __init__(self, machine: MachineConfig, bus=None) -> None:
        self.machine = machine
        #: optional observability EventBus; the accountant emits only
        #: sampled classifications and episode-level spin truncations —
        #: both far off the per-access hot path
        self.bus = bus
        config = machine.accounting
        n = machine.n_cores
        self.atds = [
            AuxiliaryTagDirectory(machine.llc, config.atd_sample_period)
            for _ in range(n)
        ]
        #: optional full-tag shadow ATDs (verification only — never used
        #: for the reported components)
        self.oracle_atds = (
            [AuxiliaryTagDirectory(machine.llc, 1) for _ in range(n)]
            if config.atd_shadow_oracle
            else None
        )
        self.oras = [OpenRowArray(machine.dram.n_banks) for _ in range(n)]
        #: one spin detector per core, built from the registered
        #: ``spin_detector`` factory; every detector receives both event
        #: streams (loads and backward branches) and uses the one its
        #: scheme needs
        detector_factory = resolve("spin_detector", config.spin_detector)
        self.spin_detectors = [detector_factory(config) for _ in range(n)]
        self._account_coherency = config.account_coherency

        self.llc_accesses = [0] * n
        self.llc_load_misses = [0] * n
        self.llc_load_miss_blocked_stall = [0] * n
        self.neg_llc_sampled_stall = [0] * n
        self.neg_mem_stall = [0] * n
        self.spin_truncated = [0] * n
        self.coherency_stall = [0] * n
        self.yield_cycles: dict[int, int] = {}

    # ------------------------------------------------------------------
    # hardware event hooks (called by the simulator)
    # ------------------------------------------------------------------

    def classify_llc_access(
        self,
        core_id: int,
        line_addr: int,
        set_index: int,
        shared_hit: bool,
        is_load: bool,
    ) -> str | None:
        self.llc_accesses[core_id] += 1
        if not shared_hit and is_load:
            self.llc_load_misses[core_id] += 1
        if self.oracle_atds is not None:
            self.oracle_atds[core_id].observe(
                line_addr, set_index, shared_hit, is_load
            )
        classification = self.atds[core_id].observe(
            line_addr, set_index, shared_hit, is_load
        )
        bus = self.bus
        if bus is not None and classification is not None:
            if classification == INTER_THREAD_MISS:
                bus.emit(InterThreadAccess(core_id, "miss"))
            elif classification == INTER_THREAD_HIT:
                bus.emit(InterThreadAccess(core_id, "hit"))
        return classification

    def replace_tag_stores(self, store_factory) -> None:
        """Swap every ATD's tag store with ``store_factory(llc_config)``
        (engine-backend hook; see
        :meth:`~repro.accounting.atd.AuxiliaryTagDirectory.replace_tag_store`)."""
        for atd in self.atds:
            atd.replace_tag_store(store_factory(self.machine.llc))
        if self.oracle_atds is not None:
            for atd in self.oracle_atds:
                atd.replace_tag_store(store_factory(self.machine.llc))

    def warm_llc_access(self, core_id: int, line_addr: int, set_index: int) -> None:
        self.atds[core_id].warm(line_addr, set_index)
        if self.oracle_atds is not None:
            self.oracle_atds[core_id].warm(line_addr, set_index)

    def note_dram_access(self, core_id: int, dram_result: DramAccessResult) -> bool:
        return self.oras[core_id].observe(dram_result)

    def on_miss_blocked(
        self,
        core_id: int,
        blocked_cycles: int,
        classification: str | None,
        dram_result: DramAccessResult,
        is_load: bool,
        ora_conflict: bool = False,
    ) -> None:
        if is_load:
            self.llc_load_miss_blocked_stall[core_id] += blocked_cycles
        # Memory-subsystem interference (bus/bank waits caused by other
        # cores, ORA-attributed page conflicts) is measured for every
        # blocked miss, capped by the time the miss actually blocked.
        interference = dram_result.bus_wait_other + dram_result.bank_wait_other
        if ora_conflict:
            interference += dram_result.page_extra_cycles
        if interference > blocked_cycles:
            interference = blocked_cycles
        self.neg_mem_stall[core_id] += interference
        if classification == INTER_THREAD_MISS:
            # The rest of a sampled inter-thread miss's penalty — the
            # part not already attributed to the memory subsystem — is
            # negative LLC interference (extrapolated at report time).
            # Splitting avoids double-counting the same stall cycles in
            # both components.
            self.neg_llc_sampled_stall[core_id] += blocked_cycles - interference

    def on_retired_load(
        self,
        core_id: int,
        pc: int,
        addr: int,
        value_version: int,
        writer_core: int,
        now: int,
    ) -> None:
        self.spin_detectors[core_id].on_load(
            pc, addr, value_version, writer_core, now, core_id
        )

    def on_backward_branch(
        self, core_id: int, pc: int, state_signature: int, now: int
    ) -> None:
        self.spin_detectors[core_id].on_backward_branch(pc, state_signature, now)

    def on_coherency_miss(self, core_id: int, blocked_cycles: int) -> None:
        if self._account_coherency:
            self.coherency_stall[core_id] += blocked_cycles

    def on_spin_truncated(self, core_id: int, elapsed_cycles: int) -> None:
        self.spin_truncated[core_id] += elapsed_cycles
        if self.bus is not None:
            self.bus.emit(SpinTruncated(core_id, elapsed_cycles))

    def on_context_switch(self, core_id: int) -> None:
        self.spin_detectors[core_id].flush()

    def on_yield_interval(self, thread_id: int, t_out: int, t_in: int) -> None:
        self.yield_cycles[thread_id] = (
            self.yield_cycles.get(thread_id, 0) + (t_in - t_out)
        )

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """All accounting hardware state: ATD tag arrays, ORA rows, spin
        watch tables, and every cumulative counter."""
        state = {
            "atds": [atd.state_dict() for atd in self.atds],
            "oras": [ora.state_dict() for ora in self.oras],
            "spin_detectors": [
                _component_state(detector, "spin_detector")
                for detector in self.spin_detectors
            ],
            "llc_accesses": list(self.llc_accesses),
            "llc_load_misses": list(self.llc_load_misses),
            "llc_load_miss_blocked_stall": list(
                self.llc_load_miss_blocked_stall
            ),
            "neg_llc_sampled_stall": list(self.neg_llc_sampled_stall),
            "neg_mem_stall": list(self.neg_mem_stall),
            "spin_truncated": list(self.spin_truncated),
            "coherency_stall": list(self.coherency_stall),
            "yield_cycles": [
                [tid, cycles] for tid, cycles in self.yield_cycles.items()
            ],
        }
        if self.oracle_atds is not None:
            state["oracle_atds"] = [
                atd.state_dict() for atd in self.oracle_atds
            ]
        return state

    def load_state_dict(self, state: dict) -> None:
        for atd, atd_state in zip(self.atds, state["atds"]):
            atd.load_state_dict(atd_state)
        for ora, ora_state in zip(self.oras, state["oras"]):
            ora.load_state_dict(ora_state)
        for detector, detector_state in zip(
            self.spin_detectors, state["spin_detectors"]
        ):
            load_fn = getattr(detector, "load_state_dict", None)
            if load_fn is None:
                raise CheckpointError(
                    f"spin_detector component {type(detector).__name__!r} "
                    "does not implement load_state_dict()"
                )
            load_fn(detector_state)
        if self.oracle_atds is not None and "oracle_atds" in state:
            for atd, atd_state in zip(self.oracle_atds, state["oracle_atds"]):
                atd.load_state_dict(atd_state)
        self.llc_accesses = list(state["llc_accesses"])
        self.llc_load_misses = list(state["llc_load_misses"])
        self.llc_load_miss_blocked_stall = list(
            state["llc_load_miss_blocked_stall"]
        )
        self.neg_llc_sampled_stall = list(state["neg_llc_sampled_stall"])
        self.neg_mem_stall = list(state["neg_mem_stall"])
        self.spin_truncated = list(state["spin_truncated"])
        self.coherency_stall = list(state["coherency_stall"])
        self.yield_cycles = {
            tid: cycles for tid, cycles in state["yield_cycles"]
        }

    # ------------------------------------------------------------------
    # snapshots (region-based stacks, Section 4.6)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of all cumulative region counters.

        .. deprecated::
            This is the region-differencing *view* retained for the
            region-based stacks (Section 4.6); full state
            externalization lives in :meth:`state_dict`, which this is
            now a thin projection of.
        """
        return {
            "llc_accesses": list(self.llc_accesses),
            "llc_load_misses": list(self.llc_load_misses),
            "llc_load_miss_blocked_stall": list(
                self.llc_load_miss_blocked_stall
            ),
            "neg_llc_sampled_stall": list(self.neg_llc_sampled_stall),
            "neg_mem_stall": list(self.neg_mem_stall),
            "spin": [self.spin_cycles_of(c) for c in range(len(self.atds))],
            "yield": dict(self.yield_cycles),
            "inter_hits": [
                atd.n_sampled_load_inter_hits for atd in self.atds
            ],
            "coherency": list(self.coherency_stall),
        }

    # ------------------------------------------------------------------
    # software post-processing (Section 4.7)
    # ------------------------------------------------------------------

    def spin_cycles_of(self, core_id: int) -> int:
        detector = self.spin_detectors[core_id]
        return detector.spin_cycles + self.spin_truncated[core_id]

    def raw_counters(self, core_id: int) -> CoreRawCounters:
        atd = self.atds[core_id]
        detector = self.spin_detectors[core_id]
        return CoreRawCounters(
            core_id=core_id,
            sample_period=self.machine.accounting.atd_sample_period,
            llc_accesses=self.llc_accesses[core_id],
            llc_load_misses=self.llc_load_misses[core_id],
            llc_load_miss_blocked_stall=self.llc_load_miss_blocked_stall[core_id],
            sampled_accesses=atd.n_sampled_accesses,
            sampled_inter_thread_misses=atd.n_inter_thread_misses,
            sampled_inter_thread_hits=atd.n_inter_thread_hits,
            sampled_inter_miss_blocked_stall=self.neg_llc_sampled_stall[core_id],
            memory_interference_stall=self.neg_mem_stall[core_id],
            spin_detector_cycles=detector.spin_cycles,
            spin_truncated_cycles=self.spin_truncated[core_id],
            coherency_blocked_stall=self.coherency_stall[core_id],
            n_spin_episodes=getattr(detector, "n_episodes", 0),
            oracle_inter_thread_misses=(
                self.oracle_atds[core_id].n_inter_thread_misses
                if self.oracle_atds is not None
                else -1
            ),
            oracle_inter_thread_hits=(
                self.oracle_atds[core_id].n_inter_thread_hits
                if self.oracle_atds is not None
                else -1
            ),
        )

    def report(self, sim_result) -> AccountingReport:
        """Derive per-thread cycle components from the raw hardware
        counts plus the per-thread end times of the run."""
        n_threads = sim_result.n_threads
        if n_threads > self.machine.n_cores:
            raise SimulationError(
                "speedup-stack accounting requires one thread per core; "
                f"got {n_threads} threads on {self.machine.n_cores} cores"
            )
        tp = sim_result.total_cycles
        imbalance = sim_result.imbalance_cycles
        threads = []
        cores = []
        for tid in range(n_threads):
            core_id = tid  # pinned round-robin placement: thread i -> core i
            raw = self.raw_counters(core_id)
            cores.append(raw)
            factor = raw.sampling_factor
            negative_llc = raw.sampled_inter_miss_blocked_stall * factor
            positive_llc = (
                self.atds[core_id].n_sampled_load_inter_hits
                * factor
                * raw.avg_miss_penalty
            )
            components = ThreadComponents(
                thread_id=tid,
                negative_llc=negative_llc,
                negative_memory=float(raw.memory_interference_stall),
                positive_llc=positive_llc,
                spinning=float(self.spin_cycles_of(core_id)),
                yielding=float(self.yield_cycles.get(tid, 0)),
                imbalance=float(imbalance[tid]),
                coherency=float(raw.coherency_blocked_stall),
            )
            # A thread cannot lose more than the whole run to overheads;
            # scale down (extrapolation can overshoot on pathological
            # sampling) so the estimate stays physical.
            total = components.total_overhead
            if total > tp > 0:
                ratio = tp / total
                components.negative_llc *= ratio
                components.negative_memory *= ratio
                components.spinning *= ratio
                components.yielding *= ratio
                components.imbalance *= ratio
                components.coherency *= ratio
            threads.append(components)
        return AccountingReport(
            n_threads=n_threads,
            tp_cycles=tp,
            threads=threads,
            cores=cores,
            truncated=getattr(sim_result, "truncated", False),
        )
