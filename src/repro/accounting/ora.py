"""Open row arrays (ORAs) for DRAM page-conflict attribution.

One ORA per core remembers, per bank, the page that *this core* opened
most recently (Section 4.1).  When a memory access of the core
encounters a closed page (the bank's open page is not the requested
one) and the ORA shows this core opened the requested page most
recently, another core must have closed it in between — negative
interference.  The accounted cost is the extra work of "writing the
current page back and reopening the original page" (precharge +
activate), i.e. the access's cost over a page hit.
"""

from __future__ import annotations

from repro.sim.memory import PAGE_HIT, DramAccessResult


class OpenRowArray:
    """Per-core most-recently-opened page, per bank."""

    def __init__(self, n_banks: int) -> None:
        self._rows: list[int | None] = [None] * n_banks
        self.n_conflicts_from_others = 0

    def observe(self, access: DramAccessResult) -> bool:
        """Update the ORA with one access by this core; return ``True``
        when the access suffered a page conflict caused by another core.
        """
        bank = access.bank_index
        own_last_page = self._rows[bank]
        self._rows[bank] = access.page_id
        if access.page_outcome == PAGE_HIT:
            return False
        if own_last_page != access.page_id:
            # This core did not have the requested page open from its own
            # point of view, so the conflict is self-inflicted.
            return False
        self.n_conflicts_from_others += 1
        return True

    def row_for_bank(self, bank: int) -> int | None:
        return self._rows[bank]

    def state_dict(self) -> dict:
        return {
            "rows": list(self._rows),
            "n_conflicts_from_others": self.n_conflicts_from_others,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rows = list(state["rows"])
        self.n_conflicts_from_others = state["n_conflicts_from_others"]
