"""Auxiliary tag directories (ATDs) for inter-thread hit/miss detection.

One ATD per core models what that core's *private* LLC of the same size
and associativity would contain, by observing only that core's LLC
accesses (Section 4.1).  Comparing the shared-LLC outcome with the ATD
outcome classifies sharing effects:

* shared **miss** + ATD **hit**  -> *inter-thread miss* (negative
  interference: another thread evicted this core's data);
* shared **hit** + ATD **miss**  -> *inter-thread hit* (positive
  interference: another thread prefetched shared data, Section 4.2).

To bound hardware cost only one in every ``sample_period`` LLC sets is
monitored; totals are extrapolated with the observed sampling factor.
The monitored sets sit at an offset of ``period // 2`` within each
period: data-structure base addresses are page/region aligned, so set 0
(and its neighbours) attract unrepresentative hot lines — lock words,
region headers — that would bias the sampling factor.
"""

from __future__ import annotations

from repro.accounting.interface import INTER_THREAD_HIT, INTER_THREAD_MISS
from repro.config import CacheConfig
from repro.sim.cache import SetAssocCache


class AuxiliaryTagDirectory:
    """Per-core set-sampled private-LLC tag directory."""

    def __init__(self, llc_config: CacheConfig, sample_period: int) -> None:
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.sample_period = sample_period
        self._sample_offset = sample_period // 2
        # Sparse tag store: only 1-in-sample_period sets are ever probed,
        # so per-set state is materialized on first touch instead of
        # paying an O(n_sets) dictionary build per ATD per run.
        self._tags = SetAssocCache(llc_config, sparse=True)
        self.n_sampled_accesses = 0
        self.n_inter_thread_misses = 0
        self.n_inter_thread_hits = 0
        self.n_sampled_load_inter_hits = 0

    def is_sampled(self, set_index: int) -> bool:
        return set_index % self.sample_period == self._sample_offset

    def observe(
        self, line_addr: int, set_index: int, shared_hit: bool, is_load: bool
    ) -> str | None:
        """Record one LLC access by this ATD's core; classify it.

        Returns :data:`INTER_THREAD_MISS`, :data:`INTER_THREAD_HIT`, or
        ``None`` (not sampled, or same outcome in both tag stores).
        """
        if set_index % self.sample_period != self._sample_offset:
            return None
        self.n_sampled_accesses += 1
        atd_hit = self._tags.lookup(line_addr)
        if not atd_hit:
            self._tags.fill(line_addr)
        if shared_hit and not atd_hit:
            self.n_inter_thread_hits += 1
            if is_load:
                self.n_sampled_load_inter_hits += 1
            return INTER_THREAD_HIT
        if not shared_hit and atd_hit:
            self.n_inter_thread_misses += 1
            return INTER_THREAD_MISS
        return None

    def warm(self, line_addr: int, set_index: int) -> None:
        """Pre-fill the ATD during untimed cache warmup (no counters)."""
        if set_index % self.sample_period != self._sample_offset:
            return
        self._tags.warm_fill(line_addr, promote=True)

    def reset(self) -> None:
        """Clear tag state and counters in place for reuse across runs."""
        self._tags.reset()
        self.n_sampled_accesses = 0
        self.n_inter_thread_misses = 0
        self.n_inter_thread_hits = 0
        self.n_sampled_load_inter_hits = 0

    def sampling_factor(self, total_accesses: int) -> float:
        """Total LLC accesses divided by sampled ATD accesses (Section
        4.2); 0 when nothing was sampled."""
        if self.n_sampled_accesses == 0:
            return 0.0
        return total_accesses / self.n_sampled_accesses

    @property
    def tag_store(self):
        """The underlying tag array (exposed for tests); a
        :class:`~repro.sim.cache.SetAssocCache` unless an engine backend
        swapped in an interface-compatible store."""
        return self._tags

    def replace_tag_store(self, store) -> None:
        """Swap in an interface-compatible tag store (the vectorized
        engine's flat-array store), carrying current state across via
        the shared ``state_dict`` format."""
        store.load_state_dict(self._tags.state_dict())
        self._tags = store

    def state_dict(self) -> dict:
        """Sparse tag array (non-empty sampled sets only) plus counters."""
        return {
            "tags": self._tags.state_dict(),
            "n_sampled_accesses": self.n_sampled_accesses,
            "n_inter_thread_misses": self.n_inter_thread_misses,
            "n_inter_thread_hits": self.n_inter_thread_hits,
            "n_sampled_load_inter_hits": self.n_sampled_load_inter_hits,
        }

    def load_state_dict(self, state: dict) -> None:
        self._tags.load_state_dict(state["tags"])
        self.n_sampled_accesses = state["n_sampled_accesses"]
        self.n_inter_thread_misses = state["n_inter_thread_misses"]
        self.n_inter_thread_hits = state["n_inter_thread_hits"]
        self.n_sampled_load_inter_hits = state["n_sampled_load_inter_hits"]
