"""Li et al. backward-branch spin detection (Section 4.3, alternative).

Li, Lebeck and Sorin monitor all backward branches as candidate
spin-loop branches: if the processor state is unchanged since the last
occurrence of the same branch, the loop is considered spinning.  The
paper keeps a compact representation of register-state changes and
treats any non-silent store as a state change; our simulator exposes an
equivalent *state signature* per spin-loop branch (the version of the
synchronization word the loop body observed), so two occurrences with
the same signature mean no observable state change in between.

Spin time is measured exactly as the paper describes: "by keeping a
timestamp at the occurrence of backward branches, and subtracting this
timestamp from the current time (when the same branch is executed and
processor state is unchanged), one can quantify the time spent in spin
loops".  Credit is granted incrementally so overlapping detections do
not double-count.
"""

from __future__ import annotations

from collections import OrderedDict


class _BranchEntry:
    __slots__ = ("signature", "first_seen", "credited_until")

    def __init__(self, signature: int, now: int) -> None:
        self.signature = signature
        self.first_seen = now
        self.credited_until = now


class LiSpinDetector:
    """Per-core backward-branch watch table."""

    def __init__(self, n_entries: int = 16) -> None:
        if n_entries < 1:
            raise ValueError("need at least one table entry")
        self.n_entries = n_entries
        self._table: OrderedDict[int, _BranchEntry] = OrderedDict()
        self.spin_cycles = 0
        self.n_detections = 0

    def on_backward_branch(self, pc: int, state_signature: int, now: int) -> None:
        table = self._table
        entry = table.get(pc)
        if entry is None:
            table[pc] = _BranchEntry(state_signature, now)
            table.move_to_end(pc)
            if len(table) > self.n_entries:
                table.popitem(last=False)
            return
        table.move_to_end(pc)
        if entry.signature == state_signature:
            # Same branch, unchanged state: spinning since last credit.
            self.spin_cycles += now - entry.credited_until
            entry.credited_until = now
            self.n_detections += 1
        else:
            entry.signature = state_signature
            entry.first_seen = now
            entry.credited_until = now

    def on_load(
        self,
        pc: int,
        addr: int,
        value: int,
        writer_core: int,
        now: int,
        self_core: int,
    ) -> None:
        """Load stream is unused by this scheme (protocol no-op)."""

    def flush(self) -> None:
        self._table.clear()

    @property
    def occupancy(self) -> int:
        return len(self._table)

    def state_dict(self) -> dict:
        """Watch-table rows in insertion order (drives LRU eviction)."""
        return {
            "table": [
                [pc, entry.signature, entry.first_seen, entry.credited_until]
                for pc, entry in self._table.items()
            ],
            "spin_cycles": self.spin_cycles,
            "n_detections": self.n_detections,
        }

    def load_state_dict(self, state: dict) -> None:
        self._table.clear()
        for pc, signature, first_seen, credited_until in state["table"]:
            entry = _BranchEntry(signature, first_seen)
            entry.credited_until = credited_until
            self._table[pc] = entry
        self.spin_cycles = state["spin_cycles"]
        self.n_detections = state["n_detections"]
