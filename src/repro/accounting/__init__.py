"""The paper's per-thread cycle-accounting architecture (Section 4):
auxiliary tag directories, open row arrays, spin detectors, and the
per-core accountant that turns raw hardware events into cycle
components.
"""
