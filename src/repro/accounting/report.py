"""Structured output of the cycle-accounting architecture.

The hardware produces raw per-core event counts; "system software then
computes the average penalty per miss from these raw event counts and
performs the interpolation" (Section 4.7).  :class:`AccountingReport`
is the result of that software step: per-thread cycle components, in
cycles, ready for Equation 4.

This module also owns the *partial-run* accounting surface shared by
``repro inspect`` (checkpoints) and interactive sessions
(:meth:`repro.session.Session.peek_stack`): a mid-run state is viewed
through :class:`PartialRunView` — unfinished threads treated as ending
at the current cycle, exactly how the engine watchdog closes out a
truncated run — and rendered by :func:`render_partial_stack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ThreadComponents:
    """Cycle components of one thread during the multi-threaded run.

    All overhead components (``O_{i,j}`` in Equation 2) plus the positive
    interference ``P_i``.  Units are cycles of the multi-threaded run.
    """

    thread_id: int
    negative_llc: float = 0.0
    negative_memory: float = 0.0
    positive_llc: float = 0.0
    spinning: float = 0.0
    yielding: float = 0.0
    imbalance: float = 0.0
    coherency: float = 0.0

    @property
    def total_overhead(self) -> float:
        """Sum of the overhead components ``sum_j O_{i,j}``."""
        return (
            self.negative_llc
            + self.negative_memory
            + self.spinning
            + self.yielding
            + self.imbalance
            + self.coherency
        )

    @property
    def single_thread_estimate_share(self) -> float:
        """This thread's ``T̂_i = Tp - sum_j O_{i,j} + P_i`` needs Tp; the
        caller adds it — this returns ``-sum_j O_{i,j} + P_i``."""
        return -self.total_overhead + self.positive_llc


@dataclass
class CoreRawCounters:
    """Hardware-level raw counts for one core (exposed for analysis)."""

    core_id: int
    llc_accesses: int = 0
    llc_load_misses: int = 0
    llc_load_miss_blocked_stall: int = 0
    sampled_accesses: int = 0
    sampled_inter_thread_misses: int = 0
    sampled_inter_thread_hits: int = 0
    sampled_inter_miss_blocked_stall: int = 0
    memory_interference_stall: int = 0
    spin_detector_cycles: int = 0
    spin_truncated_cycles: int = 0
    coherency_blocked_stall: int = 0
    n_spin_episodes: int = 0
    #: full-tag oracle counts (-1 unless the shadow oracle was enabled)
    oracle_inter_thread_misses: int = -1
    oracle_inter_thread_hits: int = -1

    #: structural sampling factor (one in N sets monitored)
    sample_period: int = 1

    @property
    def sampling_factor(self) -> float:
        """Extrapolation factor for sampled-set counts.

        The paper divides total LLC accesses by sampled ATD accesses;
        with the compressed workloads of this reproduction, the access
        distribution over sets is skewed by hot synchronization lines,
        which biases that dynamic ratio.  The structural factor (the
        sampling period itself) is unbiased for the uniformly-spread
        data traffic the extrapolation actually applies to, and is what
        this model uses; the dynamic ratio is available as
        :attr:`dynamic_sampling_factor` for comparison."""
        if self.sampled_accesses == 0:
            return 0.0
        return float(self.sample_period)

    @property
    def dynamic_sampling_factor(self) -> float:
        """The paper's access-count-based factor."""
        if self.sampled_accesses == 0:
            return 0.0
        return self.llc_accesses / self.sampled_accesses

    @property
    def extrapolated_inter_thread_misses(self) -> float:
        """Sampled inter-thread miss count scaled by the sampling factor
        (comparable to the oracle count when the shadow ATD is on)."""
        return self.sampled_inter_thread_misses * self.sampling_factor

    @property
    def extrapolated_inter_thread_hits(self) -> float:
        return self.sampled_inter_thread_hits * self.sampling_factor

    @property
    def avg_miss_penalty(self) -> float:
        """Average LLC load-miss penalty (the interpolation divisor)."""
        if self.llc_load_misses == 0:
            return 0.0
        return self.llc_load_miss_blocked_stall / self.llc_load_misses


@dataclass
class AccountingReport:
    """Everything the software layer derives from one accounted run."""

    n_threads: int
    tp_cycles: int
    threads: list[ThreadComponents]
    cores: list[CoreRawCounters] = field(default_factory=list)
    #: True when the underlying run was cut short by the watchdog; the
    #: components then describe the partial run up to the cut point
    truncated: bool = False

    def component_totals(self) -> dict[str, float]:
        """Aggregate each component across threads (numerators of Eq. 4)."""
        totals = {
            "negative_llc": 0.0,
            "negative_memory": 0.0,
            "positive_llc": 0.0,
            "spinning": 0.0,
            "yielding": 0.0,
            "imbalance": 0.0,
            "coherency": 0.0,
        }
        for comp in self.threads:
            totals["negative_llc"] += comp.negative_llc
            totals["negative_memory"] += comp.negative_memory
            totals["positive_llc"] += comp.positive_llc
            totals["spinning"] += comp.spinning
            totals["yielding"] += comp.yielding
            totals["imbalance"] += comp.imbalance
            totals["coherency"] += comp.coherency
        return totals

    @property
    def estimated_single_thread_cycles(self) -> float:
        """``T̂_s = sum_i (Tp - sum_j O_{i,j} + P_i)`` (Equation 2)."""
        return sum(
            self.tp_cycles + comp.single_thread_estimate_share
            for comp in self.threads
        )

    @property
    def estimated_speedup(self) -> float:
        """``Ŝ = T̂_s / Tp`` (Equation 3)."""
        if self.tp_cycles == 0:
            return 0.0
        return self.estimated_single_thread_cycles / self.tp_cycles


# ----------------------------------------------------------------------
# partial-run accounting (checkpoints and interactive sessions)
# ----------------------------------------------------------------------


@dataclass
class PartialRunView:
    """The slice of :class:`~repro.sim.engine.SimResult` that
    :meth:`CycleAccountant.report` reads, derived from a run that is
    still in flight (a checkpointed state tree or a paused session).

    ``report`` is pure over these four fields, so viewing a mid-run
    state through this adapter yields the speedup stack *so far*
    without mutating the simulation.
    """

    n_threads: int
    total_cycles: int
    imbalance_cycles: list[int]
    truncated: bool = True


def partial_run_view(
    thread_end_times: list[int | None], now: int
) -> PartialRunView:
    """Build the mid-run result view from per-thread end times.

    ``thread_end_times`` holds each thread's recorded end time, or
    ``None`` for a thread that has not finished — those are treated as
    ending at ``now`` (the frontier cycle), mirroring how the engine
    watchdog closes out a truncated run (Section 4.6 imbalance applies
    to the partial run unchanged).  ``truncated`` is True whenever any
    thread was still running.
    """
    ends = [now if end is None else end for end in thread_end_times]
    total = max(ends, default=now)
    return PartialRunView(
        n_threads=len(ends),
        total_cycles=total,
        imbalance_cycles=[total - end for end in ends],
        truncated=any(end is None for end in thread_end_times),
    )


def render_partial_stack(stack, *, cycle: int, reason: str = "") -> str:
    """One partial speedup stack with its mid-run provenance line.

    The shared formatter behind ``repro inspect`` and the session
    REPL's ``stack`` command: a header naming the cycle the stack was
    cut at (and why), then the standard stack rendering.
    """
    # Lazy import: repro.core.stack imports this module at load time.
    from repro.core.rendering import render_stack

    provenance = f"partial stack at cycle {cycle}"
    if reason:
        provenance += f" ({reason})"
    return provenance + "\n" + render_stack(stack)
