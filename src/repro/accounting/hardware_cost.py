"""Hardware cost model for the accounting architecture (Section 4.7).

The paper reports: 952 bytes per core for the negative/positive
interference accounting (the ATD with a few sampled sets, the ORA, and
raw event counters, per [7]), plus 217 bytes per core for the Tian
et al. spin-detection load table (8 entries of PC, address, loaded
data, a mark bit and a timestamp), i.e. ~1.1KB per core and ~18KB in
total for a 16-core CMP.

This module computes the same budget from first principles so the cost
of configuration variants (bigger LLC, different sampling, larger spin
table) can be evaluated.  The defaults reproduce the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.config import MachineConfig


@dataclass(frozen=True)
class HardwareCostParams:
    """Bit-level sizing assumptions behind the Section 4.7 numbers."""

    #: sampled LLC sets monitored per ATD (hardware sampling is sparser
    #: than the simulation-side default; [7] monitors a few sets only)
    atd_sampled_sets: int = 32
    #: partial tag bits stored per ATD way (plus one valid bit)
    atd_tag_bits: int = 12
    atd_status_bits: int = 1
    #: open row array: row id bits per bank
    ora_row_bits: int = 32
    #: raw event counters (cycle and event counts) per core
    n_counters: int = 22
    counter_bits: int = 32
    #: Tian et al. load table entry: 64b PC + 64b address + 64b data +
    #: 1b mark + 24b timestamp = 217 bits ("217 bytes per core" for the
    #: 8-entry table in the paper's arithmetic)
    spin_pc_bits: int = 64
    spin_addr_bits: int = 64
    spin_data_bits: int = 64
    spin_mark_bits: int = 1
    spin_timestamp_bits: int = 24


@dataclass(frozen=True)
class HardwareCost:
    """Byte budget of the accounting hardware."""

    atd_bytes: int
    ora_bytes: int
    counter_bytes: int
    spin_table_bytes: int
    n_cores: int

    @property
    def interference_bytes_per_core(self) -> int:
        """ATD + ORA + counters (the paper's 952-byte figure)."""
        return self.atd_bytes + self.ora_bytes + self.counter_bytes

    @property
    def per_core_bytes(self) -> int:
        return self.interference_bytes_per_core + self.spin_table_bytes

    @property
    def total_bytes(self) -> int:
        return self.per_core_bytes * self.n_cores

    @property
    def per_core_kb(self) -> float:
        return self.per_core_bytes / 1024.0

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


def estimate_cost(
    machine: MachineConfig, params: HardwareCostParams | None = None
) -> HardwareCost:
    """Compute the accounting hardware budget for a machine config."""
    params = params or HardwareCostParams()
    assoc = machine.llc.assoc
    atd_entry_bits = params.atd_tag_bits + params.atd_status_bits
    atd_bits = params.atd_sampled_sets * assoc * atd_entry_bits
    ora_bits = machine.dram.n_banks * params.ora_row_bits
    counter_bits = params.n_counters * params.counter_bits
    spin_entry_bits = (
        params.spin_pc_bits
        + params.spin_addr_bits
        + params.spin_data_bits
        + params.spin_mark_bits
        + params.spin_timestamp_bits
    )
    spin_bits = machine.accounting.spin_table_entries * spin_entry_bits
    return HardwareCost(
        atd_bytes=ceil(atd_bits / 8),
        ora_bytes=ceil(ora_bits / 8),
        counter_bytes=ceil(counter_bits / 8),
        spin_table_bytes=ceil(spin_bits / 8),
        n_cores=machine.n_cores,
    )


#: The numbers the paper states verbatim, for cross-checking.
PAPER_INTERFERENCE_BYTES_PER_CORE = 952
PAPER_SPIN_TABLE_BYTES_PER_CORE = 217
PAPER_TOTAL_KB_16_CORES = 18.0
