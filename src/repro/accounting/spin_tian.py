"""Tian et al. load-value spin detection (Section 4.3).

The detector watches retired loads through a small per-core table (the
paper sizes it at 8 entries, one per load PC).  A load that returns the
same data from the same address ``threshold`` or more times is *marked*
as possibly belonging to a spin loop.  When a marked load later returns
*different* data, and that data was written by another core (known from
cache-coherence information), the episode is confirmed as spinning and
the time since the first occurrence is added to the spin-cycle count.

The table is physical per-core state, so it is flushed on a context
switch; spin episodes truncated by the synchronization library yielding
to the OS are reported separately via the OS-side hook
(:meth:`repro.accounting.accountant.CycleAccountant.on_spin_truncated`).
"""

from __future__ import annotations

from collections import OrderedDict


class _Entry:
    __slots__ = ("addr", "value", "count", "marked", "timestamp")

    def __init__(self, addr: int, value: int, now: int) -> None:
        self.addr = addr
        self.value = value
        self.count = 1
        self.marked = False
        self.timestamp = now


class TianSpinDetector:
    """Per-core 8-entry load-watch table."""

    def __init__(self, n_entries: int = 8, threshold: int = 3) -> None:
        if n_entries < 1:
            raise ValueError("need at least one table entry")
        if threshold < 2:
            raise ValueError("threshold must be >= 2 (a spin repeats)")
        self.n_entries = n_entries
        self.threshold = threshold
        self._table: OrderedDict[int, _Entry] = OrderedDict()
        self.spin_cycles = 0
        self.n_episodes = 0

    def on_load(
        self,
        pc: int,
        addr: int,
        value: int,
        writer_core: int,
        now: int,
        self_core: int,
    ) -> None:
        """Observe one retired load on this detector's core."""
        table = self._table
        entry = table.get(pc)
        if entry is None:
            table[pc] = _Entry(addr, value, now)
            table.move_to_end(pc)
            if len(table) > self.n_entries:
                table.popitem(last=False)
            return
        table.move_to_end(pc)
        if entry.addr == addr and entry.value == value:
            entry.count += 1
            if entry.count >= self.threshold:
                entry.marked = True
            return
        if entry.marked and entry.addr == addr:
            # A marked (suspected spin) load observed new data; coherence
            # tells us who wrote it.
            if writer_core != self_core and writer_core >= 0:
                self.spin_cycles += now - entry.timestamp
                self.n_episodes += 1
        # Restart observation with the new (addr, value) pair.
        entry.addr = addr
        entry.value = value
        entry.count = 1
        entry.marked = False
        entry.timestamp = now

    def on_repeated_loads(self, pc: int, addr: int, value: int, k: int) -> bool:
        """Observe ``k`` consecutive identical retired loads at once.

        Batch form of :meth:`on_load` for the vectorized engine's spin
        event-horizon jump: applies exactly the state change of ``k``
        successive matching ``on_load`` calls *iff* the watch-table
        entry for ``pc`` already matches ``(addr, value)``; returns
        False — with zero state change — otherwise, so the caller falls
        back to the per-iteration path (which creates/restarts the
        entry).  A detector exposing this method also asserts that its
        scheme ignores the backward-branch stream, so a batched spin
        may skip :meth:`on_backward_branch`.
        """
        entry = self._table.get(pc)
        if entry is None or entry.addr != addr or entry.value != value:
            return False
        self._table.move_to_end(pc)
        entry.count += k
        if entry.count >= self.threshold:
            entry.marked = True
        return True

    def on_backward_branch(self, pc: int, state_signature: int, now: int) -> None:
        """Branch stream is unused by this scheme (protocol no-op)."""

    def flush(self) -> None:
        """Context switch: the table contents belong to the old thread."""
        self._table.clear()

    @property
    def occupancy(self) -> int:
        return len(self._table)

    def state_dict(self) -> dict:
        """Watch-table rows in insertion order (the order drives the
        ``popitem(last=False)`` eviction, so it must survive the trip)."""
        return {
            "table": [
                [pc, entry.addr, entry.value, entry.count,
                 entry.marked, entry.timestamp]
                for pc, entry in self._table.items()
            ],
            "spin_cycles": self.spin_cycles,
            "n_episodes": self.n_episodes,
        }

    def load_state_dict(self, state: dict) -> None:
        self._table.clear()
        for pc, addr, value, count, marked, timestamp in state["table"]:
            entry = _Entry(addr, value, timestamp)
            entry.count = count
            entry.marked = marked
            self._table[pc] = entry
        self.spin_cycles = state["spin_cycles"]
        self.n_episodes = state["n_episodes"]
