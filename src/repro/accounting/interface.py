"""Hook interface between the simulated chip and the accounting hardware.

The simulator is oblivious to *how* cycle components are measured: it
reports raw, hardware-observable events through this interface, exactly
the events the paper's proposed hardware sees.  A
:class:`NullAccountant` is used for runs that do not need accounting
(e.g. the single-threaded reference run), keeping the hot path free of
``if accountant is not None`` checks.
"""

from __future__ import annotations

# Classifications returned by the ATD probe.
INTER_THREAD_MISS = "inter_thread_miss"
INTER_THREAD_HIT = "inter_thread_hit"


class NullAccountant:
    """No-op implementation of every accounting hook."""

    enabled = False

    def classify_llc_access(
        self,
        core_id: int,
        line_addr: int,
        set_index: int,
        shared_hit: bool,
        is_load: bool,
    ) -> str | None:
        """ATD probe on every LLC access; returns a classification for
        sampled sets ("a hit in the shared LLC that results in a miss in
        the private ATD is classified as an inter-thread hit", and the
        converse an inter-thread miss) or ``None``."""
        return None

    def warm_llc_access(self, core_id: int, line_addr: int, set_index: int) -> None:
        """Untimed cache-warmup access (pre-fills the ATD tag state so the
        measured region starts from a steady state, like the paper's
        measurement of the parallel fraction after initialization)."""

    def note_dram_access(self, core_id: int, dram_result) -> bool:
        """Update the core's open row array with one DRAM access; returns
        whether the ORA attributes this access's page conflict to another
        core (Section 4.1)."""
        return False

    def on_miss_blocked(
        self,
        core_id: int,
        blocked_cycles: int,
        classification: str | None,
        dram_result,
        is_load: bool,
        ora_conflict: bool = False,
    ) -> None:
        """An LLC miss blocked the ROB head for ``blocked_cycles``.

        Called once per demand miss that actually stalled the core; this
        is the paper's gating rule ("we only account interference cycles
        in case a miss blocks the ROB head and causes the ROB to fill
        up").  ``dram_result`` is the :class:`DramAccessResult` with the
        bus/bank/page attribution used for memory interference and the
        ORA update."""

    def on_retired_load(
        self,
        core_id: int,
        pc: int,
        addr: int,
        value_version: int,
        writer_core: int,
        now: int,
    ) -> None:
        """Every retired load, feeding the Tian et al. spin detector."""

    def on_backward_branch(
        self, core_id: int, pc: int, state_signature: int, now: int
    ) -> None:
        """Spin-loop backward branch, feeding the Li et al. detector."""

    def on_coherency_miss(self, core_id: int, blocked_cycles: int) -> None:
        """Tag-hit-but-invalid L1 miss (Section 4.5, optional)."""

    def on_spin_truncated(self, core_id: int, elapsed_cycles: int) -> None:
        """The synchronization library abandoned a spin loop to yield
        after ``elapsed_cycles`` of spinning (OS-side hook; hardware
        detectors only observe episodes terminated by a value change)."""

    def on_context_switch(self, core_id: int) -> None:
        """A different thread was switched onto the core: flush the
        per-core spin-detection state (it is physical, per-core HW)."""

    def on_yield_interval(self, thread_id: int, t_out: int, t_in: int) -> None:
        """Thread was scheduled out from ``t_out`` to ``t_in`` while
        waiting on a lock or barrier (Section 4.4)."""


NULL_ACCOUNTANT = NullAccountant()
