"""repro — speedup stacks for multi-threaded applications.

A from-scratch reproduction of *"Speedup Stacks: Identifying Scaling
Bottlenecks in Multi-Threaded Applications"* (Eyerman, Du Bois,
Eeckhout — ISPASS 2012): a simulated chip-multiprocessor, the paper's
per-thread cycle-accounting hardware (ATDs, ORAs, spin detectors), the
speedup-stack analysis itself, a 28-benchmark synthetic workload suite
mirroring Figure 6, and drivers for every figure in the evaluation.

Quickstart::

    from repro import (
        MachineConfig, build_program, by_name, run_experiment, render_stack,
    )

    spec = by_name("facesim_medium")
    machine = MachineConfig(n_cores=16)
    result = run_experiment(
        spec.full_name, machine,
        build_program(spec, 16), build_program(spec, 1),
    )
    print(render_stack(result.stack))
"""

from repro import components
from repro._version import repro_version
from repro.accounting.accountant import CycleAccountant
from repro.accounting.hardware_cost import (
    HardwareCost,
    HardwareCostParams,
    estimate_cost,
)
from repro.accounting.report import AccountingReport, ThreadComponents
from repro.config import (
    KB,
    MB,
    ON_ERROR_MODES,
    AccountingConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    ExperimentConfig,
    MachineConfig,
    RunConfig,
    SchedConfig,
    SyncConfig,
    WorkloadConfig,
    dump_config,
    load_config,
    machine_from_dict,
    machine_to_dict,
)
from repro.core.analysis import LlcInterference, llc_interference
from repro.core.cpi import CpiStack, cpi_stacks, render_cpi_stacks
from repro.core.classification import (
    ClassificationTree,
    ClassifiedBenchmark,
    classify_stack,
    scaling_class,
)
from repro.core.components import Component, STACK_ORDER
from repro.core.rendering import (
    render_interference,
    render_speedup_curve,
    render_stack,
    render_stack_series,
    render_tree,
    render_validation_table,
)
from repro.core.regions import (
    Region,
    RegionObserver,
    RegionResult,
    region_stacks,
    run_region_experiment,
)
from repro.core.stack import SpeedupStack, build_stack
from repro.core.whatif import (
    Opportunity,
    Projection,
    advice,
    optimization_opportunities,
    project,
    remove_component,
)
from repro.core.validation import (
    ValidationRow,
    errors_by_thread_count,
    mean_absolute_error,
    validation_row,
)
from repro.errors import (
    ConfigError,
    DeadlockError,
    ExperimentError,
    LivelockError,
    ReproError,
    SimulationError,
    TraceParseError,
)
from repro.experiments.multiprogram import (
    MultiProgramResult,
    ProgramSlowdown,
    render_multiprogram,
    run_multiprogram,
)
from repro.experiments.perthread import (
    PerThreadValidation,
    ThreadValidation,
    render_per_thread,
    validate_per_thread,
)
from repro.experiments.runner import (
    BatchRunner,
    CellOutcome,
    ExperimentResult,
    RunPolicy,
    SweepReport,
    accounted_snapshot,
    run_accounted,
    run_experiment,
    run_reference,
)
from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    CheckpointReport,
    cell_descriptor,
    inspect_checkpoint,
    load_checkpoint,
    read_header,
    resume_simulation,
    save_checkpoint,
)
from repro.observability import (
    EventBus,
    MetricsRegistry,
    ProgressReporter,
    TimelineRecorder,
    harvest_cell_metrics,
    trace_cell,
)
from repro.robustness import (
    EngineSnapshot,
    FaultInjector,
    SweepJournal,
    capture_snapshot,
    make_fault,
)
from repro.experiments.scenarios import (
    ExperimentCache,
    classification_tree,
    ferret_core_sweep,
    interference_breakdown,
    llc_size_sweep,
    speedup_curves,
    stack_series,
    validation_sweep,
)
from repro.session import Session, SessionShell, SimulationKernel
from repro.sim.engine import SimResult, Simulation, simulate
from repro.sim.partition import WayPartitionedCache, equal_quotas
from repro.sim.trace import RunInterval, TraceRecorder
from repro.sync.profile import (
    BarrierProfile,
    LockProfile,
    barrier_profiles,
    lock_profiles,
    render_sync_profile,
)
from repro.workloads.pipeline import build_pipeline_program
from repro.workloads.program import (
    BarrierWait,
    Compute,
    FutexWait,
    FutexWake,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
    YieldCpu,
)
from repro.workloads.tracefile import (
    dump_program,
    dump_trace,
    load_trace,
    parse_trace,
)
from repro.workloads.spec import BenchmarkSpec, build_program
from repro.workloads.suite import (
    FIG5_BENCHMARKS,
    FIG8_BENCHMARKS,
    SUITE,
    by_name,
    sweep_cells,
)

__version__ = repro_version()

__all__ = [
    "accounted_snapshot",
    "AccountingConfig",
    "AccountingReport",
    "advice",
    "barrier_profiles",
    "BarrierProfile",
    "BarrierWait",
    "BatchRunner",
    "BenchmarkSpec",
    "build_pipeline_program",
    "build_program",
    "build_stack",
    "by_name",
    "CacheConfig",
    "capture_snapshot",
    "cell_descriptor",
    "CellOutcome",
    "CheckpointHook",
    "CheckpointPolicy",
    "CheckpointReport",
    "classification_tree",
    "components",
    "ClassificationTree",
    "ClassifiedBenchmark",
    "classify_stack",
    "Component",
    "Compute",
    "ConfigError",
    "CoreConfig",
    "cpi_stacks",
    "CpiStack",
    "CycleAccountant",
    "DeadlockError",
    "DramConfig",
    "dump_config",
    "dump_program",
    "dump_trace",
    "EngineSnapshot",
    "equal_quotas",
    "errors_by_thread_count",
    "estimate_cost",
    "EventBus",
    "ExperimentCache",
    "ExperimentConfig",
    "ExperimentError",
    "ExperimentResult",
    "FaultInjector",
    "ferret_core_sweep",
    "FIG5_BENCHMARKS",
    "FIG8_BENCHMARKS",
    "FutexWait",
    "FutexWake",
    "HardwareCost",
    "HardwareCostParams",
    "harvest_cell_metrics",
    "inspect_checkpoint",
    "interference_breakdown",
    "KB",
    "LivelockError",
    "llc_interference",
    "llc_size_sweep",
    "LlcInterference",
    "Load",
    "load_checkpoint",
    "load_config",
    "load_trace",
    "lock_profiles",
    "LockAcquire",
    "LockProfile",
    "LockRelease",
    "MachineConfig",
    "machine_from_dict",
    "machine_to_dict",
    "make_fault",
    "MB",
    "mean_absolute_error",
    "MetricsRegistry",
    "MultiProgramResult",
    "ON_ERROR_MODES",
    "Opportunity",
    "optimization_opportunities",
    "parse_trace",
    "PerThreadValidation",
    "Program",
    "ProgramSlowdown",
    "ProgressReporter",
    "project",
    "Projection",
    "read_header",
    "Region",
    "region_stacks",
    "RegionObserver",
    "RegionResult",
    "remove_component",
    "render_cpi_stacks",
    "render_interference",
    "render_multiprogram",
    "render_per_thread",
    "render_speedup_curve",
    "render_stack",
    "render_stack_series",
    "render_sync_profile",
    "render_tree",
    "render_validation_table",
    "repro_version",
    "ReproError",
    "resume_simulation",
    "run_accounted",
    "run_experiment",
    "run_multiprogram",
    "run_reference",
    "run_region_experiment",
    "RunConfig",
    "RunInterval",
    "RunPolicy",
    "save_checkpoint",
    "scaling_class",
    "SchedConfig",
    "Session",
    "SessionShell",
    "SimResult",
    "simulate",
    "Simulation",
    "SimulationError",
    "SimulationKernel",
    "speedup_curves",
    "SpeedupStack",
    "STACK_ORDER",
    "stack_series",
    "Store",
    "SUITE",
    "sweep_cells",
    "SweepJournal",
    "SweepReport",
    "SyncConfig",
    "ThreadComponents",
    "ThreadValidation",
    "TimelineRecorder",
    "trace_cell",
    "TraceParseError",
    "TraceRecorder",
    "validate_per_thread",
    "validation_row",
    "validation_sweep",
    "ValidationRow",
    "WayPartitionedCache",
    "WorkloadConfig",
    "YieldCpu",
]
