"""Durable filesystem work queue for distributed sweeps.

The execution layer the ROADMAP calls "take sweeps distributed":
workers lease cells under a TTL, renew through heartbeats, crash-resume
from the checkpoint files, and a reclaimer guarantees no killed or hung
worker ever strands a cell — all on atomic renames over a shared
directory, no external services.  See ``docs/distributed.md`` for the
queue layout, the lease state machine, and the failure matrix.

* :mod:`repro.queue.store` — :class:`QueueStore`, the on-disk state
  machine (pending → leased → done/failed/quarantined);
* :mod:`repro.queue.worker` — :class:`QueueWorker` /
  :func:`run_worker`, the ``repro worker`` process loop;
* :mod:`repro.queue.driver` — :func:`run_queue_sweep`, the parent that
  spawns workers and merges the byte-identical journal.
"""

from repro.queue.driver import (
    QueueCellResult,
    StackView,
    run_queue_sweep,
)
from repro.queue.store import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    POISON_CELL,
    QUARANTINED,
    Lease,
    QueueCounts,
    QueueStore,
    ReclaimEvent,
)
from repro.queue.worker import QueueWorker, result_record, run_worker

__all__ = [
    "DONE",
    "FAILED",
    "LEASED",
    "PENDING",
    "POISON_CELL",
    "QUARANTINED",
    "Lease",
    "QueueCellResult",
    "QueueCounts",
    "QueueStore",
    "QueueWorker",
    "ReclaimEvent",
    "StackView",
    "result_record",
    "run_queue_sweep",
    "run_worker",
]
