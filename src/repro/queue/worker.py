"""Queue worker: claim → run → complete, forever, and die gracefully.

A :class:`QueueWorker` attaches to a queue directory and loops:

1. claim the first claimable pending cell (single-winner rename);
2. start a renewal thread that extends the lease every TTL/3 and
   refreshes the worker's heartbeat file;
3. run the cell through the standard
   :class:`~repro.experiments.runner.BatchRunner` protocol — faults,
   retry-with-backoff, and crucially *checkpoint resume*: a cell
   reclaimed from a dead worker picks up that worker's config-hash-
   guarded checkpoint and continues from the saved cycle instead of
   cycle 0;
4. commit the terminal record with a fencing-token check — a worker
   whose lease expired mid-run (stalled heartbeat, long GC pause)
   discovers it here and discards its result; the new owner recomputes
   the byte-identical record.

Idle workers run the reclaimer, so a fleet of bare ``repro worker``
processes is self-sufficient: no parent needed for liveness, only for
the final journal merge.  A worker exits 0 once every cell is terminal,
and :data:`~repro.robustness.drain.EXIT_DRAINED` when drained by
SIGTERM/SIGINT — mid-cell the engine checkpoints first (when
checkpointing is armed), then the lease is released with no expiry
penalty.

Chaos hooks (test-only, armed via environment variables, firing at
most once per queue thanks to the store's one-shot markers):

* ``REPRO_TEST_KILL_CELL=<key>`` — ``os._exit(17)`` at claim time,
  before any work: the reclaim path must recover a cell that never
  even started.
* ``REPRO_TEST_KILL_AFTER_SAVE=<key>`` — ``os._exit(29)`` right after
  the first periodic checkpoint save of that cell: the recovering
  worker *must* resume from a cycle > 0 (the acceptance criterion for
  mid-cell crash-resume).
* ``REPRO_TEST_STALL_HEARTBEAT=<key>`` — the renewal thread silently
  stops renewing while holding that cell, simulating a hung worker;
  the reclaimer takes the lease and the worker's completion loses the
  fencing-token check.
"""

from __future__ import annotations

import logging
import os
import threading
import time

from repro.checkpoint import read_header
from repro.core.components import STACK_ORDER
from repro.errors import CheckpointError
from repro.experiments.runner import BatchRunner, CELL_OK
from repro.observability.spans import SpanRecorder, maybe_span
from repro.parallel import CellSpec, WorkerCaches
from repro.queue.store import Lease, QueueStore
from repro.robustness.drain import (
    EXIT_DRAINED,
    DrainController,
    DrainRequested,
)

logger = logging.getLogger(__name__)

KILL_AT_CLAIM_ENV = "REPRO_TEST_KILL_CELL"
KILL_AFTER_SAVE_ENV = "REPRO_TEST_KILL_AFTER_SAVE"
STALL_HEARTBEAT_ENV = "REPRO_TEST_STALL_HEARTBEAT"

#: distinct exit codes for the chaos kills (assertable in tests)
KILL_AT_CLAIM_EXIT = 17
KILL_AFTER_SAVE_EXIT = 29


class _KillAfterSaveHook:
    """Checkpoint-hook wrapper that hard-kills the process right after
    the first successful periodic save (chaos hook)."""

    def __init__(self, inner) -> None:
        self.inner = inner

    @property
    def path(self):
        return self.inner.path

    @property
    def descriptor(self):
        return self.inner.descriptor

    @property
    def n_saves(self):
        return self.inner.n_saves

    @property
    def last_header(self):
        return self.inner.last_header

    def due(self, now: int) -> bool:
        return self.inner.due(now)

    def wants(self, reason: str) -> bool:
        return self.inner.wants(reason)

    def save(self, sim, reason: str):
        header = self.inner.save(sim, reason)
        if reason == "interval":
            os._exit(KILL_AFTER_SAVE_EXIT)
        return header


class _QueueRunner(BatchRunner):
    """BatchRunner with the kill-after-save chaos hook spliced into the
    cell's checkpoint chain (see module doc)."""

    kill_after_save_key: str | None = None

    def _cell_checkpoint(self, spec, n_threads, machine, fault_info, attempt):
        hook = super()._cell_checkpoint(
            spec, n_threads, machine, fault_info, attempt
        )
        key = f"{spec.full_name}:{n_threads}"
        if hook is not None and key == self.kill_after_save_key:
            return _KillAfterSaveHook(hook)
        return hook


class _LeaseRenewer(threading.Thread):
    """Renews one lease every TTL/3 until stopped (or told to stall).

    With ``spans`` attached each renewal is recorded retroactively —
    :meth:`SpanRecorder.record` is thread-safe, and retroactive rows
    keep the renewer's spans off the worker thread's parent stack.
    """

    def __init__(
        self, store: QueueStore, lease: Lease, stall: bool = False,
        spans: SpanRecorder | None = None,
    ) -> None:
        super().__init__(name=f"lease-renew-{lease.key}", daemon=True)
        self.store = store
        self.lease = lease
        self.stall = stall
        self.spans = spans
        self.lost = threading.Event()
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.store.lease_ttl_s)

    def run(self) -> None:
        interval = self.store.lease_ttl_s / 3.0
        while not self._halt.wait(interval):
            if self.stall:
                logger.warning(
                    "chaos: stalling heartbeat for %s", self.lease.key
                )
                return
            t0 = self.spans.now_us() if self.spans is not None else 0
            renewed = self.store.renew(self.lease)
            if self.spans is not None:
                self.spans.record(
                    "queue.lease_renew", "queue",
                    t0, self.spans.now_us() - t0,
                    key=self.lease.key, renewed=renewed,
                )
            if not renewed:
                logger.warning(
                    "lease on %s lost (reclaimed); result will be "
                    "discarded at completion", self.lease.key,
                )
                self.lost.set()
                return


def result_record(outcome, resumed_from_cycle: int | None = None) -> dict:
    """Reduce a :class:`~repro.experiments.runner.CellOutcome` to the
    terminal queue record (journal-shaped fields + display extras)."""
    if outcome.status == CELL_OK:
        result = outcome.result
        record = {
            "status": "ok",
            "attempts": outcome.attempts,
            "total_cycles": result.mt_result.total_cycles,
            "truncated": result.mt_result.truncated,
        }
        if outcome.metrics is not None:
            record["metrics"] = outcome.metrics
        # display/diagnostic extras: never merged into the journal
        record["actual_speedup"] = result.stack.actual_speedup
        record["stack_truncated"] = result.stack.truncated
        # the full component breakdown (deterministic), so `repro
        # report` can render the speedup stacks of a queue sweep
        segments = result.stack.segments()
        record["estimated_speedup"] = result.stack.estimated_speedup
        record["stack_segments"] = {
            comp.label: segments[comp] for comp in STACK_ORDER
        }
        if resumed_from_cycle is not None:
            record["resumed_from_cycle"] = resumed_from_cycle
        return record
    return {
        "status": "failed",
        "attempts": outcome.attempts,
        "error": outcome.error or "",
        "error_type": outcome.error_type or "",
        "snapshot": outcome.snapshot,
    }


class QueueWorker:
    """One worker process loop over a queue directory."""

    def __init__(
        self,
        store: QueueStore,
        worker_id: str | None = None,
        drain: DrainController | None = None,
        poll_s: float = 0.05,
        metrics=None,
    ) -> None:
        self.store = store
        if metrics is None and store.collect_metrics:
            # the parent sweep runs with a metrics registry: harvest
            # per-cell sim.* metrics here so the merged journal matches
            # a serial instrumented run byte for byte
            from repro.observability.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.drain = drain or DrainController()
        self.poll_s = poll_s
        self.metrics = metrics
        self.cells_run = 0
        # the same warm-cache layer pool workers use (runner per
        # (policy, scale, machine) family, memoized machine parse), so
        # a queue worker amortizes reference runs and trace decodes
        # across its claimed cells identically; metrics/drain are
        # per-worker constants, which is exactly what WorkerCaches
        # requires of runner kwargs
        self._caches = WorkerCaches()

    # -- cell execution -------------------------------------------------

    def _runner(self, cell: CellSpec) -> _QueueRunner:
        return self._caches.runner(
            self.store.policy,
            cell.scale,
            cell.machine_json,
            runner_cls=_QueueRunner,
            metrics=self.metrics,
            drain=self.drain,
        )

    def _run_cell(
        self, lease: Lease, spans: SpanRecorder | None = None
    ) -> dict:
        cell = lease.cell
        runner = self._runner(cell)
        runner.kill_after_save_key = None
        if os.environ.get(KILL_AFTER_SAVE_ENV) == cell.key:
            if self.store.chaos_armed("kill-after-save", cell.key):
                runner.kill_after_save_key = cell.key
        if cell.fault is not None:
            runner.fault_plan = {cell.key: (cell.fault, cell.fault_seed)}
        else:
            runner.fault_plan = {}
        resumed_from = None
        original_try_resume = runner._try_resume

        def _noting_try_resume(hook, spec):
            nonlocal resumed_from
            sim = original_try_resume(hook, spec)
            if sim is not None:
                try:
                    resumed_from = read_header(hook.path)["cycle"]
                except (CheckpointError, OSError, KeyError):
                    resumed_from = None
            return sim

        runner._try_resume = _noting_try_resume
        # the cell's own spans (trace.decode, engine.advance, ...) nest
        # under queue.run via the runner's thread-local span stack;
        # runner.spans is a mutable attribute outside the WorkerCaches
        # key, re-pointed per cell exactly like the pool workers do
        runner.spans = spans
        try:
            with maybe_span(spans, "queue.run", cat="queue", key=cell.key):
                outcome = runner.run_cell(cell.spec, cell.n_threads)
        finally:
            runner.spans = None
            runner._try_resume = original_try_resume
        return result_record(outcome, resumed_from_cycle=resumed_from)

    # -- the loop -------------------------------------------------------

    def _heartbeat(self, key: str | None) -> None:
        try:
            self.store.write_worker_heartbeat(self.worker_id, {
                "worker": self.worker_id,
                "pid": os.getpid(),
                "timestamp": time.time(),
                "current_cell": key,
                "cells_run": self.cells_run,
            })
        except OSError:
            logger.debug("worker heartbeat write failed", exc_info=True)

    def run(self, run_reclaimer: bool = True) -> int:
        """Work until the queue is fully terminal (0) or a drain signal
        arrives (:data:`EXIT_DRAINED`)."""
        store = self.store
        logger.info(
            "worker %s attached to %s (%d cells, TTL %.1fs)",
            self.worker_id, store.root, len(store.order),
            store.lease_ttl_s,
        )
        while True:
            if self.drain.requested:
                self._heartbeat(None)
                return EXIT_DRAINED
            # per-cell recorder, created before claim so the claim span
            # can be recorded retroactively once the winner is known;
            # discarded when the claim comes back empty
            recorder = (
                SpanRecorder(origin=self.worker_id)
                if store.collect_spans else None
            )
            t_claim = recorder.now_us() if recorder is not None else 0
            lease = store.claim(self.worker_id)
            if lease is None:
                recorder = None
                if run_reclaimer:
                    store.reclaim_expired()
                if store.all_terminal():
                    self._heartbeat(None)
                    logger.info(
                        "worker %s: queue drained (%d cells run here)",
                        self.worker_id, self.cells_run,
                    )
                    return 0
                self.drain.wait(self.poll_s)
                continue
            if recorder is not None:
                recorder.record(
                    "queue.claim", "queue",
                    t_claim, recorder.now_us() - t_claim, key=lease.key,
                )
            if os.environ.get(KILL_AT_CLAIM_ENV) == lease.key:
                if store.chaos_armed("kill-at-claim", lease.key):
                    os._exit(KILL_AT_CLAIM_EXIT)
            self._heartbeat(lease.key)
            stall = os.environ.get(STALL_HEARTBEAT_ENV) == lease.key and (
                store.chaos_armed("stall-heartbeat", lease.key)
            )
            renewer = _LeaseRenewer(store, lease, stall=stall, spans=recorder)
            renewer.start()
            try:
                record = self._run_cell(lease, spans=recorder)
            except DrainRequested as exc:
                renewer.stop()
                released = store.release(lease)
                logger.warning(
                    "worker %s drained (%s) mid-cell %s: lease %s%s",
                    self.worker_id, exc.reason, lease.key,
                    "released" if released else "already lost",
                    ", checkpoint saved" if exc.saved else "",
                )
                self._heartbeat(None)
                return EXIT_DRAINED
            renewer.stop()
            if recorder is not None:
                # attached after the renewer stops so late lease-renew
                # rows are included; the driver's merge absorbs this key
                # and never journals it (spans are wall-clock)
                record["spans"] = recorder.to_dicts()
            self.cells_run += 1
            if not store.complete(lease, record):
                logger.warning(
                    "worker %s: lost lease on %s before completion; "
                    "discarding result (new owner recomputes it)",
                    self.worker_id, lease.key,
                )
            self._heartbeat(None)


def run_worker(
    queue_dir: str,
    worker_id: str | None = None,
    drain: DrainController | None = None,
    poll_s: float = 0.05,
) -> int:
    """Entry point behind ``repro worker <queue-dir>``."""
    store = QueueStore(queue_dir)
    worker = QueueWorker(
        store, worker_id=worker_id, drain=drain, poll_s=poll_s
    )
    return worker.run()
