"""Queue sweep driver: spawn workers, watch the queue, merge the journal.

The parent process behind ``repro sweep --backend queue``:

1. create (or, with ``--resume``, attach to) the
   :class:`~repro.queue.store.QueueStore`, enqueueing every cell the
   journal does not already record as ok;
2. spawn ``workers`` subprocesses (``repro worker <queue-dir>``) — and
   respawn any that die, within a budget, emitting
   :class:`~repro.observability.events.WorkerCrashed`;
3. run the reclaimer and translate queue state transitions into the
   standard sweep event stream (``CellStarted`` / ``CellFinished`` /
   ``LeaseExpired`` / ``CellRequeued`` / ``CellQuarantined``) and
   ``runtime.*`` metrics, so ``--progress`` / ``--heartbeat`` work
   unchanged;
4. once every cell is terminal, merge the results into the
   :class:`~repro.robustness.journal.SweepJournal` **in canonical
   (manifest) order** — the journal file is byte-identical to a serial
   sweep's no matter how many workers ran, died, or stalled, because
   cells are deterministic and journal fields come from the same
   in-cell values serial writes.

A drain signal (SIGINT/SIGTERM via the attached
:class:`~repro.robustness.drain.DrainController`) forwards SIGTERM to
every worker, waits for them to drain (finish or checkpoint + release
their lease), merges what is terminal, and returns with
``report.interrupted`` — re-running with ``--resume`` finishes the
rest.
"""

from __future__ import annotations

import logging
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, ExperimentError
from repro.experiments.runner import (
    CELL_FAILED,
    CELL_OK,
    CELL_RESUMED,
    CellOutcome,
    RunPolicy,
    SweepReport,
)
from repro.observability.events import (
    CellFinished,
    CellQuarantined,
    CellRequeued,
    CellStarted,
    LeaseExpired,
    SweepFinished,
    SweepStarted,
    WorkerCrashed,
    WorkerHeartbeat,
)
from repro.observability.spans import maybe_span
from repro.parallel import CellSpec
from repro.queue.store import (
    DONE,
    LEASED,
    MANIFEST_NAME,
    POISON_CELL,
    QUARANTINED,
    QueueStore,
    TERMINAL_STATES,
)
from repro.robustness.journal import SweepJournal

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class StackView:
    """The slice of a SpeedupStack the sweep CLI renders for an ok
    cell; rebuilt from the done record (the full stack stays with the
    worker that computed it)."""

    actual_speedup: float | None
    truncated: bool


@dataclass(frozen=True)
class QueueCellResult:
    """Display shim standing in for ``ExperimentResult`` in queue-sweep
    outcomes (same ``.stack`` surface the CLI reads)."""

    name: str
    n_threads: int
    stack: StackView


def _spawn_worker(queue_dir: Path, index: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker", str(queue_dir),
            "--worker-id", f"w{index}",
        ],
        stdout=subprocess.DEVNULL,
        env=env,
    )


class _WorkerFleet:
    """Spawn/respawn bookkeeping for the worker subprocesses."""

    def __init__(self, queue_dir: Path, n: int, max_respawns: int, spawn):
        self.queue_dir = queue_dir
        self.spawn = spawn
        self.max_respawns = max_respawns
        self.respawns = 0
        self.crashes = 0
        self._next_index = 0
        self.procs: list[subprocess.Popen] = [
            self._spawn() for _ in range(n)
        ]

    def _spawn(self) -> subprocess.Popen:
        proc = self.spawn(self.queue_dir, self._next_index)
        self._next_index += 1
        return proc

    def reap_and_respawn(self) -> int:
        """Collect dead workers; respawn crashed ones within budget.
        Returns the number of crashes observed this pass."""
        crashed = 0
        alive: list[subprocess.Popen] = []
        for proc in self.procs:
            code = proc.poll()
            if code is None:
                alive.append(proc)
                continue
            if code == 0:
                continue  # clean exit: queue fully terminal
            crashed += 1
            self.crashes += 1
            logger.warning(
                "queue worker pid %d died with exit code %d", proc.pid, code
            )
            if self.respawns < self.max_respawns:
                self.respawns += 1
                alive.append(self._spawn())
            else:
                logger.error(
                    "worker respawn budget (%d) exhausted", self.max_respawns
                )
        self.procs = alive
        return crashed

    @property
    def any_alive(self) -> bool:
        return any(proc.poll() is None for proc in self.procs)

    def terminate(self, grace_s: float) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + grace_s
        for proc in self.procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                logger.warning(
                    "worker pid %d ignored SIGTERM; killing", proc.pid
                )
                proc.kill()
                proc.wait()


def run_queue_sweep(
    cells: list[CellSpec],
    workers: int,
    policy: RunPolicy | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    bus=None,
    metrics=None,
    spans=None,
    *,
    queue_dir: str | Path,
    lease_ttl_s: float = 30.0,
    poison_after: int = 3,
    poll_s: float = 0.1,
    drain=None,
    max_respawns: int | None = None,
    spawn=_spawn_worker,
) -> SweepReport:
    """Run a sweep through the durable work queue (see module doc).

    The drop-in queue counterpart of
    :func:`~repro.parallel.run_parallel_sweep`: same resume semantics,
    same journal records (written by the parent, in canonical order),
    same :class:`SweepReport` shape — ok outcomes carry a
    :class:`QueueCellResult` display shim instead of a full result.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    policy = policy or RunPolicy()
    journal = journal or SweepJournal(None)
    queue_dir = Path(queue_dir)
    if max_respawns is None:
        max_respawns = 3 * workers

    resumed_keys = {
        cell.key for cell in cells
        if resume and journal.completed(cell.name, cell.n_threads)
    }
    live_cells = [cell for cell in cells if cell.key not in resumed_keys]

    if (queue_dir / MANIFEST_NAME).exists():
        if not resume:
            raise ConfigError(
                f"queue already exists at {queue_dir}; pass --resume to "
                "attach to it or choose a fresh --queue-dir"
            )
        store = QueueStore(queue_dir)
        expected = [cell.key for cell in live_cells]
        unknown = [key for key in store.order if key not in set(expected)]
        if unknown:
            raise ConfigError(
                f"queue at {queue_dir} holds cells not in this sweep: "
                f"{unknown[:5]}"
            )
    else:
        store = QueueStore.create(
            queue_dir, live_cells, policy,
            lease_ttl_s=lease_ttl_s,
            poison_after=poison_after,
            collect_metrics=metrics is not None,
            collect_spans=spans is not None,
        )

    if bus is not None:
        bus.emit(SweepStarted(len(cells), workers))
        for key in resumed_keys:
            bus.emit(CellFinished(key, CELL_RESUMED, 0))

    interrupted = False
    if store.order and not store.all_terminal():
        interrupted = _supervise(
            store, queue_dir, workers, bus=bus, metrics=metrics,
            poll_s=poll_s, drain=drain, max_respawns=max_respawns,
            spawn=spawn,
        )

    report = _merge(
        store, cells, resumed_keys, journal,
        bus=bus, metrics=metrics, spans=spans,
        interrupted=interrupted, policy=policy,
    )
    if bus is not None:
        bus.emit(SweepFinished(
            len(report.completed), len(report.failures),
            len(report.resumed),
        ))
    logger.info(
        "queue sweep done (%d workers): %d ok, %d resumed, %d failed%s",
        workers, len(report.completed), len(report.resumed),
        len(report.failures), " [interrupted]" if report.interrupted else "",
    )
    return report


def _supervise(
    store: QueueStore,
    queue_dir: Path,
    workers: int,
    *,
    bus,
    metrics,
    poll_s: float,
    drain,
    max_respawns: int,
    spawn,
) -> bool:
    """Worker fleet + reclaimer + event translation until the queue is
    terminal (returns False) or a drain cuts it short (True)."""
    fleet = _WorkerFleet(queue_dir, workers, max_respawns, spawn)
    started: set[str] = set()
    finished: set[str] = set()
    heartbeats_seen: dict[str, float] = {}
    grace_s = max(5.0, 2 * store.lease_ttl_s)
    try:
        while True:
            if drain is not None and drain.requested:
                logger.warning(
                    "drain: asking %d worker(s) to finish or checkpoint",
                    len(fleet.procs),
                )
                fleet.terminate(grace_s)
                return True
            events = store.reclaim_expired()
            _emit_reclaims(events, bus, metrics)
            _emit_transitions(store, started, finished, bus)
            _emit_heartbeats(store, heartbeats_seen, bus)
            if store.all_terminal():
                return False
            crashed = fleet.reap_and_respawn()
            if crashed:
                if metrics is not None:
                    metrics.counter("runtime.worker_crashes").inc(crashed)
                if bus is not None:
                    suspects = tuple(
                        key for key, state in store.states().items()
                        if state == LEASED
                    )
                    bus.emit(WorkerCrashed(suspects))
            if not fleet.any_alive:
                raise ExperimentError(
                    "queue", 0,
                    "all queue workers died and the respawn budget "
                    f"({max_respawns}) is exhausted; "
                    f"{store.counts().terminal}/{len(store.order)} cells "
                    "terminal — re-run with --resume to continue",
                )
            if drain is not None:
                drain.wait(poll_s)
            else:
                time.sleep(poll_s)
    finally:
        fleet.terminate(grace_s)


def _emit_reclaims(events, bus, metrics) -> None:
    for event in events:
        if metrics is not None:
            metrics.counter("runtime.lease_expiries").inc()
            if event.quarantined:
                metrics.counter("runtime.quarantined").inc()
            else:
                metrics.counter("runtime.requeues").inc()
        if bus is None:
            continue
        bus.emit(LeaseExpired(event.key, event.worker, event.expiries))
        if event.quarantined:
            bus.emit(CellQuarantined(event.key, event.expiries))
        else:
            bus.emit(CellRequeued(event.key, event.delay_s))


def _emit_heartbeats(store, seen: dict[str, float], bus) -> None:
    """Translate fresh worker heartbeat files into
    :class:`WorkerHeartbeat` events (one per new timestamp)."""
    if bus is None:
        return
    for worker, doc in store.worker_heartbeats().items():
        ts = doc.get("timestamp")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            continue
        if seen.get(worker) == ts:
            continue
        seen[worker] = ts
        bus.emit(WorkerHeartbeat(worker, ts, doc.get("current_cell")))


def _emit_transitions(store, started, finished, bus) -> None:
    if bus is None:
        return
    for key, state in store.states().items():
        if state == LEASED and key not in started:
            started.add(key)
            bus.emit(CellStarted(key, 1))
        elif state in TERMINAL_STATES and key not in finished:
            finished.add(key)
            started.add(key)
            status = CELL_OK if state == DONE else CELL_FAILED
            record = store.result(key) or {}
            bus.emit(CellFinished(
                key, status, record.get("attempts", 0)
            ))


def _merge(
    store: QueueStore,
    cells: list[CellSpec],
    resumed_keys: set[str],
    journal: SweepJournal,
    *,
    bus,
    metrics,
    spans=None,
    interrupted: bool,
    policy: RunPolicy,
) -> SweepReport:
    """Fold terminal queue records into the journal in canonical order.

    Journal fields come from the same in-cell values the serial runner
    writes (``attempts`` is in-cell retry attempts — infrastructure
    requeues never touch it), so the merged journal is byte-identical
    to a serial sweep's.  Worker span rows riding on the done records
    are absorbed into the parent recorder here (under one
    ``queue.merge`` span) and never journaled — spans are wall-clock.
    """
    merge_id = (
        spans.start("queue.merge", cat="queue") if spans is not None else None
    )
    try:
        return _merge_inner(
            store, cells, resumed_keys, journal,
            bus=bus, metrics=metrics, spans=spans, merge_id=merge_id,
            interrupted=interrupted, policy=policy,
        )
    finally:
        if spans is not None:
            spans.finish(merge_id)


def _merge_inner(
    store: QueueStore,
    cells: list[CellSpec],
    resumed_keys: set[str],
    journal: SweepJournal,
    *,
    bus,
    metrics,
    spans,
    merge_id,
    interrupted: bool,
    policy: RunPolicy,
) -> SweepReport:
    report = SweepReport(interrupted=interrupted)
    for cell in cells:
        key = cell.key
        if key in resumed_keys:
            report.outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_RESUMED,
            ))
            continue
        record = store.result(key)
        if record is None:
            # non-terminal (drained mid-sweep): nothing to journal; a
            # --resume re-run picks the cell up from the queue
            report.interrupted = True
            continue
        if spans is not None and record.get("spans"):
            spans.absorb(record["spans"], parent=merge_id)
        if record.get("status") == "ok":
            with maybe_span(spans, "journal.write", cat="sweep"):
                journal.record_ok(
                    cell.name, cell.n_threads,
                    attempts=record["attempts"],
                    total_cycles=record["total_cycles"],
                    truncated=record["truncated"],
                    metrics=record.get("metrics"),
                )
            if metrics is not None:
                if record.get("metrics") is not None:
                    metrics.absorb(record["metrics"])
                metrics.counter("runtime.cells_ok").inc()
            report.outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_OK,
                attempts=record["attempts"],
                result=QueueCellResult(
                    name=cell.name,
                    n_threads=cell.n_threads,
                    stack=StackView(
                        actual_speedup=record.get("actual_speedup"),
                        truncated=record.get(
                            "stack_truncated", record["truncated"]
                        ),
                    ),
                ),
                metrics=record.get("metrics"),
            ))
        elif record.get("status") == QUARANTINED:
            error = (
                f"poison cell: {record['expiries']} lease expiries "
                f"(last worker {record.get('last_worker', 'unknown')})"
            )
            with maybe_span(spans, "journal.write", cat="sweep"):
                journal.record_failure(
                    cell.name, cell.n_threads,
                    attempts=record["expiries"],
                    error=error,
                    error_type=POISON_CELL,
                    snapshot=record.get("postmortem"),
                )
            if metrics is not None:
                metrics.counter("runtime.cells_failed").inc()
            report.outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_FAILED,
                attempts=record["expiries"],
                error=error,
                error_type=POISON_CELL,
                snapshot=record.get("postmortem"),
            ))
        else:
            with maybe_span(spans, "journal.write", cat="sweep"):
                journal.record_failure(
                    cell.name, cell.n_threads,
                    attempts=record["attempts"],
                    error=record.get("error", ""),
                    error_type=record.get("error_type", ""),
                    snapshot=record.get("snapshot"),
                )
            if metrics is not None:
                metrics.counter("runtime.cells_failed").inc()
            report.outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_FAILED,
                attempts=record["attempts"],
                error=record.get("error"),
                error_type=record.get("error_type"),
                snapshot=record.get("snapshot"),
            ))
    return report
