"""Durable filesystem work queue: cells as files, renames as commits.

One sweep cell is one JSON file that lives in exactly one state
directory at a time::

    <queue-dir>/
      queue.json      # manifest: cells (canonical order), policy, TTLs
      tmp/            # staging for every transition (same filesystem)
      pending/        # claimable cells (may carry a not_before backoff)
      leased/         # cells owned by a worker under a TTL lease
      done/           # terminal: result record (journal-shaped + extras)
      failed/         # terminal: deterministic in-simulation failure
      quarantined/    # terminal: poison cells (N expired leases)
      workers/        # per-worker liveness heartbeats (advisory)
      chaos/          # one-shot markers for the fault-injection hooks

No external services, no locks, no fcntl: every state transition is an
atomic ``os.rename`` out of the old state followed by an ``os.link``
into the new one, both on the same filesystem.

* **Claims are single-winner.**  Two workers racing to claim the same
  cell both try ``rename(pending/X, tmp/<unique>)``; POSIX guarantees
  exactly one rename sees the source file — the loser gets
  ``FileNotFoundError`` and moves on.
* **Entries never clobber.**  Transitions *into* a state use
  ``os.link`` (fails with ``EEXIST``) instead of rename (which silently
  replaces): a duplicate pending file cannot overwrite a live lease,
  and the first completion of a double-claimed cell wins — safe because
  cells are deterministic, so a second completion is byte-identical
  anyway.
* **Fencing tokens.**  Each claim increments the cell's ``lease_seq``;
  renewals and completions move the lease file out, verify the token,
  and put it back if it belongs to someone else — a worker that lost
  its lease to the reclaimer can never renew or complete over the new
  owner.
* **Everything is rebuildable.**  The manifest holds the full
  serialized :class:`~repro.parallel.CellSpec` of every cell, so a
  corrupt or vanished state file is reconstructed from the manifest by
  the reclaimer instead of stranding the cell.

Durability: record writes go to ``tmp/`` and are fsynced before they
are linked into a state directory, and the state directory is fsynced
after every link/rename — a machine crash leaves each cell either in
its old state or its new one, never in neither (and a cell caught
mid-transition is repaired from the manifest).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.checkpoint import read_header
from repro.errors import CheckpointError, ConfigError
from repro.experiments.runner import RunPolicy
from repro.parallel import CellSpec
from repro.workloads.spec import BenchmarkSpec

logger = logging.getLogger(__name__)

MANIFEST_VERSION = 1
MANIFEST_NAME = "queue.json"

#: cell states == directory names (terminal: done/failed/quarantined)
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
STATES = (PENDING, LEASED, DONE, FAILED, QUARANTINED)
TERMINAL_STATES = frozenset({DONE, FAILED, QUARANTINED})

#: error type recorded for cells quarantined after repeated lease loss
POISON_CELL = "PoisonCellError"


def _fname(key: str) -> str:
    # keys are "<benchmark>:<threads>"; ":" is legal on POSIX but not
    # everywhere, and "@" never appears in suite names
    return key.replace(":", "@") + ".json"


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def cell_to_dict(cell: CellSpec) -> dict:
    return {
        "key": cell.key,
        "spec": asdict(cell.spec),
        "n_threads": cell.n_threads,
        "scale": cell.scale,
        "fault": cell.fault,
        "fault_seed": cell.fault_seed,
        "machine_json": cell.machine_json,
    }


def cell_from_dict(doc: dict) -> CellSpec:
    spec_doc = dict(doc["spec"])
    # JSON has no tuples; BenchmarkSpec is frozen/hashable and needs one
    spec_doc["expected_top"] = tuple(spec_doc.get("expected_top", ()))
    return CellSpec(
        spec=BenchmarkSpec(**spec_doc),
        n_threads=doc["n_threads"],
        scale=doc["scale"],
        fault=doc["fault"],
        fault_seed=doc["fault_seed"],
        machine_json=doc["machine_json"],
    )


@dataclass
class Lease:
    """A worker's claim on one cell (valid until ``deadline``)."""

    key: str
    cell: CellSpec
    worker: str
    token: int
    deadline: float
    #: lease expiries the cell had suffered *before* this claim
    expiries: int = 0


@dataclass
class ReclaimEvent:
    """One reclaimer action: an expired (or corrupt) lease returned to
    pending — or quarantined once it crossed the poison threshold."""

    key: str
    worker: str
    expiries: int
    quarantined: bool = False
    delay_s: float = 0.0
    corrupt: bool = False


@dataclass
class QueueCounts:
    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0
    quarantined: int = 0
    missing: int = 0

    @property
    def terminal(self) -> int:
        return self.done + self.failed + self.quarantined


class QueueStore:
    """One durable work queue rooted at a directory (see module doc)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / MANIFEST_NAME
        if not self._manifest_path.exists():
            raise ConfigError(
                f"no queue manifest at {self._manifest_path}; create the "
                "queue with QueueStore.create (or repro sweep "
                "--backend queue)"
            )
        with open(self._manifest_path) as handle:
            manifest = json.load(handle)
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"unsupported queue manifest version {version!r} "
                f"in {self._manifest_path}"
            )
        self.cells: dict[str, CellSpec] = {}
        self.order: list[str] = []
        for doc in manifest["cells"]:
            cell = cell_from_dict(doc)
            self.cells[cell.key] = cell
            self.order.append(cell.key)
        self.policy = RunPolicy(**manifest["policy"])
        self.lease_ttl_s: float = manifest["lease_ttl_s"]
        self.poison_after: int = manifest["poison_after"]
        self.collect_metrics: bool = manifest.get("collect_metrics", False)
        # absent in pre-span manifests: attaching a new driver to an
        # old queue keeps span collection off
        self.collect_spans: bool = manifest.get("collect_spans", False)
        self._tmp_counter = itertools.count()
        #: reclaimer memory: last expiry count per key (survives corrupt
        #: state files, not process restarts — the manifest does that)
        self._expiry_memory: dict[str, int] = {}
        #: orphan detector: keys seen in *no* state dir last scan
        self._missing_last_scan: set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        cells: list[CellSpec],
        policy: RunPolicy,
        *,
        lease_ttl_s: float = 30.0,
        poison_after: int = 3,
        collect_metrics: bool = False,
        collect_spans: bool = False,
    ) -> "QueueStore":
        """Initialise a queue directory and enqueue every cell.

        Cells a resumed sweep should skip (already ok in the journal)
        must be filtered out *before* creation: the manifest is the
        queue's whole world, and workers exit once every manifest cell
        is terminal.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            raise ConfigError(
                f"queue already exists at {manifest_path}; pass --resume "
                "to attach to it or choose a fresh --queue-dir"
            )
        if lease_ttl_s <= 0:
            raise ConfigError("lease TTL must be > 0 seconds")
        if poison_after < 1:
            raise ConfigError("poison_after must be >= 1 lease expiries")
        seen: set[str] = set()
        for cell in cells:
            if cell.key in seen:
                raise ConfigError(f"duplicate cell key {cell.key!r}")
            seen.add(cell.key)
        root.mkdir(parents=True, exist_ok=True)
        for sub in STATES + ("tmp", "workers", "chaos"):
            (root / sub).mkdir(exist_ok=True)
        manifest = {
            "version": MANIFEST_VERSION,
            "cells": [cell_to_dict(cell) for cell in cells],
            "policy": asdict(policy),
            "lease_ttl_s": lease_ttl_s,
            "poison_after": poison_after,
            "collect_metrics": collect_metrics,
            "collect_spans": collect_spans,
        }
        tmp = root / "tmp" / "manifest.tmp"
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, manifest_path)
        _fsync_dir(root)
        store = cls(root)
        for cell in cells:
            store._put(PENDING, cell.key, {
                "key": cell.key,
                "expiries": 0,
                "lease_seq": 0,
                "not_before": 0.0,
            })
        return store

    # ------------------------------------------------------------------
    # atomic primitives
    # ------------------------------------------------------------------

    def _tmp_path(self, label: str) -> Path:
        return self.root / "tmp" / (
            f"{label}-{os.getpid()}-{next(self._tmp_counter)}.json"
        )

    def _take(self, state: str, key: str) -> tuple[dict | None, Path] | None:
        """Atomically move a cell file out of ``state`` into tmp/.

        Returns ``(record, tmp_path)`` — record is None when the file
        content is corrupt — or None when someone else moved the file
        first (the single-winner race lost cleanly).  The caller owns
        the tmp file and must consume it via :meth:`_put` /
        :meth:`_discard` (or :meth:`_restore` to undo).
        """
        src = self.root / state / _fname(key)
        tmp = self._tmp_path(f"take-{state}")
        try:
            os.rename(src, tmp)
        except FileNotFoundError:
            return None
        try:
            with open(tmp) as handle:
                record = json.load(handle)
        except (json.JSONDecodeError, OSError):
            record = None
        return record, tmp

    def _put(
        self, state: str, key: str, record: dict, consume: Path | None = None
    ) -> bool:
        """Durably link a fresh record into ``state`` (no clobber).

        Returns False — and drops the record — when the slot is already
        occupied (a duplicate from a corrupt double-claim; the resident
        entry is authoritative).  ``consume`` is a tmp file from
        :meth:`_take` to clean up once the new state is durable.
        """
        tmp = self._tmp_path(f"put-{state}")
        with open(tmp, "w") as handle:
            json.dump(record, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        dst = self.root / state / _fname(key)
        try:
            os.link(tmp, dst)
            linked = True
        except FileExistsError:
            linked = False
        finally:
            os.unlink(tmp)
        if linked:
            _fsync_dir(self.root / state)
        if consume is not None:
            self._discard(consume)
        if not linked:
            logger.warning(
                "queue: dropped duplicate %s record for %s "
                "(resident entry wins)", state, key,
            )
        return linked

    @staticmethod
    def _discard(tmp: Path) -> None:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # the lease protocol
    # ------------------------------------------------------------------

    def claim(self, worker: str, now: float | None = None) -> Lease | None:
        """Claim the first claimable pending cell, or None.

        Single-winner under any number of concurrent claimers; cells
        whose ``not_before`` backoff lies in the future are skipped.
        """
        now = time.time() if now is None else now
        for key in self.order:
            if not (self.root / PENDING / _fname(key)).exists():
                continue
            taken = self._take(PENDING, key)
            if taken is None:
                continue  # lost the claim race
            record, tmp = taken
            if record is None:
                # corrupt pending file: rebuild from the manifest
                record = {
                    "key": key,
                    "expiries": self._expiry_memory.get(key, 0),
                    "lease_seq": self._expiry_memory.get(key, 0),
                    "not_before": 0.0,
                }
            if record.get("not_before", 0.0) > now:
                self._put(PENDING, key, record, consume=tmp)
                continue
            token = record.get("lease_seq", 0) + 1
            expiries = record.get("expiries", 0)
            leased = dict(record)
            leased.update(
                lease_seq=token,
                worker=worker,
                token=token,
                deadline=now + self.lease_ttl_s,
                acquired_at=now,
            )
            if not self._put(LEASED, key, leased, consume=tmp):
                continue  # duplicate pending of a live lease: dropped
            return Lease(
                key=key,
                cell=self.cells[key],
                worker=worker,
                token=token,
                deadline=leased["deadline"],
                expiries=expiries,
            )
        return None

    def _take_owned(self, lease: Lease) -> tuple[dict, Path] | None:
        """Move the lease file out iff ``lease`` still owns it."""
        taken = self._take(LEASED, lease.key)
        if taken is None:
            return None
        record, tmp = taken
        if record is None:
            # our own lease file went corrupt on disk: rebuild it from
            # the lease we hold (we are provably the owner — nobody
            # else's token could have been written without taking the
            # file, which we just did)
            record = {
                "key": lease.key,
                "expiries": lease.expiries,
                "lease_seq": lease.token,
                "worker": lease.worker,
                "token": lease.token,
                "deadline": lease.deadline,
            }
            return record, tmp
        if (
            record.get("token") != lease.token
            or record.get("worker") != lease.worker
        ):
            # someone else's lease now — put it back untouched
            self._put(LEASED, lease.key, record, consume=tmp)
            return None
        return record, tmp

    def renew(self, lease: Lease, now: float | None = None) -> bool:
        """Extend the lease TTL; False when the lease was lost."""
        now = time.time() if now is None else now
        owned = self._take_owned(lease)
        if owned is None:
            return False
        record, tmp = owned
        record["deadline"] = now + self.lease_ttl_s
        self._put(LEASED, lease.key, record, consume=tmp)
        lease.deadline = record["deadline"]
        return True

    def release(
        self, lease: Lease, delay_s: float = 0.0, now: float | None = None
    ) -> bool:
        """Return a leased cell to pending (graceful drain: no expiry
        penalty, optional backoff)."""
        now = time.time() if now is None else now
        owned = self._take_owned(lease)
        if owned is None:
            return False
        record, tmp = owned
        pending = {
            "key": lease.key,
            "expiries": record.get("expiries", 0),
            "lease_seq": record.get("lease_seq", lease.token),
            "not_before": now + delay_s,
        }
        return self._put(PENDING, lease.key, pending, consume=tmp)

    def complete(self, lease: Lease, result: dict) -> bool:
        """Commit a terminal result for a leased cell.

        ``result`` must carry ``status`` ("ok" or "failed") plus the
        journal-shaped fields for it; extra display fields (speedup,
        resume cycle) ride along and are ignored by the journal merge.
        Returns False when the lease was lost or another worker already
        completed the cell (first completer wins; duplicates are
        byte-identical by determinism).
        """
        status = result.get("status")
        if status not in ("ok", "failed"):
            raise ValueError(f"result status must be ok/failed: {status!r}")
        owned = self._take_owned(lease)
        if owned is None:
            return False
        record, tmp = owned
        terminal = {"key": lease.key, **result}
        state = DONE if status == "ok" else FAILED
        return self._put(state, lease.key, terminal, consume=tmp)

    # ------------------------------------------------------------------
    # the reclaimer
    # ------------------------------------------------------------------

    def reclaim_expired(
        self, now: float | None = None
    ) -> list[ReclaimEvent]:
        """Return expired (or corrupt) leases to the queue.

        Requeued cells get an exponential-backoff-with-jitter
        ``not_before`` (the run policy's deterministic
        :meth:`~repro.experiments.runner.RunPolicy.backoff_delay`,
        keyed on the cell and its expiry count); a cell that expires
        ``poison_after`` leases is quarantined with a checkpoint
        post-mortem instead of circulating forever.  Also repairs
        orphans: a cell present in *no* state directory (crash exactly
        between two renames, or a corrupt file deleted by hand) is
        re-enqueued from the manifest after two consecutive sightings.
        """
        now = time.time() if now is None else now
        events: list[ReclaimEvent] = []
        for key in self.order:
            path = self.root / LEASED / _fname(key)
            corrupt = False
            try:
                with open(path) as handle:
                    record = json.load(handle)
                expired = record.get("deadline", 0.0) <= now
            except FileNotFoundError:
                continue
            except (json.JSONDecodeError, OSError):
                corrupt, expired = True, True
            if not expired:
                continue
            taken = self._take(LEASED, key)
            if taken is None:
                continue  # completed or renewed under us
            record, tmp = taken
            if record is None:
                corrupt = True
                record = {
                    "key": key,
                    "expiries": self._expiry_memory.get(key, 0),
                    "lease_seq": self._expiry_memory.get(key, 0) + 1,
                }
            elif record.get("deadline", 0.0) > now:
                # renewed between our scan and our take: put it back
                self._put(LEASED, key, record, consume=tmp)
                continue
            expiries = record.get("expiries", 0) + 1
            self._expiry_memory[key] = expiries
            worker = record.get("worker", "unknown")
            if expiries >= self.poison_after:
                self._put(QUARANTINED, key, {
                    "key": key,
                    "status": QUARANTINED,
                    "expiries": expiries,
                    "last_worker": worker,
                    "postmortem": self._postmortem(key),
                }, consume=tmp)
                events.append(ReclaimEvent(
                    key, worker, expiries, quarantined=True, corrupt=corrupt,
                ))
                logger.warning(
                    "queue: quarantined poison cell %s after %d lease "
                    "expiries (last worker %s)", key, expiries, worker,
                )
            else:
                delay = self.policy.backoff_delay(expiries + 1, key)
                self._put(PENDING, key, {
                    "key": key,
                    "expiries": expiries,
                    "lease_seq": record.get("lease_seq", expiries),
                    "not_before": now + delay,
                }, consume=tmp)
                events.append(ReclaimEvent(
                    key, worker, expiries, delay_s=delay, corrupt=corrupt,
                ))
                logger.warning(
                    "queue: lease on %s (worker %s) %s; requeued with "
                    "%.2fs backoff (expiry %d/%d)",
                    key, worker,
                    "corrupt" if corrupt else "expired",
                    delay, expiries, self.poison_after,
                )
        events.extend(self._repair_orphans(now))
        return events

    def _repair_orphans(self, now: float) -> list[ReclaimEvent]:
        states = self.states()
        missing = {key for key in self.order if states[key] is None}
        # two consecutive sightings: a cell mid-transition (rename out
        # done, link in not yet) is absent for microseconds, not scans
        ripe = missing & self._missing_last_scan
        self._missing_last_scan = missing - ripe
        events = []
        for key in sorted(ripe, key=self.order.index):
            expiries = self._expiry_memory.get(key, 0)
            if self._put(PENDING, key, {
                "key": key,
                "expiries": expiries,
                "lease_seq": expiries,
                "not_before": now,
            }):
                events.append(ReclaimEvent(
                    key, "unknown", expiries, corrupt=True,
                ))
                logger.warning(
                    "queue: rebuilt orphaned cell %s from the manifest",
                    key,
                )
        return events

    def _postmortem(self, key: str) -> dict | None:
        """Checkpoint header of the poisoned cell's last partial run —
        the closest thing to an engine snapshot a vanished worker
        leaves behind."""
        if self.policy.checkpoint_dir is None:
            return None
        name, _, n_txt = key.rpartition(":")
        path = Path(self.policy.checkpoint_dir) / f"{name}_n{n_txt}.ckpt"
        if not path.exists():
            return None
        try:
            header = read_header(path)
        except (CheckpointError, OSError):
            return None
        return {
            "checkpoint": str(path),
            "cycle": header.get("cycle"),
            "reason": header.get("reason"),
            "descriptor": header.get("descriptor"),
        }

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def state_of(self, key: str) -> str | None:
        for state in STATES:
            if (self.root / state / _fname(key)).exists():
                return state
        return None

    def states(self) -> dict[str, str | None]:
        present: dict[str, str | None] = dict.fromkeys(self.order)
        for state in STATES:
            for path in (self.root / state).iterdir():
                key = path.name.removesuffix(".json").replace("@", ":")
                if key in present:
                    present[key] = state
        return present

    def counts(self) -> QueueCounts:
        counts = QueueCounts()
        for state in self.states().values():
            if state is None:
                counts.missing += 1
            else:
                setattr(counts, state, getattr(counts, state) + 1)
        return counts

    def all_terminal(self) -> bool:
        return all(
            state in TERMINAL_STATES for state in self.states().values()
        )

    def result(self, key: str) -> dict | None:
        """The terminal record of a cell (done/failed/quarantined)."""
        for state in (DONE, FAILED, QUARANTINED):
            path = self.root / state / _fname(key)
            if path.exists():
                with open(path) as handle:
                    return json.load(handle)
        return None

    # ------------------------------------------------------------------
    # worker heartbeats (advisory telemetry, never load-bearing)
    # ------------------------------------------------------------------

    def write_worker_heartbeat(self, worker: str, doc: dict) -> None:
        path = self.root / "workers" / f"{worker}.json"
        tmp = self._tmp_path("hb")
        with open(tmp, "w") as handle:
            json.dump(doc, handle, indent=1)
        os.replace(tmp, path)
        # append-only history alongside the latest-value file: one JSON
        # line per beat, consumed by `repro report`'s worker-utilization
        # timeline and validated by tools/validate_trace.py.  Advisory
        # like the heartbeat itself — an unwritable history never fails
        # the worker.
        try:
            with open(
                self.root / "workers" / f"{worker}.jsonl", "a"
            ) as handle:
                handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        except OSError:
            logger.warning(
                "queue: could not append heartbeat history for %s", worker
            )

    def worker_heartbeats(self) -> dict[str, dict]:
        """Latest heartbeat doc per worker (corrupt files skipped)."""
        beats: dict[str, dict] = {}
        workers_dir = self.root / "workers"
        try:
            paths = sorted(workers_dir.glob("*.json"))
        except OSError:
            return beats
        for path in paths:
            try:
                with open(path) as handle:
                    doc = json.load(handle)
            except (json.JSONDecodeError, OSError):
                continue
            beats[path.stem] = doc
        return beats

    def worker_heartbeat_history(self) -> dict[str, list[dict]]:
        """Every recorded heartbeat per worker, in write order (torn
        trailing lines dropped)."""
        history: dict[str, list[dict]] = {}
        for path in sorted((self.root / "workers").glob("*.jsonl")):
            docs: list[dict] = []
            try:
                with open(path) as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    docs.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
            history[path.stem] = docs
        return history

    # ------------------------------------------------------------------
    # chaos hooks (one-shot markers so an injected fault fires once)
    # ------------------------------------------------------------------

    def chaos_armed(self, label: str, key: str) -> bool:
        """True exactly once per (label, key): the first caller arms the
        marker, later callers see it and decline — so a killed worker's
        respawn does not die again on the same cell."""
        marker = self.root / "chaos" / f"{label}-{_fname(key)}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True
