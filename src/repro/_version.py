"""Single source for the package version string.

Lives in its own leaf module (rather than ``repro/__init__``) so the
low-level layers that stamp the version into durable artifacts — the
checkpoint header writer (:mod:`repro.checkpoint.format`) and the sweep
journal (:mod:`repro.robustness.journal`) — can import it without
pulling in the whole public API (and without creating import cycles).

The version is read from the installed package metadata when available
(``pip install -e .`` or a built wheel) and falls back to the value
pinned in ``pyproject.toml`` for plain ``PYTHONPATH=src`` checkouts.
"""

from __future__ import annotations

#: fallback for source checkouts that are not pip-installed; keep in
#: sync with ``[project] version`` in pyproject.toml
_FALLBACK_VERSION = "1.0.0"


def repro_version() -> str:
    """The package version (metadata if installed, pyproject pin otherwise)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return _FALLBACK_VERSION
