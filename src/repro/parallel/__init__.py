"""Warm-worker parallel execution for suite sweeps.

Sweep cells — one (benchmark, thread-count) experiment each — are
embarrassingly parallel: every cell's result derives only from its
:class:`~repro.workloads.spec.BenchmarkSpec` and the machine
configuration, and all workload randomness is seeded per cell from
:func:`repro.workloads.generators.seed_for`.  This package fans cells
out across *persistent* worker processes in deterministic chunks while
keeping the observable behaviour of the serial
:class:`~repro.experiments.runner.BatchRunner` path exactly — journals
are byte-identical at any ``--jobs`` value and any chunk shape.

Layout:

* :mod:`~repro.parallel.cells` — the picklable :class:`CellSpec` /
  :class:`CellResult` value objects crossing the process boundary;
* :mod:`~repro.parallel.chunking` — deterministic cell→chunk planning
  (:class:`ChunkingPolicy`, :func:`plan_chunks`, and the pure
  :func:`partition_costs` core the property suite drives);
* :mod:`~repro.parallel.worker` — worker-side execution against
  per-process warm caches (:class:`WorkerCaches`,
  :func:`run_cell_task`, :func:`run_chunk_task`);
* :mod:`~repro.parallel.transport` — canonical-JSON result payloads
  and the per-cell spill protocol behind crash recovery;
* :mod:`~repro.parallel.dispatch` — the parent-side driver
  (:func:`run_parallel_sweep`): chunk dispatch, in-order journaling,
  drain support, spill recovery and crash quarantine.
"""

from repro.parallel.cells import (
    KILL_ENV,
    WORKER_CRASH,
    CellResult,
    CellSpec,
    cells_from_sweep,
)
from repro.parallel.chunking import (
    Chunk,
    ChunkingPolicy,
    estimate_cell_cost,
    partition_costs,
    plan_chunks,
)
from repro.parallel.dispatch import run_parallel_sweep
from repro.parallel.worker import (
    WorkerCaches,
    reset_worker_caches,
    run_cell_task,
    run_chunk_task,
    worker_caches,
)

__all__ = [
    "KILL_ENV",
    "WORKER_CRASH",
    "CellResult",
    "CellSpec",
    "Chunk",
    "ChunkingPolicy",
    "WorkerCaches",
    "cells_from_sweep",
    "estimate_cell_cost",
    "partition_costs",
    "plan_chunks",
    "reset_worker_caches",
    "run_cell_task",
    "run_chunk_task",
    "run_parallel_sweep",
    "worker_caches",
]
