"""Deterministic cell→chunk assignment for warm-worker dispatch.

One task per cell made the pool a net loss: every short cell paid the
full submit/pickle/collect round-trip, and cells of the same benchmark
scattered across workers re-ran the single-threaded reference and
re-decoded traces that a serial sweep computes once.  Chunking fixes
both — a worker receives a *contiguous run* of cells, so the per-task
overhead amortizes over the chunk and the canonical sweep order (all
thread counts of a benchmark adjacent) keeps each benchmark's warm
state inside one worker.

The assignment is a pure function of the cell list, the job count and
the :class:`ChunkingPolicy` — never of wall time, pids or completion
order — so a sweep plans the same chunks on every run and the parent
can merge results back into canonical order for byte-identical
journals.  The adaptive mode sizes chunks by a cheap per-cell cost
estimate (:func:`estimate_cell_cost`): chunks even out to roughly
``total_cost / (jobs * chunks_per_job)`` each, which keeps enough
chunks in flight to load-balance while amortizing dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.cells import CellSpec

#: floor for any cell's cost estimate: keeps zero-work synthetic specs
#: from collapsing the adaptive target to 0 (degenerate 1-cell chunks)
MIN_CELL_COST = 1.0


@dataclass(frozen=True)
class ChunkingPolicy:
    """How pending cells are grouped into worker chunks.

    ``chunk_cells`` pins every chunk to exactly that many cells (the
    last chunk takes the remainder) — the knob the differential tests
    sweep and ``sweep --chunk-cells`` exposes.  ``None`` (default)
    selects adaptive mode: target ``chunks_per_job`` chunks per worker
    by estimated cost, each capped at ``max_chunk_cells`` so one chunk
    never starves the crash-recovery and drain granularity.
    """

    chunk_cells: int | None = None
    chunks_per_job: int = 4
    max_chunk_cells: int = 16

    def __post_init__(self) -> None:
        if self.chunk_cells is not None and self.chunk_cells < 1:
            raise ValueError("chunk_cells must be >= 1")
        if self.chunks_per_job < 1:
            raise ValueError("chunks_per_job must be >= 1")
        if self.max_chunk_cells < 1:
            raise ValueError("max_chunk_cells must be >= 1")


@dataclass(frozen=True)
class Chunk:
    """One dispatch unit: a contiguous slice of the pending cell list.

    ``cells`` pairs each :class:`CellSpec` with its index in the *full*
    sweep, so results merge back into canonical order no matter which
    worker ran the chunk or when it finished.
    """

    chunk_id: str
    cells: tuple[tuple[int, CellSpec], ...]
    est_cost: float

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(cell.key for _, cell in self.cells)


def estimate_cell_cost(cell: CellSpec) -> float:
    """Cheap deterministic proxy for one cell's wall time.

    Simulated work scales with the spec's dynamic instruction count and
    its memory intensity (memory ops dominate the engine's per-op
    cost); the scheduling loop adds per-cycle work proportional to the
    core count.  Absolute accuracy does not matter — chunks only need
    *relative* sizing — but the estimate must be O(1) and derived from
    frozen spec fields so planning stays deterministic and free.
    """
    spec = cell.spec
    work = spec.total_kinstrs * cell.scale * (
        1.0 + spec.mem_per_kinstr / 1000.0
    )
    return max(MIN_CELL_COST, work * (1.0 + 0.15 * cell.n_threads))


def partition_costs(
    costs: list[float],
    jobs: int,
    policy: ChunkingPolicy | None = None,
) -> list[list[int]]:
    """Partition ``range(len(costs))`` into contiguous chunks.

    The pure planning core, separated from :class:`CellSpec` so the
    property suite can drive it with arbitrary cost lists.  Guarantees
    (hypothesis-tested in ``tests/parallel/test_property_chunking.py``):

    * every index appears in exactly one chunk (exact partition);
    * concatenating the chunks reproduces ``range(len(costs))`` in
      order (canonical order survives the merge);
    * no chunk is empty, and no chunk exceeds the policy's cell cap;
    * the output is a pure function of the inputs.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    policy = policy or ChunkingPolicy()
    n = len(costs)
    if n == 0:
        return []
    if policy.chunk_cells is not None:
        size = policy.chunk_cells
        return [
            list(range(start, min(start + size, n)))
            for start in range(0, n, size)
        ]
    total = sum(max(MIN_CELL_COST, c) for c in costs)
    target = total / max(1, jobs * policy.chunks_per_job)
    chunks: list[list[int]] = []
    current: list[int] = []
    current_cost = 0.0
    for index in range(n):
        cost = max(MIN_CELL_COST, costs[index])
        if current and (
            current_cost + cost > target
            or len(current) >= policy.max_chunk_cells
        ):
            chunks.append(current)
            current = []
            current_cost = 0.0
        current.append(index)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def plan_chunks(
    pending: list[tuple[int, CellSpec]],
    jobs: int,
    policy: ChunkingPolicy | None = None,
    id_prefix: str = "",
) -> list[Chunk]:
    """Group pending (sweep-index, cell) pairs into dispatch chunks.

    ``pending`` must already be in canonical sweep order (the dispatcher
    builds it that way); chunks are contiguous slices of it, so merging
    chunk results by sweep index restores that order exactly.
    ``id_prefix`` namespaces chunk ids across dispatch rounds (crash
    requeues re-plan the survivors as a fresh round).
    """
    costs = [estimate_cell_cost(cell) for _, cell in pending]
    groups = partition_costs(costs, jobs, policy)
    return [
        Chunk(
            chunk_id=f"{id_prefix}c{ordinal}",
            cells=tuple(pending[i] for i in group),
            est_cost=sum(costs[i] for i in group),
        )
        for ordinal, group in enumerate(groups)
    ]
