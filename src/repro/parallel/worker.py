"""Warm-worker execution: per-process caches and the chunk entry point.

A pool worker is *persistent* — it lives for the whole sweep and runs
many cells — so everything a cell computes that depends only on frozen
inputs is worth keeping warm across cells:

* **runner cache** (:class:`WorkerCaches`): one
  :class:`~repro.experiments.runner.BatchRunner` per
  ``(policy, scale, machine_json)``, which carries the memoized
  single-threaded reference (``Ts`` measured once per benchmark, shared
  by every thread count the worker sees) exactly like a serial sweep;
* **machine cache**: ``machine_json`` parses to a
  :class:`~repro.config.MachineConfig` once per worker, not once per
  cell — the same base-machine reuse
  :class:`~repro.experiments.scenarios.ExperimentCache` keys on;
* **trace-decode memo** (``workloads/tracefile.py``): global and
  content-keyed, so it warms up per worker automatically;
* **warm-filled cache/ATD structures**: ``reset()``/``warm_fill`` fast
  paths inside the engine reuse allocated tag stores across a runner's
  cells instead of rebuilding them.

Cache *keys* are the whole correctness story: every entry is keyed by
all frozen inputs it depends on, so two cells with different machines
or benchmarks sharing a worker can never bleed state into each other —
``tests/parallel/test_worker_cache.py`` runs warm-vs-cold differentials
to prove it.  :class:`QueueWorker <repro.queue.worker.QueueWorker>`
builds on the same class so distributed workers amortize identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from repro.config import machine_from_dict
from repro.experiments.runner import (
    BatchRunner,
    CELL_FAILED,
    CELL_OK,
    RunPolicy,
)
from repro.observability.metrics import harvest_cell_metrics
from repro.observability.spans import SpanRecorder
from repro.parallel.cells import KILL_ENV, CellResult, CellSpec
from repro.parallel.transport import append_spill, encode_chunk_results


class WorkerCaches:
    """Per-process warm state, keyed by every frozen input it serves.

    One instance lives for a worker process's lifetime; both the pool
    workers here and :class:`~repro.queue.worker.QueueWorker` hold one.
    ``runner_cls`` participates in the key so a queue worker's hook-
    splicing runner subclass never aliases a plain runner's entry.
    """

    def __init__(self) -> None:
        self._machines: dict[str, object] = {}
        self._runners: dict[tuple, BatchRunner] = {}

    def machine_factory(self, machine_json: str | None):
        """Re-coring factory for a cell's base machine (memoized parse);
        None keeps the runner's paper-default machine."""
        if machine_json is None:
            return None
        machine = self._machines.get(machine_json)
        if machine is None:
            machine = machine_from_dict(json.loads(machine_json))
            self._machines[machine_json] = machine
        return machine.with_cores

    def runner(
        self,
        policy: RunPolicy,
        scale: float,
        machine_json: str | None,
        runner_cls: type[BatchRunner] = BatchRunner,
        **kwargs,
    ) -> BatchRunner:
        """The warm runner for one (policy, scale, machine) family.

        ``kwargs`` (metrics registry, drain controller, ...) must be
        per-worker constants: they configure the runner on first build
        and are assumed identical on every later hit.
        """
        key = (policy, scale, machine_json, runner_cls)
        runner = self._runners.get(key)
        if runner is None:
            runner = runner_cls(
                policy=policy,
                scale=scale,
                machine_factory=self.machine_factory(machine_json),
                **kwargs,
            )
            self._runners[key] = runner
        return runner

    def clear(self) -> None:
        self._machines.clear()
        self._runners.clear()


#: the process-wide cache instance pool workers execute against
_CACHES = WorkerCaches()


def worker_caches() -> WorkerCaches:
    return _CACHES


def reset_worker_caches() -> None:
    """Drop all warm state (tests use this to simulate a cold worker)."""
    _CACHES.clear()


def span_origin() -> str:
    """Span lane label for this worker process."""
    return f"worker-{os.getpid()}"


def run_cell_task(
    cell: CellSpec,
    policy: RunPolicy,
    collect_metrics: bool = False,
    collect_spans: bool = False,
) -> CellResult:
    """Execute one cell in the current process.

    Runs the standard ``BatchRunner.run_cell`` protocol — fault
    application, retry-with-backoff, outcome classification — against
    this process's warm caches and reduces the outcome to a
    :class:`CellResult`.  ``abort`` is enforced by the parent (a worker
    must never raise across the pipe), so it is downgraded to ``skip``
    here.

    With ``collect_metrics`` the worker harvests the cell's flat
    ``sim.*`` metrics dict (the live ``chip``/``threads`` objects the
    harvest reads do not pickle, so harvesting must happen on this side
    of the process boundary) using the same
    :func:`~repro.observability.metrics.harvest_cell_metrics` the
    serial runner uses — which is what makes serial and parallel
    journals byte-identical even with metrics enabled.

    With ``collect_spans`` a fresh per-cell
    :class:`~repro.observability.spans.SpanRecorder` is pointed at the
    warm runner for just this cell, and the resulting rows travel on
    ``CellResult.spans`` — so they ride the spill protocol too, and a
    spill-recovered cell keeps its spans exactly once.  A per-cell
    recorder (rather than a per-worker one) is what makes that work:
    the result is self-contained.  ``runner.spans`` is a mutable
    attribute *outside* the :class:`WorkerCaches` key on purpose —
    cache keys may only hold frozen inputs.
    """
    if os.environ.get(KILL_ENV) == cell.key:
        os._exit(17)  # simulated hard worker death (test hook)
    if policy.on_error == "abort":
        policy = replace(policy, on_error="skip")
    runner = _CACHES.runner(policy, cell.scale, cell.machine_json)
    if cell.fault is not None:
        # ship (kind, seed), not a closure: run_cell rebuilds the fault
        # itself and can then describe it in checkpoint descriptors for
        # crash-resume (a closure would be opaque and non-resumable)
        runner.fault_plan = {cell.key: (cell.fault, cell.fault_seed)}
    else:
        runner.fault_plan = {}
    recorder = SpanRecorder(origin=span_origin()) if collect_spans else None
    runner.spans = recorder
    try:
        outcome = runner.run_cell(cell.spec, cell.n_threads)
    finally:
        runner.spans = None
    span_rows = recorder.to_dicts() if recorder is not None else None
    if outcome.status == CELL_OK:
        result = outcome.result
        assert result is not None
        return CellResult(
            name=outcome.name,
            n_threads=outcome.n_threads,
            status=CELL_OK,
            attempts=outcome.attempts,
            stack=result.stack,
            report=result.report,
            total_cycles=result.mt_result.total_cycles,
            truncated=result.mt_result.truncated,
            mt_instrs=result.mt_result.total_instrs,
            mt_spin_instrs=result.mt_result.total_spin_instrs,
            st_instrs=(
                result.st_result.total_instrs if result.st_result else 0
            ),
            metrics=(
                harvest_cell_metrics(result) if collect_metrics else None
            ),
            spans=span_rows,
        )
    return CellResult(
        name=outcome.name,
        n_threads=outcome.n_threads,
        status=CELL_FAILED,
        attempts=outcome.attempts,
        error=outcome.error,
        error_type=outcome.error_type,
        snapshot=outcome.snapshot,
        spans=span_rows,
    )


def run_chunk_task(
    chunk_cells: tuple[tuple[int, CellSpec], ...],
    policy: RunPolicy,
    collect_metrics: bool = False,
    spill_path: str | None = None,
    collect_spans: bool = False,
) -> bytes:
    """Execute one chunk of cells and return canonical JSON bytes.

    The pool's entry point.  Cells run in chunk order against this
    worker's warm caches; each completed cell is appended (and flushed)
    to ``spill_path`` *before* the next cell starts, so a worker death
    mid-chunk loses at most the in-flight cell — the parent recovers
    the spilled results and re-runs only the remainder.

    With ``collect_spans`` each result carries its own span rows (see
    :func:`run_cell_task`) and the payload envelope additionally ships
    one ``chunk.execute`` span covering the whole chunk.  With spans
    disabled the payload bytes are identical to pre-span builds.
    """
    results: list[tuple[int, CellResult]] = []
    chunk_rec = SpanRecorder(origin=span_origin()) if collect_spans else None
    execute_id = None
    if chunk_rec is not None:
        execute_id = chunk_rec.start(
            "chunk.execute", cat="parallel", n_cells=len(chunk_cells)
        )
    spill = open(spill_path, "w") if spill_path is not None else None
    try:
        for index, cell in chunk_cells:
            result = run_cell_task(
                cell, policy, collect_metrics, collect_spans=collect_spans
            )
            results.append((index, result))
            if spill is not None:
                append_spill(spill, index, result)
    finally:
        if spill is not None:
            spill.close()
    chunk_spans = None
    if chunk_rec is not None:
        chunk_rec.finish(execute_id)
        chunk_spans = chunk_rec.to_dicts()
    return encode_chunk_results(results, spans=chunk_spans)
