"""Parent-side chunked dispatch over a persistent warm-worker pool.

The driver behind ``sweep --jobs N``.  Observable behaviour is the
serial :class:`~repro.experiments.runner.BatchRunner` path, exactly:

* **determinism** — a cell computes the same speedup stack in any
  worker, in any chunk, at any ``--jobs`` value, because nothing about
  a cell's inputs depends on the process running it (the differential
  suite under ``tests/parallel/`` locks this down bit-for-bit);
* **ordered collection** — chunk results carry sweep indices and are
  merged back into submission order, so the journal file is
  byte-identical to a serial sweep's regardless of chunk shape or
  completion order;
* **parent-only journal writes** — workers never see the journal;
  every append happens in the parent (the journal additionally refuses
  to save from a foreign process, see
  :class:`~repro.robustness.journal.SweepJournal`);
* **crash containment with spill recovery** — a worker dying breaks
  the pool; cells its chunk had already completed are recovered from
  the chunk's spill file (journaled, never re-executed), the first
  incomplete cell of each broken chunk is re-run alone in a
  single-worker pool for exact attribution, and the rest requeue onto
  a rebuilt pool.

In-simulation failures (deadlock, livelock, parse errors) never cross
the process boundary as exceptions: the worker classifies them into a
:class:`~repro.parallel.cells.CellResult` exactly like
``BatchRunner.run_cell`` does, so retry/backoff runs inside the worker
and only canonical JSON bytes travel over the pipe.
"""

from __future__ import annotations

import logging
import os
import tempfile
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.errors import ExperimentError
from repro.experiments.runner import (
    CELL_FAILED,
    CELL_OK,
    CELL_RESUMED,
    CellOutcome,
    RunPolicy,
    SweepReport,
)
from repro.observability.events import (
    CellFinished,
    CellStarted,
    ChunkDispatched,
    ChunkFinished,
    SweepFinished,
    SweepStarted,
    WorkerCrashed,
)
from repro.observability.spans import maybe_span
from repro.parallel.cells import WORKER_CRASH, CellResult, CellSpec
from repro.parallel.chunking import Chunk, ChunkingPolicy, plan_chunks
from repro.parallel.transport import decode_chunk_payload, read_spill
from repro.parallel.worker import run_chunk_task
from repro.robustness.journal import SweepJournal

logger = logging.getLogger(__name__)


def _crashed_result(cell: CellSpec, attempts: int) -> CellResult:
    return CellResult(
        name=cell.name,
        n_threads=cell.n_threads,
        status=CELL_FAILED,
        attempts=attempts,
        error="worker process died while running this cell",
        error_type=WORKER_CRASH,
    )


def _run_quarantined(
    index: int, cell: CellSpec, policy: RunPolicy, max_attempts: int,
    collect_metrics: bool = False, collect_spans: bool = False,
) -> CellResult:
    """Re-run one crash suspect alone in single-worker pools.

    With exactly one single-cell chunk per pool, a broken pool
    attributes the crash to this cell beyond doubt; an innocent
    bystander of someone else's crash simply completes on its first
    quarantined attempt.
    """
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        with ProcessPoolExecutor(max_workers=1) as pool:
            try:
                payload = pool.submit(
                    run_chunk_task, ((index, cell),), policy,
                    collect_metrics, None, collect_spans,
                ).result()
                return decode_chunk_payload(payload)[0][0][1]
            except BrokenExecutor:
                logger.warning(
                    "cell %s crashed its worker (quarantined attempt %d/%d)",
                    cell.key, attempts, max_attempts,
                )
    return _crashed_result(cell, attempts)


def _execute_cells(
    pending: list[tuple[int, CellSpec]],
    jobs: int,
    policy: RunPolicy,
    collect_metrics: bool = False,
    bus=None,
    drain=None,
    chunking: ChunkingPolicy | None = None,
    metrics=None,
    spans=None,
) -> tuple[dict[int, CellResult], bool]:
    """Run cells on a warm pool in chunks; survive worker deaths.

    The pool is built once per dispatch round and its workers persist
    across every chunk of the round — the warm caches in
    :mod:`repro.parallel.worker` amortize reference runs, machine
    parses and trace decodes over all the cells a worker executes.

    When a worker dies, *every* unfinished chunk future fails with
    :class:`BrokenExecutor` and the true victim is not directly
    observable.  Each broken chunk's spill file tells the parent which
    cells completed (recovered, never re-run); the first incomplete
    cell of each of the first ``jobs`` broken chunks — the only cells
    that can have been in flight — is quarantined
    (:func:`_run_quarantined`) for exact attribution, and every other
    incomplete cell is re-planned into fresh chunks on a rebuilt pool.

    ``drain`` (a :class:`~repro.robustness.drain.DrainController`)
    makes the pool signal-aware: on a drain request, queued chunks are
    cancelled, in-flight chunks run to completion (pool workers cannot
    be unwound mid-cell), and the second element of the returned tuple
    is True — collected results cover exactly the cells that finished.
    """
    results: dict[int, CellResult] = {}
    interrupted = False
    chunking = chunking or ChunkingPolicy()
    collect_spans = spans is not None
    max_crash_attempts = 1 + (
        policy.max_retries if policy.on_error == "retry" else 0
    )
    # Live progress: journaling stays in submission order, but the bus
    # hears about each chunk's cells as its future actually completes —
    # possibly from the executor's callback thread, so decoded payloads
    # are cached under a lock (the collector reuses them) and emissions
    # are deduplicated per chunk.
    decoded: dict[str, tuple[list[tuple[int, CellResult]], list]] = {}
    decode_lock = threading.Lock()

    def _decode_once(chunk: Chunk, payload: bytes):
        with decode_lock:
            cached = decoded.get(chunk.chunk_id)
            if cached is not None:
                return cached[0], cached[1], False
            pairs, chunk_spans = decode_chunk_payload(payload)
            decoded[chunk.chunk_id] = (pairs, chunk_spans)
            return pairs, chunk_spans, True

    def _absorb_chunk(
        chunk: Chunk, t0_us: int,
        chunk_spans: list, cell_results,
    ) -> None:
        """Record the parent's chunk.dispatch span (submit → collect)
        and merge the worker's chunk + per-cell span rows under it.
        Runs only in the collector thread, once per chunk."""
        dispatch_id = spans.record(
            "chunk.dispatch", "parallel",
            t0_us, spans.now_us() - t0_us, chunk=chunk.chunk_id,
        )
        if chunk_spans:
            spans.absorb(chunk_spans, parent=dispatch_id)
        for result in cell_results:
            if result.spans:
                spans.absorb(result.spans, parent=dispatch_id)

    def _notify_done(chunk: Chunk, future) -> None:
        try:
            payload = future.result()
        except BaseException:
            return  # crash handling (and its events) happen in the collector
        pairs, _chunk_spans, fresh = _decode_once(chunk, payload)
        if not fresh:
            return
        ok = failed = 0
        for _, result in pairs:
            if result.status == CELL_OK:
                ok += 1
            else:
                failed += 1
            bus.emit(CellFinished(result.key, result.status, result.attempts))
        bus.emit(ChunkFinished(chunk.chunk_id, len(pairs), ok, failed))

    queue = list(pending)
    round_no = 0
    with tempfile.TemporaryDirectory(prefix="repro-sweep-spill-") as spill_dir:
        while queue:
            chunks = plan_chunks(
                queue, jobs, chunking, id_prefix=f"r{round_no}-"
            )
            requeue: list[tuple[int, CellSpec]] = []
            suspects: list[tuple[int, CellSpec]] = []
            recovered_total = 0
            submit_t0: dict[str, int] = {}
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = []
                for chunk in chunks:
                    spill = os.path.join(
                        spill_dir, f"{chunk.chunk_id}.jsonl"
                    )
                    if spans is not None:
                        submit_t0[chunk.chunk_id] = spans.now_us()
                    future = pool.submit(
                        run_chunk_task, chunk.cells, policy,
                        collect_metrics, spill, collect_spans,
                    )
                    if metrics is not None:
                        metrics.counter("runtime.chunks_dispatched").inc()
                    if bus is not None:
                        bus.emit(ChunkDispatched(
                            chunk.chunk_id, chunk.keys,
                            round(chunk.est_cost, 3),
                        ))
                        for _, cell in chunk.cells:
                            bus.emit(CellStarted(cell.key, 1))
                        future.add_done_callback(
                            lambda f, c=chunk: _notify_done(c, f)
                        )
                    futures.append((chunk, spill, future))
                broken_chunks = 0
                for chunk, spill, future in futures:
                    if (
                        not interrupted
                        and drain is not None and drain.requested
                    ):
                        interrupted = True
                        pool.shutdown(wait=False, cancel_futures=True)
                        logger.warning(
                            "drain: cancelled queued chunks; waiting for "
                            "in-flight chunks to finish"
                        )
                    if interrupted and future.cancelled():
                        continue
                    try:
                        payload = future.result()
                    except BrokenExecutor:
                        spilled = read_spill(spill)
                        results.update(spilled)
                        recovered_total += len(spilled)
                        if spans is not None and spilled:
                            # spill lines carry each completed cell's
                            # spans: recovered cells keep them exactly
                            # once (the chunk envelope died unreturned)
                            _absorb_chunk(
                                chunk, submit_t0[chunk.chunk_id],
                                [], spilled.values(),
                            )
                        incomplete = [
                            (i, cell) for i, cell in chunk.cells
                            if i not in spilled
                        ]
                        if bus is not None:
                            for i, result in spilled.items():
                                bus.emit(CellFinished(
                                    result.key, result.status,
                                    result.attempts,
                                ))
                        # Only the first incomplete cell of a chunk can
                        # have been running when the pool broke: cells
                        # behind it in the chunk had not started.
                        if incomplete:
                            if broken_chunks < jobs:
                                broken_chunks += 1
                                suspects.append(incomplete[0])
                                requeue.extend(incomplete[1:])
                            else:
                                requeue.extend(incomplete)
                        continue
                    pairs, chunk_spans, _fresh = _decode_once(
                        chunk, payload
                    )
                    results.update(dict(pairs))
                    if spans is not None:
                        _absorb_chunk(
                            chunk, submit_t0[chunk.chunk_id],
                            chunk_spans, [r for _, r in pairs],
                        )
                    if metrics is not None:
                        metrics.counter("runtime.chunks_finished").inc()
            if metrics is not None and recovered_total:
                metrics.counter(
                    "runtime.cells_recovered_from_spill"
                ).inc(recovered_total)
            if interrupted:
                return results, True
            if suspects:
                logger.warning(
                    "worker pool broke; recovered %d spilled cell(s), "
                    "quarantining %d suspect(s), requeueing %d",
                    recovered_total, len(suspects), len(requeue),
                )
                if bus is not None:
                    bus.emit(WorkerCrashed(
                        tuple(cell.key for _, cell in suspects)
                    ))
            for index, cell in suspects:
                results[index] = _run_quarantined(
                    index, cell, policy, max_crash_attempts,
                    collect_metrics, collect_spans,
                )
                if spans is not None and results[index].spans:
                    spans.absorb(results[index].spans)
                if bus is not None:
                    bus.emit(CellFinished(
                        cell.key, results[index].status,
                        results[index].attempts,
                    ))
            queue = requeue
            round_no += 1
    return results, interrupted


def run_parallel_sweep(
    cells: list[CellSpec],
    jobs: int,
    policy: RunPolicy | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    bus=None,
    metrics=None,
    drain=None,
    chunking: ChunkingPolicy | None = None,
    spans=None,
) -> SweepReport:
    """Fan a sweep out over ``jobs`` persistent worker processes.

    The drop-in parallel counterpart of
    :meth:`~repro.experiments.runner.BatchRunner.run_sweep`: same
    resume semantics, same journal records (written by the parent, in
    submission order), same :class:`SweepReport` shape — each ok/failed
    outcome's ``result`` is a :class:`CellResult` instead of an
    ``ExperimentResult``, but exposes the same ``stack`` /
    ``actual_speedup`` surface the CLI and tests consume.  With
    ``on_error="abort"`` the first failed cell raises
    :class:`~repro.errors.ExperimentError` after in-order journaling of
    the cells before it.

    ``chunking`` shapes the cell→chunk assignment (default: adaptive by
    estimated cost — see
    :class:`~repro.parallel.chunking.ChunkingPolicy`); any policy
    produces byte-identical journals, only wall time changes.

    ``bus`` receives sweep/chunk/cell lifecycle events in the parent —
    cell-finished events fire as chunk futures complete (live
    progress), while journaling stays in submission order.  ``metrics``
    turns on worker-side harvest: each ok cell's ``sim.*`` dict is
    absorbed into the registry and journaled, exactly as the serial
    runner does.

    ``drain`` makes the sweep signal-aware: a SIGINT/SIGTERM cancels
    the queued chunks, lets in-flight chunks finish, journals
    everything that completed, and returns with ``report.interrupted``
    set — a ``--resume`` re-run finishes the rest.

    ``spans`` (a :class:`~repro.observability.spans.SpanRecorder`)
    turns on worker-side span collection: each cell's harness spans
    and each chunk's ``chunk.execute`` envelope come back in the chunk
    payload and are absorbed here under per-chunk ``chunk.dispatch``
    spans — the same merge path metrics take, and like metrics it
    never changes the journal (spans are wall-clock, so they are never
    journaled at all).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    policy = policy or RunPolicy()
    journal = journal or SweepJournal(None)

    outcomes: list[CellOutcome | None] = []
    pending: list[tuple[int, CellSpec]] = []
    if bus is not None:
        bus.emit(SweepStarted(len(cells), jobs))
    for index, cell in enumerate(cells):
        if resume and journal.completed(cell.name, cell.n_threads):
            logger.info("resume: skipping completed cell %s", cell.key)
            outcomes.append(CellOutcome(
                name=cell.name,
                n_threads=cell.n_threads,
                status=CELL_RESUMED,
            ))
            if bus is not None:
                bus.emit(CellFinished(cell.key, CELL_RESUMED, 0))
        else:
            outcomes.append(None)
            pending.append((index, cell))

    results, interrupted = _execute_cells(
        pending, jobs, policy,
        collect_metrics=metrics is not None, bus=bus, drain=drain,
        chunking=chunking, metrics=metrics, spans=spans,
    )

    report = SweepReport(interrupted=interrupted)
    for index, outcome in enumerate(outcomes):
        if outcome is not None:  # resumed
            report.outcomes.append(outcome)
            continue
        result = results.get(index)
        if result is None:
            # drained before this cell ran: nothing to journal; a
            # --resume re-run picks it up
            report.interrupted = True
            continue
        if result.status == CELL_FAILED and policy.on_error == "abort":
            # match the serial runner: abort raises before the failing
            # cell's record hits the journal
            raise ExperimentError(
                result.name, result.n_threads,
                result.error or "cell failed",
            )
        if result.status == CELL_OK:
            with maybe_span(spans, "journal.write", cat="sweep"):
                journal.record_ok(
                    result.name, result.n_threads,
                    attempts=result.attempts,
                    total_cycles=result.total_cycles,
                    truncated=result.truncated,
                    metrics=result.metrics,
                )
            if metrics is not None and result.metrics is not None:
                metrics.absorb(result.metrics)
                metrics.counter("runtime.cells_ok").inc()
        else:
            with maybe_span(spans, "journal.write", cat="sweep"):
                journal.record_failure(
                    result.name, result.n_threads,
                    attempts=result.attempts,
                    error=result.error or "",
                    error_type=result.error_type or "",
                    snapshot=result.snapshot,
                )
            if metrics is not None:
                metrics.counter("runtime.cells_failed").inc()
                if result.error_type == WORKER_CRASH:
                    metrics.counter("runtime.worker_crashes").inc()
        report.outcomes.append(CellOutcome(
            name=result.name,
            n_threads=result.n_threads,
            status=result.status,
            attempts=result.attempts,
            result=result if result.status == CELL_OK else None,
            error=result.error,
            error_type=result.error_type,
            snapshot=result.snapshot,
        ))
    if bus is not None:
        bus.emit(SweepFinished(
            len(report.completed), len(report.failures),
            len(report.resumed),
        ))
    logger.info(
        "parallel sweep done (%d jobs): %d ok, %d resumed, %d failed",
        jobs, len(report.completed), len(report.resumed),
        len(report.failures),
    )
    return report
