"""Canonical-bytes result transport between workers and the parent.

Workers used to return pickled :class:`~repro.parallel.cells.CellResult`
object graphs — a :class:`SpeedupStack` plus an
:class:`AccountingReport` holding per-thread and per-core dataclasses —
and the parent paid a rich unpickle per cell.  Here a chunk's results
travel as **one** canonical JSON byte string: the worker serializes
derived plain data, the parent decodes once per chunk.

Canonical means *deterministic by construction*: every dict is built in
dataclass field order (or, for harvested metrics, in the harvester's
insertion order, which the journal must preserve byte-for-byte), and
encoding never reorders keys.  JSON round-trips Python floats exactly
(shortest-repr), so a decoded stack compares ``==`` to the in-process
original — the property the differential suite leans on.

The same per-result encoding backs the **spill protocol**: a worker
appends one flushed line per completed cell to its chunk's spill file,
so when the worker dies mid-chunk the parent recovers every finished
cell from the spill and re-runs only the rest (see
:mod:`repro.parallel.dispatch`).
"""

from __future__ import annotations

import json
import logging
from dataclasses import fields
from typing import IO

from repro.accounting.report import (
    AccountingReport,
    CoreRawCounters,
    ThreadComponents,
)
from repro.core.stack import SpeedupStack
from repro.parallel.cells import CellResult

logger = logging.getLogger(__name__)

#: compact separators: the bytes are a pipe payload, not a human artifact
_SEPARATORS = (",", ":")


def _dataclass_to_dict(value) -> dict:
    """Field-order dict of a flat (non-nested) dataclass instance."""
    return {f.name: getattr(value, f.name) for f in fields(value)}


def stack_to_dict(stack: SpeedupStack) -> dict:
    return _dataclass_to_dict(stack)


def stack_from_dict(doc: dict) -> SpeedupStack:
    return SpeedupStack(**doc)


def report_to_dict(report: AccountingReport) -> dict:
    return {
        "n_threads": report.n_threads,
        "tp_cycles": report.tp_cycles,
        "threads": [_dataclass_to_dict(t) for t in report.threads],
        "cores": [_dataclass_to_dict(c) for c in report.cores],
        "truncated": report.truncated,
    }


def report_from_dict(doc: dict) -> AccountingReport:
    return AccountingReport(
        n_threads=doc["n_threads"],
        tp_cycles=doc["tp_cycles"],
        threads=[ThreadComponents(**t) for t in doc["threads"]],
        cores=[CoreRawCounters(**c) for c in doc["cores"]],
        truncated=doc["truncated"],
    )


def result_to_dict(result: CellResult) -> dict:
    doc = {
        "name": result.name,
        "n_threads": result.n_threads,
        "status": result.status,
        "attempts": result.attempts,
        "stack": (
            stack_to_dict(result.stack) if result.stack is not None else None
        ),
        "report": (
            report_to_dict(result.report)
            if result.report is not None else None
        ),
        "total_cycles": result.total_cycles,
        "truncated": result.truncated,
        "mt_instrs": result.mt_instrs,
        "mt_spin_instrs": result.mt_spin_instrs,
        "st_instrs": result.st_instrs,
        "error": result.error,
        "error_type": result.error_type,
        "snapshot": result.snapshot,
    }
    # absent (not null) when collection is off: presence mirrors whether
    # the journal will carry a metrics key for this cell
    if result.metrics is not None:
        doc["metrics"] = result.metrics
    # spans likewise absent when collection is off — and, unlike
    # metrics, never journaled (wall-clock is nondeterministic)
    if result.spans is not None:
        doc["spans"] = result.spans
    return doc


def result_from_dict(doc: dict) -> CellResult:
    return CellResult(
        name=doc["name"],
        n_threads=doc["n_threads"],
        status=doc["status"],
        attempts=doc["attempts"],
        stack=(
            stack_from_dict(doc["stack"])
            if doc["stack"] is not None else None
        ),
        report=(
            report_from_dict(doc["report"])
            if doc["report"] is not None else None
        ),
        total_cycles=doc["total_cycles"],
        truncated=doc["truncated"],
        mt_instrs=doc["mt_instrs"],
        mt_spin_instrs=doc["mt_spin_instrs"],
        st_instrs=doc["st_instrs"],
        error=doc["error"],
        error_type=doc["error_type"],
        snapshot=doc["snapshot"],
        metrics=doc.get("metrics"),
        spans=doc.get("spans"),
    )


# ----------------------------------------------------------------------
# chunk payloads (worker return value)
# ----------------------------------------------------------------------


def encode_chunk_results(
    results: list[tuple[int, CellResult]],
    spans: list | None = None,
) -> bytes:
    """One chunk's (sweep-index, result) pairs as canonical JSON bytes.

    ``spans`` carries the *chunk-level* worker span rows (e.g. the
    ``chunk.execute`` envelope; per-cell spans ride inside each
    result).  With spans disabled the payload stays the legacy bare
    list — byte-identical to pre-span builds.
    """
    payload = [
        {"index": index, "result": result_to_dict(result)}
        for index, result in results
    ]
    if spans is not None:
        doc: dict = {"results": payload, "spans": spans}
        return json.dumps(doc, separators=_SEPARATORS).encode("utf-8")
    return json.dumps(payload, separators=_SEPARATORS).encode("utf-8")


def decode_chunk_payload(
    payload: bytes,
) -> tuple[list[tuple[int, CellResult]], list]:
    """Decode a chunk payload into (pairs, chunk-level span rows).

    Accepts both payload shapes: the legacy bare list (spans disabled)
    and the ``{"results": ..., "spans": ...}`` envelope.
    """
    doc = json.loads(payload.decode("utf-8"))
    if isinstance(doc, dict):
        entries = doc["results"]
        spans = doc.get("spans") or []
    else:
        entries, spans = doc, []
    return (
        [(entry["index"], result_from_dict(entry["result"]))
         for entry in entries],
        spans,
    )


def decode_chunk_results(payload: bytes) -> list[tuple[int, CellResult]]:
    return decode_chunk_payload(payload)[0]


# ----------------------------------------------------------------------
# spill protocol (crash recovery)
# ----------------------------------------------------------------------


def append_spill(handle: IO[str], index: int, result: CellResult) -> None:
    """Append one completed cell to the chunk's spill file and flush.

    The flush matters: a crashing worker exits via ``os._exit`` (or is
    killed outright), which never flushes Python's userspace buffers —
    only lines already pushed to the OS survive for recovery.
    """
    handle.write(
        json.dumps(
            {"index": index, "result": result_to_dict(result)},
            separators=_SEPARATORS,
        )
        + "\n"
    )
    handle.flush()


def read_spill(path: str) -> dict[int, CellResult]:
    """Recover completed cells from a (possibly absent or torn) spill.

    A worker killed mid-``write`` leaves a truncated final line; any
    line that does not parse is dropped — the cell it described simply
    re-runs, which is always safe (cells are deterministic).
    """
    recovered: dict[int, CellResult] = {}
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError:
        return recovered
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            recovered[entry["index"]] = result_from_dict(entry["result"])
        except (ValueError, KeyError, TypeError):
            logger.warning("dropping torn spill line in %s", path)
    return recovered
