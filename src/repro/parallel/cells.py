"""Picklable value objects crossing the sweep's process boundary.

A :class:`CellSpec` describes one (benchmark, thread-count) experiment
well enough for any process to run it; a :class:`CellResult` carries
everything its consumers (CLI, journal, differential tests) read back.
Both are plain frozen data: no live generators, no closures, no open
handles — the property every execution backend (process pool, durable
queue) relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.accounting.report import AccountingReport
from repro.config import MachineConfig, machine_from_dict, machine_to_dict
from repro.core.stack import SpeedupStack
from repro.robustness.faults import FAULT_KINDS
from repro.workloads.spec import BenchmarkSpec

#: test hook: a cell key in this environment variable makes the worker
#: that picks it up die hard (``os._exit``), simulating an external
#: worker kill (OOM killer, segfault) for the crash-recovery tests
KILL_ENV = "REPRO_TEST_KILL_CELL"

#: error type recorded for cells lost to a dead worker process
WORKER_CRASH = "WorkerCrashError"


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one sweep cell.

    Carries the full :class:`BenchmarkSpec` (a frozen value object), not
    a name, so ad-hoc specs — test fixtures, scaled variants — work
    without a suite lookup in the worker.  Faults are carried by *kind*
    (a :data:`~repro.robustness.faults.FAULT_KINDS` name) plus seed and
    rebuilt inside the worker: fault callables close over RNG state and
    do not pickle.
    """

    spec: BenchmarkSpec
    n_threads: int
    scale: float = 1.0
    #: named fault injected into this cell (None = healthy cell)
    fault: str | None = None
    fault_seed: int = 0
    #: base machine as canonical JSON of its dict form (None = the
    #: paper-default machine).  A string rather than a MachineConfig so
    #: the cell stays hashable, pickles as plain data, and keys the
    #: worker-side cache layer directly.
    machine_json: str | None = None

    def __post_init__(self) -> None:
        if self.fault is not None and self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault!r}; "
                f"expected one of {FAULT_KINDS}"
            )

    @property
    def machine(self) -> MachineConfig | None:
        return (
            machine_from_dict(json.loads(self.machine_json))
            if self.machine_json is not None
            else None
        )

    @property
    def name(self) -> str:
        return self.spec.full_name

    @property
    def key(self) -> str:
        return f"{self.spec.full_name}:{self.n_threads}"


@dataclass(frozen=True)
class CellResult:
    """Outcome of one worker-executed cell.

    The engine-level :class:`~repro.sim.engine.SimResult` holds live
    generators and cannot cross a process boundary; this carries the
    derived values every consumer actually reads: the full
    :class:`SpeedupStack`, the per-thread :class:`AccountingReport`,
    and the instruction counts behind the parallelization-overhead
    metric.  Workers ship it over the pipe as canonical JSON bytes (see
    :mod:`repro.parallel.transport`), never as a pickled object graph.
    """

    name: str
    n_threads: int
    status: str
    attempts: int
    stack: SpeedupStack | None = None
    report: AccountingReport | None = None
    total_cycles: int = 0
    truncated: bool = False
    mt_instrs: int = 0
    mt_spin_instrs: int = 0
    st_instrs: int = 0
    error: str | None = None
    error_type: str | None = None
    snapshot: dict | None = None
    #: flat deterministic ``sim.*`` metrics harvested in the worker
    #: (None unless the sweep runs with metrics collection enabled);
    #: a plain dict of ints — the only metrics shape that journals
    #: byte-deterministically
    metrics: dict | None = None
    #: this cell's harness span rows (None unless span collection is
    #: enabled).  Wall-clock, so — unlike ``metrics`` — these are
    #: merged into the parent's SpanRecorder and **never** journaled.
    spans: list | None = None

    @property
    def key(self) -> str:
        return f"{self.name}:{self.n_threads}"

    @property
    def actual_speedup(self) -> float | None:
        return self.stack.actual_speedup if self.stack else None

    @property
    def estimated_speedup(self) -> float | None:
        return self.stack.estimated_speedup if self.stack else None

    @property
    def parallelization_overhead(self) -> float | None:
        """Same definition as
        :attr:`~repro.experiments.runner.ExperimentResult.parallelization_overhead`."""
        if self.st_instrs == 0:
            return None
        return (self.mt_instrs - self.mt_spin_instrs - self.st_instrs) / (
            self.st_instrs
        )


def cells_from_sweep(
    sweep: list[tuple[BenchmarkSpec, int]],
    scale: float = 1.0,
    fault_kinds: dict[str, str] | None = None,
    machine: MachineConfig | None = None,
) -> list[CellSpec]:
    """Adapt ``suite.sweep_cells`` output (and the CLI's fault-kind
    plan) to :class:`CellSpec` values.  ``machine`` (when given) is the
    base machine each worker re-cores per cell; ``None`` keeps the
    paper-default machine and produces byte-identical cells to older
    callers."""
    fault_kinds = fault_kinds or {}
    machine_json = (
        json.dumps(machine_to_dict(machine), sort_keys=True)
        if machine is not None
        else None
    )
    return [
        CellSpec(
            spec=spec,
            n_threads=n_threads,
            scale=scale,
            fault=fault_kinds.get(f"{spec.full_name}:{n_threads}"),
            machine_json=machine_json,
        )
        for spec, n_threads in sweep
    ]
