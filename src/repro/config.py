"""Machine, workload and run configuration for the CMP simulator.

The machine defaults mirror the methodology section of the paper
(Section 5): a chip-multiprocessor of four-wide superscalar out-of-order
cores with private L1 caches (32KB I / 64KB D), a shared 2MB last-level
L2 cache, a shared memory bus and a memory subsystem with 8 banks.

All sizes are in bytes and all times in core cycles.  Configurations are
plain frozen dataclasses so experiment sweeps can use
:func:`dataclasses.replace` to derive variants (e.g. the Figure 9 LLC-size
sweep) without mutating shared state.

Every string-valued policy field (``CacheConfig.replacement``,
``AccountingConfig.spin_detector``, ``DramConfig.page_policy``,
``SchedConfig.policy``) is validated against the component registry
(:mod:`repro.components`) at construction time, so an unknown name fails
immediately with the list of registered choices — and a policy
registered by third-party code becomes a valid config value without any
edit here.

:class:`ExperimentConfig` bundles machine + workload + run options into
one serializable object (``to_dict``/``from_dict``, TOML/JSON
:func:`load_config`/:func:`dump_config`) that travels end-to-end:
CLI ``--config`` → scenarios/runner → parallel workers (as its dict
form, which pickles trivially).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, is_dataclass, replace
from pathlib import Path
from typing import Any

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB

#: valid ``RunConfig.on_error`` / ``--on-error`` policies (re-exported by
#: ``repro.experiments.runner`` for backward compatibility)
ON_ERROR_MODES = ("abort", "skip", "retry")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _component_choice(kind: str, name: str, config_field: str) -> None:
    """Validate ``name`` against the component registry.

    The import is deferred so ``repro.config`` and ``repro.components``
    can be imported in either order (the components package registers
    the built-ins on import and touches neither config nor sim).
    """
    from repro.components.registry import validate_choice

    validate_choice(kind, name, config_field)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``hit_latency`` is the load-to-use latency of a hit in this level;
    ``hidden_latency`` is the number of those cycles an out-of-order core
    is assumed to hide (Section 4.5 argues a balanced out-of-order core
    hides L1 misses, i.e. LLC hits, very well).
    """

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2
    hidden_latency: int = 2
    #: victim selection, resolved via the ``"replacement"`` component
    #: registry; built-ins: "lru", "fifo", "random" (seeded, deterministic)
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _component_choice("replacement", self.replacement, "replacement")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")
        if not _is_power_of_two(self.n_sets):
            raise ValueError(f"number of sets must be a power of two: {self.n_sets}")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class DramConfig:
    """Open-page DRAM with a shared bus and independently busy banks.

    Timing parameters follow conventional DDR-style nomenclature expressed
    in core cycles: ``t_cas`` is the column access on a page (row-buffer)
    hit, ``t_rcd`` the row activate, and ``t_rp`` the precharge (write-back
    of the currently open page).  A page conflict therefore costs
    ``t_rp + t_rcd + t_cas`` while a page hit costs only ``t_cas``.
    """

    n_banks: int = 8
    page_bytes: int = 4 * KB
    bus_cycles: int = 16
    t_cas: int = 40
    t_rcd: int = 60
    t_rp: int = 60
    #: row-buffer management, resolved via the ``"page_policy"``
    #: component registry; built-ins: "open" (the paper's setup),
    #: "closed" (auto-precharge)
    page_policy: str = "open"

    def __post_init__(self) -> None:
        _component_choice("page_policy", self.page_policy, "page_policy")
        if not _is_power_of_two(self.n_banks):
            raise ValueError(f"bank count must be a power of two: {self.n_banks}")
        if not _is_power_of_two(self.page_bytes):
            raise ValueError(f"page size must be a power of two: {self.page_bytes}")

    @property
    def page_hit_cycles(self) -> int:
        return self.t_cas

    @property
    def page_conflict_cycles(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas

    @property
    def page_empty_cycles(self) -> int:
        """Cost when the bank has no page open at all (activate + access)."""
        return self.t_rcd + self.t_cas

    @property
    def conflict_extra_cycles(self) -> int:
        """Extra cycles of a page conflict over a page hit."""
        return self.page_conflict_cycles - self.page_hit_cycles


@dataclass(frozen=True)
class CoreConfig:
    """Interval-model parameters of one out-of-order core."""

    dispatch_width: int = 4
    rob_size: int = 128
    coherence_write_latency: int = 8

    @property
    def rob_drain_cycles(self) -> int:
        """Cycles of useful dispatch available while a miss drains the ROB."""
        return self.rob_size // self.dispatch_width


@dataclass(frozen=True)
class SyncConfig:
    """Spin-then-yield synchronization library behaviour.

    A contended acquire spins for ``spin_threshold`` loop iterations and
    then asks the OS to deschedule the thread (Section 4.4); each spin
    iteration executes a real load of the synchronization variable plus
    ``spin_iter_instrs`` loop-overhead instructions so the spin-detection
    hardware observes a genuine instruction stream.
    """

    spin_threshold: int = 48
    spin_iter_instrs: int = 4


@dataclass(frozen=True)
class SchedConfig:
    """Operating-system scheduler model plus the engine's core-pick policy."""

    timeslice_cycles: int = 100_000
    context_switch_cycles: int = 400
    wakeup_latency_cycles: int = 600
    #: Extra per-scheduling-event overhead added per core in the machine,
    #: modelling the Linux scheduler being less efficient at high core
    #: counts (observed for ferret in Figure 7 of the paper).
    overhead_per_core_cycles: int = 4
    #: engine core-pick order, resolved via the ``"scheduler"`` component
    #: registry; built-in: "earliest" (smallest local clock first)
    policy: str = "earliest"

    def __post_init__(self) -> None:
        _component_choice("scheduler", self.policy, "policy")


@dataclass(frozen=True)
class AccountingConfig:
    """Parameters of the cycle-accounting hardware (Section 4).

    ``atd_sample_period`` selects one in every N LLC sets for ATD
    monitoring ("to reduce the hardware cost of the ATDs, only a few sets
    are monitored in the LLC").  ``spin_table_entries`` sizes the Tian
    et al. load-watch table ("assuming a spinning loop contains at most 8
    loads, 8 entries are needed").
    """

    atd_sample_period: int = 8
    spin_table_entries: int = 8
    spin_value_threshold: int = 2
    #: spin-detection scheme, resolved via the ``"spin_detector"``
    #: component registry; built-ins: "tian" (load-value), "li"
    #: (backward-branch)
    spin_detector: str = "tian"
    account_coherency: bool = False
    #: also run a full-tag (unsampled) shadow ATD per core, purely for
    #: verification: the report then carries oracle inter-thread counts
    #: against which the sampled extrapolation can be judged in-run
    atd_shadow_oracle: bool = False

    def __post_init__(self) -> None:
        _component_choice("spin_detector", self.spin_detector, "spin_detector")
        if self.atd_sample_period < 1:
            raise ValueError("atd_sample_period must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated CMP plus its accounting HW."""

    n_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * KB, assoc=4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, assoc=4)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * MB, assoc=16, hit_latency=30, hidden_latency=30
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    sched: SchedConfig = field(default_factory=SchedConfig)
    accounting: AccountingConfig = field(default_factory=AccountingConfig)
    #: static per-core LLC way quotas (cache partitioning, the paper's
    #: Section 7.1 remedy for negative LLC interference); None = fully
    #: shared ways
    llc_quotas: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.llc_quotas is not None:
            object.__setattr__(self, "llc_quotas", tuple(self.llc_quotas))
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.l1d.line_bytes != self.llc.line_bytes:
            raise ValueError("L1D and LLC line sizes must match (inclusive LLC)")
        if self.llc_quotas is not None:
            if len(self.llc_quotas) != self.n_cores:
                raise ValueError("need one LLC way quota per core")
            if sum(self.llc_quotas) > self.llc.assoc:
                raise ValueError("LLC way quotas exceed associativity")

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """Derive a config with a different core count."""
        return replace(self, n_cores=n_cores)

    def with_llc_size(self, size_bytes: int) -> "MachineConfig":
        """Derive a config with a different LLC capacity (Figure 9 sweep)."""
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))

    def with_llc_quotas(self, quotas: tuple[int, ...]) -> "MachineConfig":
        """Derive a config with statically partitioned LLC ways."""
        return replace(self, llc_quotas=quotas)


DEFAULT_MACHINE = MachineConfig()


# ----------------------------------------------------------------------
# experiment-level configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadConfig:
    """What to simulate: benchmarks, thread counts, and problem scale."""

    #: benchmark names from the synthetic suite; None = the full suite
    benchmarks: tuple[str, ...] | None = None
    thread_counts: tuple[int, ...] = (16,)
    #: problem-size scale factor applied to every benchmark
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.benchmarks is not None:
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "thread_counts", tuple(self.thread_counts))
        if not self.thread_counts:
            raise ValueError("thread_counts must not be empty")
        if any(n < 1 for n in self.thread_counts):
            raise ValueError(f"thread counts must be >= 1: {self.thread_counts}")
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0: {self.scale}")


@dataclass(frozen=True)
class RunConfig:
    """How to execute: error policy, watchdog limits, parallelism.

    Mirrors :class:`repro.experiments.runner.RunPolicy` (which stays the
    runner's internal type) plus the worker count for parallel sweeps.
    """

    on_error: str = "skip"
    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    #: cap on any single retry delay (the geometric growth is otherwise
    #: unbounded); None = uncapped
    backoff_max_s: float | None = 60.0
    #: full jitter: each retry delay is drawn uniformly from
    #: [0, capped delay], seeded per (cell, attempt) — decorrelates
    #: concurrent workers without sacrificing determinism
    backoff_jitter: bool = True
    #: engine watchdog limits; None = unarmed
    max_cycles: int | None = None
    livelock_window: int | None = None
    #: sweep worker processes (1 = serial, in-process)
    jobs: int = 1
    #: simulated cycles between periodic engine checkpoints; None = no
    #: periodic saves (watchdog/fault saves still fire when a
    #: ``checkpoint_dir`` is set)
    checkpoint_every: int | None = None
    #: directory for per-cell checkpoint files; None disables
    #: checkpointing entirely
    checkpoint_dir: str | None = None
    #: simulation engine backend, resolved via the ``"engine"``
    #: component registry; built-ins: "reference" (the per-op loop every
    #: backend is validated against), "vectorized" (flat-array state +
    #: event-horizon fast-forward; needs numpy, produces exactly the
    #: reference results)
    engine: str = "reference"

    def __post_init__(self) -> None:
        _component_choice("engine", self.engine, "engine")
        if self.on_error not in ON_ERROR_MODES:
            raise ConfigError(
                f"on_error: unknown mode {self.on_error!r}; "
                f"valid modes: {', '.join(ON_ERROR_MODES)}",
                field="on_error",
                choices=ON_ERROR_MODES,
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s is not None and self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment, end to end: the machine, the workload, the run.

    Frozen and hashable like every other config, and — unlike the nested
    sections — round-trippable through plain dicts (``to_dict`` /
    ``from_dict``) and config files (:func:`load_config` /
    :func:`dump_config`), so a single object describes an experiment in
    the CLI, in the batch runner, and across process boundaries in
    parallel sweeps.
    """

    machine: MachineConfig = field(default_factory=MachineConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    run: RunConfig = field(default_factory=RunConfig)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (nested dicts/lists/scalars, ``None`` omitted)."""
        return _to_plain(self)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ExperimentConfig":
        """Rebuild from :meth:`to_dict` output (or a parsed config file).

        Unknown keys and invalid values raise :class:`ConfigError`
        naming the full field path (e.g. ``machine.llc.replacement``)
        and, for registry-backed fields, the registered choices.
        """
        return _from_plain(cls, doc, path="")


#: nested dataclass-valued fields, per section type (needed because
#: ``from __future__ import annotations`` turns field types into strings)
_NESTED_TYPES: dict[type, dict[str, type]] = {
    MachineConfig: {
        "core": CoreConfig,
        "l1i": CacheConfig,
        "l1d": CacheConfig,
        "llc": CacheConfig,
        "dram": DramConfig,
        "sync": SyncConfig,
        "sched": SchedConfig,
        "accounting": AccountingConfig,
    },
    ExperimentConfig: {
        "machine": MachineConfig,
        "workload": WorkloadConfig,
        "run": RunConfig,
    },
}


def machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """Plain-data form of a machine (the ``machine`` table of a config
    file); the shape :func:`machine_from_dict` accepts."""
    return _to_plain(machine)


def machine_from_dict(doc: dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its dict form, with the
    same field-path error reporting as :meth:`ExperimentConfig.from_dict`."""
    return _from_plain(MachineConfig, doc, path="machine")


def _to_plain(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_plain(getattr(value, f.name))
            for f in fields(value)
            if getattr(value, f.name) is not None
        }
    if isinstance(value, tuple):
        return [_to_plain(v) for v in value]
    return value


def _from_plain(cls: Any, doc: Any, path: str) -> Any:
    where = path or cls.__name__
    if not isinstance(doc, dict):
        raise ConfigError(
            f"{where}: expected a table/object, got {type(doc).__name__}",
            field=where,
        )
    field_map = {f.name: f for f in fields(cls)}
    unknown = sorted(set(doc) - set(field_map))
    if unknown:
        raise ConfigError(
            f"{where}: unknown key(s) {', '.join(unknown)}; "
            f"valid keys: {', '.join(sorted(field_map))}",
            field=where,
            choices=tuple(sorted(field_map)),
        )
    nested = _NESTED_TYPES.get(cls, {})
    kwargs: dict[str, Any] = {}
    for name, value in doc.items():
        sub_path = f"{path}.{name}" if path else name
        if name in nested:
            kwargs[name] = _from_plain(nested[name], value, sub_path)
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        bad = f"{path}.{exc.field}" if path and exc.field else (exc.field or where)
        raise ConfigError(
            f"{where}: {exc}", field=bad, choices=exc.choices
        ) from exc
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{where}: {exc}", field=where) from exc


# ----------------------------------------------------------------------
# config files: TOML (read via stdlib tomllib) and JSON
# ----------------------------------------------------------------------


def load_config(path: str | Path) -> ExperimentConfig:
    """Load an :class:`ExperimentConfig` from a ``.toml`` or ``.json`` file.

    Any validation failure is reported as :class:`ConfigError` with the
    offending field path and — for registry-backed policy fields — the
    registered choices.
    """
    path = Path(path)
    try:
        if path.suffix.lower() == ".toml":
            import tomllib

            with path.open("rb") as fh:
                doc = tomllib.load(fh)
        else:
            with path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from exc
    except ValueError as exc:  # tomllib.TOMLDecodeError, json.JSONDecodeError
        raise ConfigError(f"cannot parse config {path}: {exc}") from exc
    return ExperimentConfig.from_dict(doc)


def dump_config(config: ExperimentConfig, path: str | Path) -> None:
    """Write a config file; format chosen by suffix (TOML or JSON)."""
    path = Path(path)
    doc = config.to_dict()
    if path.suffix.lower() == ".toml":
        path.write_text(dumps_toml(doc), encoding="utf-8")
    else:
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, list):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise ConfigError(f"cannot serialize {type(value).__name__} to TOML")


def dumps_toml(doc: dict[str, Any], _prefix: str = "") -> str:
    """Minimal TOML emitter for the nested dict-of-scalars config schema.

    The stdlib can parse TOML (:mod:`tomllib`) but not write it; this
    covers exactly the shapes :meth:`ExperimentConfig.to_dict` produces
    (nested tables of scalars and scalar lists).
    """
    lines: list[str] = []
    tables: list[tuple[str, dict]] = []
    for key, value in doc.items():
        if isinstance(value, dict):
            tables.append((key, value))
        else:
            lines.append(f"{key} = {_toml_scalar(value)}")
    out = "\n".join(lines)
    for key, value in tables:
        name = f"{_prefix}{key}"
        body = dumps_toml(value, _prefix=f"{name}.")
        out += f"\n\n[{name}]\n{body}" if body else f"\n\n[{name}]"
    return out.strip() + ("\n" if not _prefix else "")
