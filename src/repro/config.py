"""Machine and accounting configuration for the CMP simulator.

The defaults mirror the methodology section of the paper (Section 5): a
chip-multiprocessor of four-wide superscalar out-of-order cores with private
L1 caches (32KB I / 64KB D), a shared 2MB last-level L2 cache, a shared
memory bus and a memory subsystem with 8 banks.

All sizes are in bytes and all times in core cycles.  Configurations are
plain frozen dataclasses so experiment sweeps can use
:func:`dataclasses.replace` to derive variants (e.g. the Figure 9 LLC-size
sweep) without mutating shared state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``hit_latency`` is the load-to-use latency of a hit in this level;
    ``hidden_latency`` is the number of those cycles an out-of-order core
    is assumed to hide (Section 4.5 argues a balanced out-of-order core
    hides L1 misses, i.e. LLC hits, very well).
    """

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2
    hidden_latency: int = 2
    #: victim selection: "lru" (true LRU), "fifo" (insertion order,
    #: hits do not promote), or "random" (seeded, deterministic)
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement policy: {self.replacement!r}")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")
        if not _is_power_of_two(self.n_sets):
            raise ValueError(f"number of sets must be a power of two: {self.n_sets}")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class DramConfig:
    """Open-page DRAM with a shared bus and independently busy banks.

    Timing parameters follow conventional DDR-style nomenclature expressed
    in core cycles: ``t_cas`` is the column access on a page (row-buffer)
    hit, ``t_rcd`` the row activate, and ``t_rp`` the precharge (write-back
    of the currently open page).  A page conflict therefore costs
    ``t_rp + t_rcd + t_cas`` while a page hit costs only ``t_cas``.
    """

    n_banks: int = 8
    page_bytes: int = 4 * KB
    bus_cycles: int = 16
    t_cas: int = 40
    t_rcd: int = 60
    t_rp: int = 60

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n_banks):
            raise ValueError(f"bank count must be a power of two: {self.n_banks}")
        if not _is_power_of_two(self.page_bytes):
            raise ValueError(f"page size must be a power of two: {self.page_bytes}")

    @property
    def page_hit_cycles(self) -> int:
        return self.t_cas

    @property
    def page_conflict_cycles(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas

    @property
    def page_empty_cycles(self) -> int:
        """Cost when the bank has no page open at all (activate + access)."""
        return self.t_rcd + self.t_cas

    @property
    def conflict_extra_cycles(self) -> int:
        """Extra cycles of a page conflict over a page hit."""
        return self.page_conflict_cycles - self.page_hit_cycles


@dataclass(frozen=True)
class CoreConfig:
    """Interval-model parameters of one out-of-order core."""

    dispatch_width: int = 4
    rob_size: int = 128
    coherence_write_latency: int = 8

    @property
    def rob_drain_cycles(self) -> int:
        """Cycles of useful dispatch available while a miss drains the ROB."""
        return self.rob_size // self.dispatch_width


@dataclass(frozen=True)
class SyncConfig:
    """Spin-then-yield synchronization library behaviour.

    A contended acquire spins for ``spin_threshold`` loop iterations and
    then asks the OS to deschedule the thread (Section 4.4); each spin
    iteration executes a real load of the synchronization variable plus
    ``spin_iter_instrs`` loop-overhead instructions so the spin-detection
    hardware observes a genuine instruction stream.
    """

    spin_threshold: int = 48
    spin_iter_instrs: int = 4


@dataclass(frozen=True)
class SchedConfig:
    """Operating-system scheduler model."""

    timeslice_cycles: int = 100_000
    context_switch_cycles: int = 400
    wakeup_latency_cycles: int = 600
    #: Extra per-scheduling-event overhead added per core in the machine,
    #: modelling the Linux scheduler being less efficient at high core
    #: counts (observed for ferret in Figure 7 of the paper).
    overhead_per_core_cycles: int = 4


@dataclass(frozen=True)
class AccountingConfig:
    """Parameters of the cycle-accounting hardware (Section 4).

    ``atd_sample_period`` selects one in every N LLC sets for ATD
    monitoring ("to reduce the hardware cost of the ATDs, only a few sets
    are monitored in the LLC").  ``spin_table_entries`` sizes the Tian
    et al. load-watch table ("assuming a spinning loop contains at most 8
    loads, 8 entries are needed").
    """

    atd_sample_period: int = 8
    spin_table_entries: int = 8
    spin_value_threshold: int = 2
    spin_detector: str = "tian"
    account_coherency: bool = False
    #: also run a full-tag (unsampled) shadow ATD per core, purely for
    #: verification: the report then carries oracle inter-thread counts
    #: against which the sampled extrapolation can be judged in-run
    atd_shadow_oracle: bool = False

    def __post_init__(self) -> None:
        if self.spin_detector not in ("tian", "li"):
            raise ValueError(f"unknown spin detector: {self.spin_detector!r}")
        if self.atd_sample_period < 1:
            raise ValueError("atd_sample_period must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated CMP plus its accounting HW."""

    n_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * KB, assoc=4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, assoc=4)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * MB, assoc=16, hit_latency=30, hidden_latency=30
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    sched: SchedConfig = field(default_factory=SchedConfig)
    accounting: AccountingConfig = field(default_factory=AccountingConfig)
    #: static per-core LLC way quotas (cache partitioning, the paper's
    #: Section 7.1 remedy for negative LLC interference); None = fully
    #: shared ways
    llc_quotas: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.l1d.line_bytes != self.llc.line_bytes:
            raise ValueError("L1D and LLC line sizes must match (inclusive LLC)")
        if self.llc_quotas is not None:
            if len(self.llc_quotas) != self.n_cores:
                raise ValueError("need one LLC way quota per core")
            if sum(self.llc_quotas) > self.llc.assoc:
                raise ValueError("LLC way quotas exceed associativity")

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """Derive a config with a different core count."""
        return replace(self, n_cores=n_cores)

    def with_llc_size(self, size_bytes: int) -> "MachineConfig":
        """Derive a config with a different LLC capacity (Figure 9 sweep)."""
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))

    def with_llc_quotas(self, quotas: tuple[int, ...]) -> "MachineConfig":
        """Derive a config with statically partitioned LLC ways."""
        return replace(self, llc_quotas=quotas)


DEFAULT_MACHINE = MachineConfig()
