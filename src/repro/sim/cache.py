"""Set-associative cache tag store with configurable replacement.

Used for the private L1s, the shared LLC, and (re-used unchanged) for the
per-core auxiliary tag directories (ATDs) of the accounting hardware —
the paper's ATD "has as many ways as the shared LLC and keeps track of
the tags and status bits for each cache line".

Three victim-selection policies: true LRU (default, the paper's
configuration), FIFO (hits do not promote), and seeded-random
(deterministic across runs).
"""

from __future__ import annotations

import random
from collections import OrderedDict

from repro.config import CacheConfig
from repro.sim.address import CacheGeometry


class SetAssocCache:
    """A tag-only set-associative cache.

    Lines are identified by their line-aligned address (``line_addr``);
    the set index and tag are derived internally.  Each set is an
    ``OrderedDict`` from line address to a dirty flag, ordered from
    eviction candidate (front) to most recently inserted/used (back).
    """

    __slots__ = ("geometry", "assoc", "_sets", "n_hits", "n_misses",
                 "n_evictions", "_promote_on_hit", "_rng")

    def __init__(self, config: CacheConfig) -> None:
        self.geometry = CacheGeometry.from_config(config)
        self.assoc = config.assoc
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self._promote_on_hit = config.replacement == "lru"
        self._rng = (
            random.Random(config.size_bytes ^ config.assoc)
            if config.replacement == "random"
            else None
        )

    def set_index_of(self, line_addr: int) -> int:
        return line_addr & (self.geometry.n_sets - 1)

    def lookup(self, line_addr: int, *, update_lru: bool = True) -> bool:
        """Probe the cache; on a hit optionally promote the line to MRU."""
        cache_set = self._sets[line_addr & (self.geometry.n_sets - 1)]
        if line_addr in cache_set:
            if update_lru and self._promote_on_hit:
                cache_set.move_to_end(line_addr)
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without disturbing LRU order or hit/miss counters."""
        return line_addr in self._sets[line_addr & (self.geometry.n_sets - 1)]

    def fill(
        self, line_addr: int, *, dirty: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        """Insert a line as MRU; return ``(victim_line, victim_dirty)`` if
        the insertion evicted a line, else ``None``.  ``owner`` is
        accepted for interface compatibility with the way-partitioned
        variant and ignored here (fully shared ways)."""
        cache_set = self._sets[line_addr & (self.geometry.n_sets - 1)]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = cache_set[line_addr] or dirty
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            if self._rng is not None:
                victim_line = self._rng.choice(list(cache_set))
                victim = (victim_line, cache_set.pop(victim_line))
            else:
                victim = cache_set.popitem(last=False)
            self.n_evictions += 1
        cache_set[line_addr] = dirty
        return victim

    def mark_dirty(self, line_addr: int) -> None:
        cache_set = self._sets[line_addr & (self.geometry.n_sets - 1)]
        if line_addr in cache_set:
            cache_set[line_addr] = True

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (coherence invalidation or inclusion victim)."""
        cache_set = self._sets[line_addr & (self.geometry.n_sets - 1)]
        if line_addr in cache_set:
            del cache_set[line_addr]
            return True
        return False

    def occupancy(self) -> int:
        """Total number of valid lines (for tests and introspection)."""
        return sum(len(s) for s in self._sets)

    def lines_in_set(self, set_index: int) -> list[int]:
        """Line addresses in one set, LRU first (for tests)."""
        return list(self._sets[set_index].keys())
