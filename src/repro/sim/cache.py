"""Set-associative cache tag store with configurable replacement.

Used for the private L1s, the shared LLC, and (re-used unchanged) for the
per-core auxiliary tag directories (ATDs) of the accounting hardware —
the paper's ATD "has as many ways as the shared LLC and keeps track of
the tags and status bits for each cache line".

Victim selection is delegated to a :class:`~repro.components.protocols.
ReplacementPolicy` resolved by name from the component registry
(built-ins: "lru" — the paper's configuration — "fifo", and
seeded-random "random"); the cache keeps the hot path and asks the
policy only for the promote-on-hit rule and the victim choice.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict

from repro.components.registry import resolve
from repro.config import CacheConfig
from repro.sim.address import CacheGeometry


class SetAssocCache:
    """A tag-only set-associative cache.

    Lines are identified by their line-aligned address (``line_addr``);
    the set index and tag are derived internally.  Each set is an
    ``OrderedDict`` from line address to a dirty flag, ordered from
    eviction candidate (front) to most recently inserted/used (back).

    With ``sparse=True`` the per-set dictionaries are materialized on
    first touch instead of all up front.  Set-sampled users (the ATDs,
    which only ever probe one in ``sample_period`` sets) pay O(touched
    sets) instead of O(n_sets) per construction; dense users (L1, LLC)
    keep the eagerly built list, whose indexing is cheapest on the hot
    path.  Both layouts are indexed identically.
    """

    __slots__ = ("geometry", "assoc", "generation", "_sets", "n_hits",
                 "n_misses", "n_evictions", "_promote_on_hit", "_policy",
                 "_set_mask", "_sparse")

    def __init__(self, config: CacheConfig, *, sparse: bool = False) -> None:
        self.geometry = CacheGeometry.from_config(config)
        self.assoc = config.assoc
        self._set_mask = config.n_sets - 1
        self._sparse = sparse
        if sparse:
            self._sets: defaultdict[int, OrderedDict[int, bool]] = (
                defaultdict(OrderedDict)
            )
        else:
            self._sets = [OrderedDict() for _ in range(config.n_sets)]
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        #: bumped by :meth:`reset`; lets pooled users detect staleness
        self.generation = 0
        self._policy = resolve("replacement", config.replacement)(config)
        # Read once and inlined into the lookup hot path.
        self._promote_on_hit = self._policy.promote_on_hit

    def set_index_of(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def lookup(self, line_addr: int, *, update_lru: bool = True) -> bool:
        """Probe the cache; on a hit optionally promote the line to MRU."""
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            if update_lru and self._promote_on_hit:
                cache_set.move_to_end(line_addr)
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without disturbing LRU order or hit/miss counters."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def fill(
        self, line_addr: int, *, dirty: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        """Insert a line as MRU; return ``(victim_line, victim_dirty)`` if
        the insertion evicted a line, else ``None``.  ``owner`` is
        accepted for interface compatibility with the way-partitioned
        variant and ignored here (fully shared ways)."""
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = cache_set[line_addr] or dirty
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim_line = self._policy.select_victim(cache_set)
            victim = (victim_line, cache_set.pop(victim_line))
            self.n_evictions += 1
        cache_set[line_addr] = dirty
        return victim

    def warm_fill(
        self, line_addr: int, *, promote: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        """Untimed warmup insert: one probe, no hit/miss counter churn.

        A resident line is left where it is (``promote=False``, the LLC
        warmup semantics: warming must not reorder an already-steady
        set) or promoted under the replacement policy's normal hit rule
        (``promote=True``, the ATD warmup semantics, equivalent to an
        uncounted ``lookup``).  An absent line is inserted exactly like
        :meth:`fill`, including eviction accounting and RNG draws, so a
        warmed cache is bit-identical to one warmed via the old
        ``contains`` + ``fill`` / counter-rollback sequences.
        """
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            if promote and self._promote_on_hit:
                cache_set.move_to_end(line_addr)
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim_line = self._policy.select_victim(cache_set)
            victim = (victim_line, cache_set.pop(victim_line))
            self.n_evictions += 1
        cache_set[line_addr] = False
        return victim

    def mark_dirty(self, line_addr: int) -> None:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            cache_set[line_addr] = True

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (coherence invalidation or inclusion victim)."""
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            del cache_set[line_addr]
            return True
        return False

    def reset(self) -> None:
        """Return to the post-construction state without rebuilding the
        per-set dictionaries: occupied sets are cleared in place, the
        counters zeroed, the replacement RNG re-seeded, and the
        ``generation`` counter bumped.  Pooled users (repeated cells in
        a sweep, benchmark harnesses) call this instead of allocating
        ``n_sets`` fresh ``OrderedDict`` objects per run."""
        if self._sparse:
            self._sets.clear()
        else:
            for cache_set in self._sets:
                if cache_set:
                    cache_set.clear()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self._policy.reset()
        self.generation += 1

    def occupancy(self) -> int:
        """Total number of valid lines (for tests and introspection)."""
        if self._sparse:
            return sum(len(s) for s in self._sets.values())
        return sum(len(s) for s in self._sets)

    def counters(self) -> dict[str, int]:
        """Post-run counter snapshot for the observability layer — a
        zero-hot-path-cost alternative to per-access hooks."""
        return {
            "hits": self.n_hits,
            "misses": self.n_misses,
            "evictions": self.n_evictions,
            "occupancy": self.occupancy(),
        }

    def lines_in_set(self, set_index: int) -> list[int]:
        """Line addresses in one set, LRU first (for tests)."""
        if self._sparse:
            return list(self._sets.get(set_index, ()))
        return list(self._sets[set_index].keys())

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """All mutable tag-store state, JSON-safe.

        Non-empty sets only, as ``[set_index, [lines...], [dirty...]]``
        triples (parallel flat lists — cheaper to build and encode than
        per-line pairs; checkpoint saves walk every set); within a set
        the line order *is* the replacement order (eviction candidate
        first), so restoring in order reproduces LRU/FIFO behaviour
        exactly.  For sparse stores the triple order is the set
        materialization order, which keeps the round trip byte-stable.
        A stateful replacement policy (seeded random) contributes its
        RNG state under ``"policy"``.
        """
        if self._sparse:
            sets = [
                [index, list(entries.keys()), list(entries.values())]
                for index, entries in self._sets.items()
                if entries
            ]
        else:
            sets = [
                [index, list(entries.keys()), list(entries.values())]
                for index, entries in enumerate(self._sets)
                if entries
            ]
        state = {
            "sets": sets,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_evictions": self.n_evictions,
            "generation": self.generation,
        }
        policy_state = getattr(self._policy, "state_dict", None)
        if policy_state is not None:
            state["policy"] = policy_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config cache."""
        if self._sparse:
            self._sets.clear()
        else:
            for cache_set in self._sets:
                if cache_set:
                    cache_set.clear()
        for index, lines, dirty_bits in state["sets"]:
            cache_set = self._sets[index]
            for line, dirty in zip(lines, dirty_bits):
                cache_set[line] = dirty
        self.n_hits = state["n_hits"]
        self.n_misses = state["n_misses"]
        self.n_evictions = state["n_evictions"]
        self.generation = state["generation"]
        policy_load = getattr(self._policy, "load_state_dict", None)
        if policy_load is not None and "policy" in state:
            policy_load(state["policy"])
