"""Way-partitioned shared LLC.

The paper's architect-facing use case (Section 7.1): "if negative
interference in the LLC ... is a major component for several important
applications according to the speedup stacks, processor designers can
put more resources towards avoiding negative interference, for example
through novel cache partitioning algorithms."  This module provides the
mechanism: a shared LLC whose ways are statically partitioned among
cores, so one core's fills can only evict lines within its own quota —
a polluter (e.g. a streaming thread) can no longer wipe its neighbours'
working sets.

Lookup is unchanged (any core hits on any resident line — the cache is
still shared for data); only *victim selection* is partition-aware:

* a fill by core *c* evicts core *c*'s LRU line once *c* holds its
  quota in the set;
* while *c* is under quota, it may take a free way, or steal the LRU
  line of whichever core currently exceeds its own quota (quota
  rebalancing after reconfiguration).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.sim.address import CacheGeometry


class WayPartitionedCache:
    """Set-associative cache with per-core way quotas.

    Interface-compatible with :class:`~repro.sim.cache.SetAssocCache`
    except that :meth:`fill` takes the filling core (``owner``).
    """

    __slots__ = ("geometry", "assoc", "quotas", "generation", "_sets",
                 "_owners", "n_hits", "n_misses", "n_evictions", "_set_mask")

    def __init__(self, config: CacheConfig, quotas: tuple[int, ...]) -> None:
        if sum(quotas) > config.assoc:
            raise ConfigError(
                f"way quotas {quotas} exceed associativity {config.assoc}"
            )
        if any(q < 1 for q in quotas):
            raise ConfigError("every core needs at least one way")
        self.geometry = CacheGeometry.from_config(config)
        self.assoc = config.assoc
        self.quotas = quotas
        self._set_mask = config.n_sets - 1
        #: per set: line -> dirty, in eviction order per insertion/use
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        #: per set: line -> owning core
        self._owners: list[dict[int, int]] = [
            {} for _ in range(config.n_sets)
        ]
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.generation = 0

    # -- SetAssocCache-compatible surface ---------------------------------

    def lookup(self, line_addr: int, *, update_lru: bool = True) -> bool:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            if update_lru:
                cache_set.move_to_end(line_addr)
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr & self._set_mask]

    def mark_dirty(self, line_addr: int) -> None:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            cache_set[line_addr] = True

    def invalidate(self, line_addr: int) -> bool:
        index = line_addr & self._set_mask
        cache_set = self._sets[index]
        if line_addr in cache_set:
            del cache_set[line_addr]
            self._owners[index].pop(line_addr, None)
            return True
        return False

    def reset(self) -> None:
        """In-place reset (see :meth:`SetAssocCache.reset`)."""
        for index, cache_set in enumerate(self._sets):
            if cache_set:
                cache_set.clear()
                self._owners[index].clear()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.generation += 1

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def counters(self) -> dict[str, int]:
        """Post-run counter snapshot (see :meth:`SetAssocCache.counters`)."""
        return {
            "hits": self.n_hits,
            "misses": self.n_misses,
            "evictions": self.n_evictions,
            "occupancy": self.occupancy(),
        }

    def lines_in_set(self, set_index: int) -> list[int]:
        return list(self._sets[set_index].keys())

    # -- partition-aware fill ----------------------------------------------

    def owner_of(self, line_addr: int) -> int | None:
        index = line_addr & self._set_mask
        return self._owners[index].get(line_addr)

    def owned_in_set(self, set_index: int, core: int) -> int:
        return sum(
            1 for owner in self._owners[set_index].values() if owner == core
        )

    def fill(
        self, line_addr: int, *, dirty: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        """Insert a line for ``owner``; evict within its partition."""
        index = line_addr & self._set_mask
        cache_set = self._sets[index]
        owners = self._owners[index]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = cache_set[line_addr] or dirty
            owners[line_addr] = owner
            return None

        victim = None
        quota = self.quotas[owner] if owner < len(self.quotas) else 1
        if self.owned_in_set(index, owner) >= quota:
            victim_line = self._lru_line_of(index, owner)
            victim = (victim_line, cache_set.pop(victim_line))
            owners.pop(victim_line, None)
            self.n_evictions += 1
        elif len(cache_set) >= self.assoc:
            # Under quota but the set is full: someone is over quota
            # (e.g. after a reconfiguration) — steal their LRU line.
            victim_line = self._lru_line_over_quota(index)
            victim = (victim_line, cache_set.pop(victim_line))
            owners.pop(victim_line, None)
            self.n_evictions += 1
        cache_set[line_addr] = dirty
        owners[line_addr] = owner
        return victim

    def warm_fill(
        self, line_addr: int, *, promote: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        """Untimed warmup insert (see :meth:`SetAssocCache.warm_fill`).

        A resident line keeps its position *and* its current owner —
        warming an already-warm line must not transfer quota."""
        index = line_addr & self._set_mask
        cache_set = self._sets[index]
        if line_addr in cache_set:
            if promote:
                cache_set.move_to_end(line_addr)
            return None
        owners = self._owners[index]
        victim = None
        quota = self.quotas[owner] if owner < len(self.quotas) else 1
        if self.owned_in_set(index, owner) >= quota:
            victim_line = self._lru_line_of(index, owner)
            victim = (victim_line, cache_set.pop(victim_line))
            owners.pop(victim_line, None)
            self.n_evictions += 1
        elif len(cache_set) >= self.assoc:
            victim_line = self._lru_line_over_quota(index)
            victim = (victim_line, cache_set.pop(victim_line))
            owners.pop(victim_line, None)
            self.n_evictions += 1
        cache_set[line_addr] = False
        owners[line_addr] = owner
        return victim

    # -- checkpointing (Snapshotable) --------------------------------------

    def state_dict(self) -> dict:
        """Tag, LRU-order, and per-line ownership state, JSON-safe.

        Same layout as :meth:`SetAssocCache.state_dict` plus an
        ``"owners"`` list mirroring ``"sets"``: for every non-empty set,
        ``[set_index, [[line, core], ...]]`` in insertion order.
        """
        sets = [
            [index, [[line, dirty] for line, dirty in entries.items()]]
            for index, entries in enumerate(self._sets)
            if entries
        ]
        owners = [
            [index, [[line, core] for line, core in owned.items()]]
            for index, owned in enumerate(self._owners)
            if owned
        ]
        return {
            "sets": sets,
            "owners": owners,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_evictions": self.n_evictions,
            "generation": self.generation,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config cache."""
        for index, cache_set in enumerate(self._sets):
            if cache_set:
                cache_set.clear()
                self._owners[index].clear()
        for index, entries in state["sets"]:
            cache_set = self._sets[index]
            for line, dirty in entries:
                cache_set[line] = dirty
        for index, owned in state["owners"]:
            owners = self._owners[index]
            for line, core in owned:
                owners[line] = core
        self.n_hits = state["n_hits"]
        self.n_misses = state["n_misses"]
        self.n_evictions = state["n_evictions"]
        self.generation = state["generation"]

    def _lru_line_of(self, set_index: int, core: int) -> int:
        owners = self._owners[set_index]
        for line in self._sets[set_index]:
            if owners.get(line) == core:
                return line
        raise AssertionError("quota accounting out of sync")

    def _lru_line_over_quota(self, set_index: int) -> int:
        owners = self._owners[set_index]
        counts: dict[int, int] = {}
        for owner in owners.values():
            counts[owner] = counts.get(owner, 0) + 1
        over = {
            core for core, held in counts.items()
            if held > (self.quotas[core] if core < len(self.quotas) else 1)
        }
        for line in self._sets[set_index]:
            if owners.get(line) in over:
                return line
        # Nobody over quota (quotas under-subscribe the ways): fall back
        # to global LRU.
        return next(iter(self._sets[set_index]))


def equal_quotas(assoc: int, n_cores: int) -> tuple[int, ...]:
    """An equal static split of the ways (remainder to the first cores)."""
    if n_cores > assoc:
        raise ConfigError(f"{n_cores} cores cannot each get a way of {assoc}")
    base = assoc // n_cores
    remainder = assoc - base * n_cores
    return tuple(base + (1 if c < remainder else 0) for c in range(n_cores))
