"""MSI-style coherence directory over the private L1 data caches.

The shared LLC is inclusive, so the directory logically lives alongside
the LLC tags.  The model tracks, per line, which cores hold an L1 copy;
a write by one core invalidates the copies of all other cores
(write-invalidate protocol).  Invalidations leave the tag behind in the
victim L1 (status bits cleared, tag retained), which is exactly the
state the paper's optional coherency-miss detector keys on: "if a miss
occurs, but there is a hit in the tag array and the status is invalid,
we can assume that this is most likely a coherency miss" (Section 4.5).

The directory additionally tracks a per-word version and last-writer,
which is the architectural "data value" surface the Tian et al. spin
detector observes: a spinning load keeps reading the same version until
another core's store bumps it.
"""

from __future__ import annotations

from repro.sim.address import word_addr


class CoherenceDirectory:
    """Sharer tracking, invalidation, and load-value versioning."""

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores
        #: line address -> set of core ids holding an L1 copy
        self._sharers: dict[int, set[int]] = {}
        #: per core: line addresses invalidated by coherence whose tag
        #: is still resident in the L1 tag array
        self._invalid_tags: list[set[int]] = [set() for _ in range(n_cores)]
        #: word address -> (version, writer core) for load-value tracking
        self._word_versions: dict[int, tuple[int, int]] = {}
        self.n_invalidations = 0
        self.n_upgrade_writes = 0

    # ------------------------------------------------------------------
    # sharer bookkeeping
    # ------------------------------------------------------------------

    def sharers_of(self, line_addr: int) -> frozenset[int]:
        return frozenset(self._sharers.get(line_addr, ()))

    def add_sharer(self, line_addr: int, core_id: int) -> None:
        self._sharers.setdefault(line_addr, set()).add(core_id)
        self._invalid_tags[core_id].discard(line_addr)

    def remove_sharer(self, line_addr: int, core_id: int) -> None:
        """Core evicted the line from its L1 (no invalid tag left behind)."""
        sharers = self._sharers.get(line_addr)
        if sharers is not None:
            sharers.discard(core_id)
            if not sharers:
                del self._sharers[line_addr]
        self._invalid_tags[core_id].discard(line_addr)

    def write_invalidate(self, line_addr: int, writer_core: int) -> list[int]:
        """Invalidate all other cores' copies before a write.

        Returns the list of cores whose copy was invalidated (coherence
        traffic).  The writer's own copy, if any, is upgraded in place.
        """
        sharers = self._sharers.get(line_addr)
        if not sharers:
            return []
        victims = [core for core in sharers if core != writer_core]
        if victims:
            self.n_invalidations += len(victims)
            self.n_upgrade_writes += 1
            for core in victims:
                self._invalid_tags[core].add(line_addr)
            if writer_core in sharers:
                self._sharers[line_addr] = {writer_core}
            else:
                del self._sharers[line_addr]
        return victims

    def drop_line(self, line_addr: int) -> list[int]:
        """LLC eviction of an inclusive line: all L1 copies must go."""
        sharers = self._sharers.pop(line_addr, None)
        victims = list(sharers) if sharers else []
        for core in victims:
            self._invalid_tags[core].discard(line_addr)
        return victims

    # ------------------------------------------------------------------
    # coherency-miss detection (Section 4.5, optional accounting)
    # ------------------------------------------------------------------

    def consume_coherency_miss(self, line_addr: int, core_id: int) -> bool:
        """On an L1 miss: was this a tag-hit-but-invalid (coherency) miss?"""
        invalid = self._invalid_tags[core_id]
        if line_addr in invalid:
            invalid.discard(line_addr)
            return True
        return False

    # ------------------------------------------------------------------
    # load-value versioning (input to the Tian et al. spin detector)
    # ------------------------------------------------------------------

    def record_store(self, addr: int, writer_core: int) -> None:
        word = word_addr(addr)
        version, _ = self._word_versions.get(word, (0, -1))
        self._word_versions[word] = (version + 1, writer_core)

    def load_value(self, addr: int) -> tuple[int, int]:
        """(version, last-writer core) observed by a load; (-1,-1) if never
        written during the simulation (immutable/initial data)."""
        return self._word_versions.get(word_addr(addr), (-1, -1))

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Directory state, JSON-safe.

        Sharer and invalid-tag sets serialize sorted: for small-int
        core ids and line addresses, CPython set iteration order is a
        function of the members alone, so a sorted rebuild is
        behaviourally identical and gives canonical bytes.
        """
        return {
            "sharers": [
                [line, sorted(cores)]
                for line, cores in self._sharers.items()
            ],
            "invalid_tags": [sorted(tags) for tags in self._invalid_tags],
            "word_versions": [
                [word, version, writer]
                for word, (version, writer) in self._word_versions.items()
            ],
            "n_invalidations": self.n_invalidations,
            "n_upgrade_writes": self.n_upgrade_writes,
        }

    def load_state_dict(self, state: dict) -> None:
        self._sharers = {
            line: set(cores) for line, cores in state["sharers"]
        }
        self._invalid_tags = [set(tags) for tags in state["invalid_tags"]]
        self._word_versions = {
            word: (version, writer)
            for word, version, writer in state["word_versions"]
        }
        self.n_invalidations = state["n_invalidations"]
        self.n_upgrade_writes = state["n_upgrade_writes"]
