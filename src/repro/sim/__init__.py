"""The chip-multiprocessor simulator substrate.

Stands in for the paper's gem5 setup: a deterministic discrete-event
multicore with interval-model out-of-order cores, private L1 caches, a
shared non-inclusive LLC, MSI coherence, and open-page DRAM behind a
shared bus.  See :mod:`repro.sim.engine` for the execution model.
"""
