"""Main-memory model: shared bus, independent banks, open-page policy.

Negative memory interference in the paper comes from three places
(Section 3.1), all modelled here:

* **bus conflicts** — the single memory bus is occupied by another core's
  transfer when an access wants it;
* **bank conflicts** — the target bank is still servicing another core's
  access;
* **open-page conflicts** — another core opened a different page in the
  bank between two of this core's accesses to the same page, turning a
  would-be row-buffer hit into a page conflict (precharge + activate).

Every access returns a :class:`DramAccessResult` carrying both its total
latency and the decomposition of its waiting time into own-core versus
other-core cycles, which is what the accounting hardware consumes
("if a memory access is ready to access the bus or a specific memory
bank, and the bus or bank is occupied by a memory access of another
core, then the waiting time until the bus or bank is free is accounted
as interference cycles", Section 4.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.components.paging import PAGE_CONFLICT, PAGE_EMPTY, PAGE_HIT
from repro.components.registry import resolve
from repro.config import DramConfig
from repro.sim.address import DramGeometry

__all__ = [
    "PAGE_CONFLICT",
    "PAGE_EMPTY",
    "PAGE_HIT",
    "DramAccessResult",
    "MainMemory",
]


@dataclass(frozen=True)
class DramAccessResult:
    """Timing and attribution of one DRAM access."""

    latency: int
    bank_index: int
    page_id: int
    page_outcome: str
    #: page that was open in the bank before this access (None if empty)
    prev_open_page: int | None
    #: core that had opened that page (None if bank was empty)
    prev_opener: int | None
    bus_wait_other: int
    bank_wait_other: int
    #: extra cycles this access paid versus a page hit (0 when outcome=hit)
    page_extra_cycles: int


class _SharedResource:
    """A resource that is busy for intervals, with per-core attribution.

    Keeps a short history of reservations ``(start, end, core)`` so that a
    waiting interval can be split into cycles caused by the same core
    (its own earlier requests) and cycles caused by other cores.
    """

    __slots__ = ("free_time", "_reservations")

    def __init__(self) -> None:
        self.free_time = 0
        self._reservations: deque[tuple[int, int, int]] = deque()

    def reserve(self, t_ready: int, duration: int, core_id: int) -> tuple[int, int]:
        """Reserve the resource; returns (start_time, wait_from_others)."""
        start = self.free_time if self.free_time > t_ready else t_ready
        wait_other = 0
        if start > t_ready:
            wait_other = self._overlap_from_others(t_ready, start, core_id)
        end = start + duration
        self.free_time = end
        reservations = self._reservations
        reservations.append((start, end, core_id))
        while reservations and reservations[0][1] <= t_ready:
            reservations.popleft()
        return start, wait_other

    def _overlap_from_others(self, t_from: int, t_to: int, core_id: int) -> int:
        total = 0
        for start, end, owner in self._reservations:
            if owner == core_id or end <= t_from or start >= t_to:
                continue
            lo = start if start > t_from else t_from
            hi = end if end < t_to else t_to
            total += hi - lo
        return total if total < t_to - t_from else t_to - t_from

    def state_dict(self) -> dict:
        return {
            "free_time": self.free_time,
            "reservations": [list(r) for r in self._reservations],
        }

    def load_state_dict(self, state: dict) -> None:
        self.free_time = state["free_time"]
        self._reservations = deque(
            (start, end, core) for start, end, core in state["reservations"]
        )


class _Bank:
    """One DRAM bank: busy window plus the currently open page."""

    __slots__ = ("resource", "open_page", "opener_core")

    def __init__(self) -> None:
        self.resource = _SharedResource()
        self.open_page: int | None = None
        self.opener_core: int | None = None


class MainMemory:
    """Open-page DRAM behind a single shared bus."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.geometry = DramGeometry.from_config(config)
        self.page_policy = resolve("page_policy", config.page_policy)(config)
        self.bus = _SharedResource()
        self.banks = [_Bank() for _ in range(config.n_banks)]
        self.n_accesses = 0
        self.n_page_hits = 0
        self.n_page_conflicts = 0
        self.n_writebacks = 0

    def access(self, addr: int, core_id: int, t_request: int) -> DramAccessResult:
        """Service a demand access (LLC miss) arriving at ``t_request``."""
        self.n_accesses += 1
        bank_index = self.geometry.bank_index(addr)
        page_id = self.geometry.page_id(addr)
        bank = self.banks[bank_index]

        prev_open_page = bank.open_page
        prev_opener = bank.opener_core
        outcome, service = self.page_policy.classify(prev_open_page, page_id)
        if outcome == PAGE_HIT:
            self.n_page_hits += 1
        elif outcome == PAGE_CONFLICT:
            self.n_page_conflicts += 1

        bank_start, bank_wait_other = bank.resource.reserve(
            t_request, service, core_id
        )
        bank_done = bank_start + service
        bank.open_page = self.page_policy.page_after(page_id)
        bank.opener_core = core_id if bank.open_page is not None else None

        bus_start, bus_wait_other = self.bus.reserve(
            bank_done, self.config.bus_cycles, core_id
        )
        done = bus_start + self.config.bus_cycles

        return DramAccessResult(
            latency=done - t_request,
            bank_index=bank_index,
            page_id=page_id,
            page_outcome=outcome,
            prev_open_page=prev_open_page,
            prev_opener=prev_opener,
            bus_wait_other=bus_wait_other,
            bank_wait_other=bank_wait_other,
            page_extra_cycles=service - self.config.page_hit_cycles,
        )

    def writeback(self, addr: int, core_id: int, t_request: int) -> None:
        """Fire-and-forget write of a dirty LLC victim.

        The writing core does not stall, but the write occupies the bus
        and a bank, so it interferes with other cores' demand accesses.
        """
        self.n_writebacks += 1
        bank = self.banks[self.geometry.bank_index(addr)]
        page_id = self.geometry.page_id(addr)
        _outcome, service = self.page_policy.classify(bank.open_page, page_id)
        bank_start, _ = bank.resource.reserve(t_request, service, core_id)
        bank.open_page = self.page_policy.page_after(page_id)
        bank.opener_core = core_id if bank.open_page is not None else None
        self.bus.reserve(bank_start + service, self.config.bus_cycles, core_id)

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Bus/bank occupancy windows, open pages, and counters.

        The reservation deques are restored exactly — the waiting-time
        attribution in :meth:`_SharedResource._overlap_from_others`
        depends on them, so dropping history would perturb the
        interference decomposition right after a resume.
        """
        state = {
            "bus": self.bus.state_dict(),
            "banks": [
                {
                    "resource": bank.resource.state_dict(),
                    "open_page": bank.open_page,
                    "opener_core": bank.opener_core,
                }
                for bank in self.banks
            ],
            "n_accesses": self.n_accesses,
            "n_page_hits": self.n_page_hits,
            "n_page_conflicts": self.n_page_conflicts,
            "n_writebacks": self.n_writebacks,
        }
        policy_state = getattr(self.page_policy, "state_dict", None)
        if policy_state is not None:
            state["page_policy"] = policy_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.bus.load_state_dict(state["bus"])
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.resource.load_state_dict(bank_state["resource"])
            bank.open_page = bank_state["open_page"]
            bank.opener_core = bank_state["opener_core"]
        self.n_accesses = state["n_accesses"]
        self.n_page_hits = state["n_page_hits"]
        self.n_page_conflicts = state["n_page_conflicts"]
        self.n_writebacks = state["n_writebacks"]
        policy_load = getattr(self.page_policy, "load_state_dict", None)
        if policy_load is not None and "page_policy" in state:
            policy_load(state["page_policy"])
