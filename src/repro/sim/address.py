"""Address arithmetic helpers for the memory hierarchy.

Physical addresses are plain integers.  Each structure (cache level, DRAM
bank/page mapping) derives its index/tag decomposition from its geometry.
Keeping this in one place ensures the timing model, the coherence
directory and the accounting hardware (ATD, ORA) all agree on how an
address maps onto sets, banks and pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig, DramConfig


@dataclass(frozen=True)
class CacheGeometry:
    """Pre-computed shift/mask decomposition for one cache geometry."""

    line_bytes: int
    n_sets: int
    _line_shift: int
    _set_mask: int

    @classmethod
    def from_config(cls, config: CacheConfig) -> "CacheGeometry":
        return cls(
            line_bytes=config.line_bytes,
            n_sets=config.n_sets,
            _line_shift=config.line_bytes.bit_length() - 1,
            _set_mask=config.n_sets - 1,
        )

    def line_addr(self, addr: int) -> int:
        """The line-aligned address (used as the coherence/LLC key)."""
        return addr >> self._line_shift

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def tag(self, addr: int) -> int:
        return addr >> self._line_shift >> (self.n_sets.bit_length() - 1)

    def set_and_tag(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self.n_sets.bit_length() - 1)


@dataclass(frozen=True)
class DramGeometry:
    """Bank and page decomposition of a physical address.

    Pages are interleaved across banks at page granularity: consecutive
    pages map to consecutive banks, so a page-sized stream stays in one
    bank and page while larger strides spread across banks.
    """

    n_banks: int
    page_bytes: int
    _page_shift: int
    _bank_mask: int

    @classmethod
    def from_config(cls, config: DramConfig) -> "DramGeometry":
        return cls(
            n_banks=config.n_banks,
            page_bytes=config.page_bytes,
            _page_shift=config.page_bytes.bit_length() - 1,
            _bank_mask=config.n_banks - 1,
        )

    def page_id(self, addr: int) -> int:
        """Globally unique page number (row id within its bank)."""
        return addr >> self._page_shift

    def bank_index(self, addr: int) -> int:
        return (addr >> self._page_shift) & self._bank_mask


def word_addr(addr: int, word_bytes: int = 8) -> int:
    """Word-aligned address, the granularity of load-value tracking."""
    return addr & ~(word_bytes - 1)
