"""Multi-core execution engine.

The engine is a conservative discrete-event simulator: every core owns a
local clock, and the engine repeatedly advances the runnable core with
the *smallest* clock by one step (a compute chunk, one memory operation,
one spin-loop iteration, or one scheduling action).  Because shared
state — the memory hierarchy, lock/barrier state, run queues — is only
touched at a step's start time, and steps execute in global start-time
order, the simulation is causally consistent and fully deterministic.

The engine also embodies the OS model: per-core run queues, round-robin
thread placement, timeslice preemption, and futex-style block/wakeup
used by the spin-then-yield synchronization library.  Yield intervals
("the time a thread is scheduled out", Section 4.4) are reported to the
accounting layer from here, exactly as the paper has the operating
system do it.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from repro.accounting.interface import NULL_ACCOUNTANT
from repro.components.registry import resolve
from repro.config import MachineConfig
from repro.errors import (
    CheckpointError,
    DeadlockError,
    LivelockError,
    SimulationError,
)
from repro.observability.events import (
    DeadlockDetected,
    SimEnded,
    SimStarted,
    SpinSegment,
    ThreadDescheduled,
    ThreadDispatched,
    WatchdogFired,
    YieldInterval,
)
from repro.robustness.snapshot import capture_snapshot
from repro.osmodel.thread import (
    BLOCKED,
    BLOCK_PREEMPT,
    BLOCK_SYNC,
    FINISHED,
    READY,
    RUNNING,
    SoftwareThread,
    SpinContext,
)
from repro.sim.cmp import Chip
from repro.sync import primitives as sync_pc
from repro.sync.primitives import BarrierState, LockState, SyncManager
from repro.workloads.program import (
    Program,
    TAG_BARRIER_WAIT,
    TAG_COMPUTE,
    TAG_LOAD,
    TAG_LOCK_ACQUIRE,
    TAG_LOCK_RELEASE,
    TAG_FUTEX_WAIT,
    TAG_FUTEX_WAKE,
    TAG_STORE,
    TAG_YIELD_CPU,
)

_INFINITY = float("inf")

#: sentinel distinguishing "generator exhausted" from a yielded None
#: during checkpoint-restore op replay
_EXHAUSTED = object()

logger = logging.getLogger(__name__)

#: steps between watchdog progress checks (cheap: amortized O(1/step))
_WATCHDOG_STRIDE = 1024


class _CoreRuntime:
    """Per-core scheduling state."""

    __slots__ = ("core_id", "now", "current", "queue", "busy_cycles")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.now = 0
        self.current: SoftwareThread | None = None
        self.queue: deque[SoftwareThread] = deque()
        self.busy_cycles = 0


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    machine: MachineConfig
    threads: list[SoftwareThread]
    chip: Chip
    sync: SyncManager
    #: multi-threaded execution time: cycles until the last thread ends
    total_cycles: int
    #: True when the watchdog cut the run short (max_cycles / livelock);
    #: unfinished threads then have their end_time set to the cut point,
    #: so downstream accounting still works on the partial run
    truncated: bool = False
    #: why the run was truncated: "max_cycles" or "livelock" (or None)
    truncation_reason: str | None = None
    #: True when ``run(pause_at=...)`` returned at a step boundary with
    #: work remaining; unlike truncation, *nothing* was mutated — thread
    #: end times are untouched and the run continues with another
    #: ``run()`` call (see :class:`repro.session.SimulationKernel`)
    paused: bool = False

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def unfinished_tids(self) -> list[int]:
        """Threads that had not finished when the run ended (empty for a
        complete run)."""
        return [t.tid for t in self.threads if t.state != FINISHED]

    @property
    def thread_end_times(self) -> list[int]:
        return [t.end_time for t in self.threads]

    @property
    def imbalance_cycles(self) -> list[int]:
        """Per-thread end-of-program imbalance (Section 4.6): the gap
        between each thread's finish time and the slowest thread's."""
        return [self.total_cycles - t.end_time for t in self.threads]

    @property
    def total_instrs(self) -> int:
        return sum(t.instrs for t in self.threads)

    @property
    def total_spin_instrs(self) -> int:
        return sum(t.spin_instrs for t in self.threads)


class Simulation:
    """Execute a :class:`Program` on a simulated CMP."""

    #: registry name of this engine backend (subclasses override)
    ENGINE_NAME = "reference"

    def __init__(
        self,
        machine: MachineConfig,
        program: Program,
        accountant=NULL_ACCOUNTANT,
        trace=None,
        barrier_observer=None,
        fast_forward: bool = True,
        bus=None,
    ) -> None:
        self.machine = machine
        self.program = program
        self.accountant = accountant
        self.trace = trace
        self.barrier_observer = barrier_observer
        #: optional observability EventBus; every emission is guarded by
        #: ``is not None`` and sits on scheduling-frequency paths only,
        #: so the disabled run pays nothing on the per-op hot loop
        self.bus = bus
        #: instruction-block fast-forward through quiescent regions; off
        #: switches back to the one-op-per-iteration reference loop (the
        #: two must produce identical results — see tests/parallel/)
        self.fast_forward = fast_forward
        self.chip = self._build_chip(machine, accountant, bus)
        self.sync = SyncManager(
            program.n_threads,
            lock_fifo_handoff=getattr(program, "lock_fifo_handoff", False),
        )
        self.threads = [
            SoftwareThread(tid, body)
            for tid, body in enumerate(program.thread_bodies)
        ]
        self.cores = [_CoreRuntime(i) for i in range(machine.n_cores)]
        for thread in self.threads:
            core = self.cores[thread.tid % machine.n_cores]
            thread.core_id = core.core_id
            core.queue.append(thread)
        self._n_finished = 0
        self._ff_limit = _INFINITY
        # Watchdog progress state lives on the instance (not as run()
        # locals) so a checkpoint restored mid-run resumes the stride
        # and livelock bookkeeping byte-identically.
        self._steps = 0
        self._last_progress = (0, 0)
        self._last_progress_time = 0
        self._warmed = False
        #: armed :class:`~repro.checkpoint.policy.CheckpointHook` (or
        #: None); consulted once per scheduling step and on watchdog/
        #: fault exits
        self._checkpoint = None
        # One-shot SimStarted guard: a paused-and-continued run is one
        # logical run, so the event fires once per simulation object.
        # Deliberately not in state_dict(): a checkpoint-restored sim is
        # a new process-level run and re-announces itself, exactly as
        # the pre-pause engine did.
        self._sim_started = False
        self._scheduler = resolve("scheduler", machine.sched.policy)(machine.sched)
        self._dispatch_cost = (
            machine.sched.context_switch_cycles
            + machine.sched.overhead_per_core_cycles * machine.n_cores
        )
        self._width = machine.core.dispatch_width
        override = getattr(program, "spin_threshold_override", None)
        self._spin_threshold = (
            override if override is not None else machine.sync.spin_threshold
        )

    def _build_chip(self, machine, accountant, bus) -> Chip:
        """Engine-backend hook: construct the chip model.  Subclass
        backends (``engine=vectorized``) substitute alternate cache
        stores here; everything else about the chip stays shared."""
        return Chip(machine, accountant, bus=bus)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(
        self,
        max_cycles: int | None = None,
        *,
        livelock_window: int | None = None,
        on_timeout: str = "raise",
        checkpoint=None,
        pause_at: int | None = None,
    ) -> SimResult:
        """Run to completion (or until the watchdog fires).

        ``max_cycles`` bounds the simulated time; ``livelock_window``
        (cycles) arms the no-forward-progress detector: if no thread
        retires a non-spin instruction or finishes for that many cycles,
        the run is livelocked.  ``on_timeout`` selects what happens when
        either watchdog fires: ``"raise"`` (default) raises
        :class:`SimulationError`/:class:`LivelockError` with an engine
        snapshot attached, ``"truncate"`` returns a truncated-but-usable
        :class:`SimResult` flagged ``truncated=True``.  Deadlock always
        raises — there is nothing left to simulate.

        ``checkpoint`` arms an optional
        :class:`~repro.checkpoint.policy.CheckpointHook`: periodic
        every-N-cycles saves from the scheduling loop, plus
        save-before-report on watchdog fires and engine faults (as the
        hook's policy selects).  Saving never mutates simulation state,
        so an interrupted-and-resumed run is byte-identical to an
        uninterrupted one.  On a simulation restored with
        :meth:`load_state_dict`, ``run`` continues from the restored
        point (cache warmup is skipped — the warmed state is part of
        the checkpoint).

        ``pause_at`` suspends the run — without mutating anything — at
        the first scheduling-loop boundary whose earliest runnable core
        clock exceeds it, returning a :class:`SimResult` flagged
        ``paused=True``.  A paused simulation continues with another
        ``run()`` call; because the pause check is side-effect-free and
        every scheduling decision depends only on simulation state (all
        of which persists on the instance), any partition of a run into
        pauses is byte-identical to the uninterrupted run.  Block
        executors (instruction fast-forward, spin-horizon batching) may
        overshoot ``pause_at``: the contract is "pause at the first
        loop-top boundary at or after this cycle", not an exact cut.
        When both fire, the ``max_cycles`` watchdog wins over a pause.
        """
        if on_timeout not in ("raise", "truncate"):
            raise ValueError(f"on_timeout must be raise|truncate: {on_timeout!r}")
        self._checkpoint = checkpoint
        if not self._warmed:
            self._warm_caches()
            self._warmed = True
            self._last_progress = self._progress_metric()
        n_threads = len(self.threads)
        fast_forward = self.fast_forward
        if self.bus is not None and not self._sim_started:
            self.bus.emit(SimStarted(n_threads, self.machine.n_cores))
        self._sim_started = True
        steps = self._steps
        while self._n_finished < n_threads:
            core = self._pick_core()
            if core is None:
                blocked = [t.tid for t in self.threads if t.state == BLOCKED]
                logger.error("deadlock: blocked threads %s", blocked)
                if self.bus is not None:
                    self.bus.emit(DeadlockDetected(
                        max(c.now for c in self.cores), tuple(blocked)
                    ))
                self._steps = steps
                raise self._error(DeadlockError(
                    f"no runnable core; blocked threads: {blocked}"
                ), reason="deadlock")
            if max_cycles is not None and core.now > max_cycles:
                self._steps = steps
                if on_timeout == "truncate":
                    return self._truncate("max_cycles")
                raise self._error(SimulationError(
                    f"exceeded max_cycles={max_cycles} at t={core.now}"
                ), reason="max_cycles")
            if pause_at is not None and core.now > pause_at:
                self._steps = steps
                return self._pause()
            steps += 1
            if livelock_window is not None and steps % _WATCHDOG_STRIDE == 0:
                progress = self._progress_metric()
                if progress != self._last_progress:
                    self._last_progress = progress
                    self._last_progress_time = core.now
                elif core.now - self._last_progress_time > livelock_window:
                    self._steps = steps
                    if on_timeout == "truncate":
                        return self._truncate("livelock")
                    raise self._error(LivelockError(
                        f"no forward progress for {livelock_window} cycles "
                        f"at t={core.now}"
                    ), reason="livelock")
            self._step(core)
            if fast_forward:
                steps = self._fast_forward_block(
                    core, max_cycles, livelock_window, steps
                )
            if checkpoint is not None and checkpoint.due(core.now):
                self._steps = steps
                checkpoint.save(self, "interval")
        self._steps = steps
        total = max(t.end_time for t in self.threads)
        logger.debug(
            "run complete: %d threads, %d cycles", n_threads, total
        )
        if self.bus is not None:
            self.bus.emit(SimEnded(
                total, sum(t.instrs for t in self.threads), False
            ))
        return SimResult(
            machine=self.machine,
            threads=self.threads,
            chip=self.chip,
            sync=self.sync,
            total_cycles=total,
        )

    def _progress_metric(self) -> tuple[int, int]:
        """Forward progress: finishes plus non-spin instructions retired.

        Spin-loop instructions are excluded on purpose — a livelocked
        run retires spin instructions at full speed while doing no real
        work.
        """
        real_instrs = 0
        for t in self.threads:
            real_instrs += t.instrs - t.spin_instrs
        return self._n_finished, real_instrs

    def snapshot(self):
        """Capture an :class:`~repro.robustness.snapshot.EngineSnapshot`
        of the current scheduling and synchronization state.

        .. deprecated::
            Thin alias kept for callers of the pre-checkpoint API; the
            snapshot is now a view over the :meth:`state_dict` tree
            (see :func:`repro.robustness.snapshot.capture_snapshot`).
        """
        return capture_snapshot(self)

    def _save_checkpoint(self, reason: str) -> None:
        """Best-effort checkpoint save on a watchdog/fault exit path;
        a failing save must never mask the underlying condition."""
        hook = self._checkpoint
        if hook is None or not hook.wants(reason):
            return
        try:
            hook.save(self, reason)
        except Exception:
            logger.exception("checkpoint save on %s failed", reason)

    def _error(
        self, exc: SimulationError, reason: str = "fault"
    ) -> SimulationError:
        """Attach a post-mortem snapshot to an engine error (and save a
        checkpoint first, when the armed policy covers ``reason``)."""
        self._save_checkpoint(reason)
        try:
            exc.snapshot = capture_snapshot(self)
        except Exception:  # diagnostics must never mask the real error
            logger.exception("failed to capture engine snapshot")
        return exc

    def _truncate(self, reason: str) -> SimResult:
        """Close out a watchdog-cut run into a usable partial result.

        When a checkpoint hook with ``on_watchdog`` is armed, the full
        state is saved *before* the truncation mutates thread end
        times, so the saved checkpoint stays resumable (e.g. under a
        raised ``max_cycles``) and the post-mortem
        :class:`~repro.robustness.snapshot.EngineSnapshot` is simply a
        view over it.
        """
        self._save_checkpoint(reason)
        now = max(core.now for core in self.cores)
        unfinished = 0
        for thread in self.threads:
            if thread.state != FINISHED:
                thread.end_time = now
                unfinished += 1
        logger.warning(
            "run truncated (%s) at t=%d with %d/%d threads unfinished",
            reason, now, unfinished, len(self.threads),
        )
        if self.bus is not None:
            self.bus.emit(WatchdogFired(reason, now))
            self.bus.emit(SimEnded(
                now, sum(t.instrs for t in self.threads), True, reason
            ))
        return SimResult(
            machine=self.machine,
            threads=self.threads,
            chip=self.chip,
            sync=self.sync,
            total_cycles=now,
            truncated=True,
            truncation_reason=reason,
        )

    def _pause(self) -> SimResult:
        """Close out a ``pause_at`` suspension with zero mutation.

        Unlike :meth:`_truncate`, no thread end time is touched and no
        event is emitted — the run is not over, merely parked between
        scheduling steps.  ``total_cycles`` is the frontier clock (the
        furthest any core has simulated); partial accounting over a
        paused run goes through
        :func:`repro.accounting.report.partial_run_view`, which treats
        unfinished threads as ending at this frontier exactly like
        ``repro inspect`` does for a checkpoint.
        """
        return SimResult(
            machine=self.machine,
            threads=self.threads,
            chip=self.chip,
            sync=self.sync,
            total_cycles=max(core.now for core in self.cores),
            paused=True,
        )

    def _warm_caches(self) -> None:
        """Untimed warmup: interleave the threads' working-set addresses
        round-robin through the cache hierarchy so LLC occupancy starts
        from a fair steady state."""
        warmup = self.program.warmup
        if not warmup:
            return
        n_cores = self.machine.n_cores
        warm_line = self.chip.warm_line
        iters = [iter(addrs) for addrs in warmup]
        live = [(tid, tid % n_cores, iters[tid]) for tid in range(len(iters))]
        while live:
            still_live = []
            for entry in live:
                addr = next(entry[2], None)
                if addr is None:
                    continue
                warm_line(entry[1], addr)
                still_live.append(entry)
            live = still_live

    def _pick_core(self) -> _CoreRuntime | None:
        best, best_time, second_time = self._scheduler.pick(self.cores)
        # The earliest instant any *other* core could act — the horizon
        # the fast-forward block may run to without a global reschedule.
        self._ff_limit = second_time
        if best is not None and best.current is None and best_time > best.now:
            best.now = int(best_time)
        return best

    # ------------------------------------------------------------------
    # one step of one core
    # ------------------------------------------------------------------

    def _step(self, core: _CoreRuntime) -> None:
        thread = core.current
        if thread is None:
            self._dispatch(core)
            return
        before = core.now
        if thread.spin is not None:
            self._spin_iteration(core, thread)
            thread.gt_spin_cycles += core.now - before
        else:
            self._execute_next_op(core, thread)
        core.busy_cycles += core.now - before
        self.chip.stats[core.core_id].busy_cycles += core.now - before
        self._maybe_preempt(core)

    def _dispatch(self, core: _CoreRuntime) -> None:
        thread = self._pop_eligible(core)
        if thread is None:
            raise self._error(SimulationError(
                f"dispatch on core {core.core_id} with no eligible thread"
            ))
        core.now += self._dispatch_cost
        if thread.block_reason == BLOCK_SYNC:
            thread.gt_yield_cycles += core.now - thread.block_start
        if self.accountant.enabled:
            self.accountant.on_context_switch(core.core_id)
            if thread.block_reason == BLOCK_SYNC:
                self.accountant.on_yield_interval(
                    thread.tid, thread.block_start, core.now
                )
        if self.bus is not None:
            if thread.block_reason == BLOCK_SYNC:
                self.bus.emit(YieldInterval(
                    thread.tid, core.core_id, thread.block_start, core.now
                ))
            self.bus.emit(ThreadDispatched(thread.tid, core.core_id, core.now))
        thread.block_reason = ""
        thread.state = RUNNING
        thread.run_start = core.now
        core.current = thread
        if self.trace is not None:
            self.trace.on_run_start(thread.tid, core.core_id, core.now)
        if thread.spin is not None:
            thread.spin.restart(core.now)

    def _pop_eligible(self, core: _CoreRuntime) -> SoftwareThread | None:
        queue = core.queue
        for index, thread in enumerate(queue):
            if thread.ready_time <= core.now:
                del queue[index]
                return thread
        return None

    # ------------------------------------------------------------------
    # quiescent-region fast-forward
    # ------------------------------------------------------------------

    def _fast_forward_block(
        self,
        core: _CoreRuntime,
        max_cycles: int | None,
        livelock_window: int | None,
        steps: int,
    ) -> int:
        """Execute a block of ops on ``core`` without returning to the
        global scheduling loop, and return the updated step count.

        This is purely an optimization: an op is executed here only when
        the serial reference loop would inevitably execute exactly that
        op next.  The preconditions guarantee it:

        * ``core`` is *strictly* the earliest-available core (it stays
          that way while its clock is below ``limit``, since plain
          compute/memory ops never change another core's availability);
        * its thread is running and not spinning, and the local run
          queue is empty — so there is no dispatch, preemption, or spin
          state machine to consult between ops;
        * the block stops *before* a step on which the engine watchdog
          would run, and never executes an op past ``max_cycles`` — so
          watchdog progress checks fire on exactly the same step index
          and engine state as in the reference loop;
        * any synchronization op is executed through the same handler
          the reference loop uses, and then ends the block (sync can
          wake threads, invalidating the cached ``limit``).

        Differential and property tests assert that a run with
        ``fast_forward`` off is identical, component for component.
        """
        limit = self._ff_limit
        thread = core.current
        if (core.now >= limit or thread is None or thread.spin is not None
                or core.queue):
            return steps
        chip = self.chip
        stats = chip.stats[core.core_id]
        cid = core.core_id
        width = self._width
        body = thread.body
        block_start = core.now
        while core.now < limit:
            if max_cycles is not None and core.now > max_cycles:
                break
            if (livelock_window is not None
                    and (steps + 1) % _WATCHDOG_STRIDE == 0):
                break
            op = next(body, None)
            steps += 1
            if op is None:
                self._finish_thread(core, thread)
                break
            thread.ops_taken += 1
            tag = op.TAG
            now = core.now
            if tag == TAG_COMPUTE:
                n = op.n
                thread.instrs += n
                core.now = now + (-(-n // width)) + chip.compute(cid, n, now)
            elif tag == TAG_LOAD:
                thread.instrs += 1
                core.now = now + 1 + chip.load(
                    cid, op.addr, op.pc, now,
                    overlappable=op.overlappable, dependent=op.dependent,
                )
            elif tag == TAG_STORE:
                thread.instrs += 1
                core.now = now + 1 + chip.store(cid, op.addr, op.pc, now)
            else:
                self._execute_sync_op(core, thread, op, tag)
                delta = core.now - block_start
                core.busy_cycles += delta
                stats.busy_cycles += delta
                self._maybe_preempt(core)
                return steps
        delta = core.now - block_start
        core.busy_cycles += delta
        stats.busy_cycles += delta
        return steps

    def _maybe_preempt(self, core: _CoreRuntime) -> None:
        thread = core.current
        if thread is None or not core.queue:
            return
        if core.now - thread.run_start < self.machine.sched.timeslice_cycles:
            return
        if not any(t.ready_time <= core.now for t in core.queue):
            return
        bus = self.bus
        if bus is not None and thread.spin is not None:
            # the preemption drain below happens outside the spin-step
            # extent, so the segment ends before it (gt_spin parity)
            bus.emit(SpinSegment(
                thread.tid, core.core_id,
                thread.spin.segment_start, core.now, "preempted",
            ))
        core.now += self.chip.drain(core.core_id, core.now)
        thread.state = READY
        thread.ready_time = core.now
        thread.block_reason = BLOCK_PREEMPT
        core.queue.append(thread)
        core.current = None
        if self.trace is not None:
            self.trace.on_run_end(thread.tid, core.now, "preempted")
        if bus is not None:
            bus.emit(ThreadDescheduled(
                thread.tid, core.core_id, core.now, "preempted"
            ))

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------

    def _execute_next_op(self, core: _CoreRuntime, thread: SoftwareThread) -> None:
        op = next(thread.body, None)
        if op is None:
            self._finish_thread(core, thread)
            return
        thread.ops_taken += 1
        tag = op.TAG
        cid = core.core_id
        now = core.now
        chip = self.chip
        if tag == TAG_COMPUTE:
            n = op.n
            thread.instrs += n
            core.now = now + (-(-n // self._width)) + chip.compute(cid, n, now)
        elif tag == TAG_LOAD:
            thread.instrs += 1
            stall = chip.load(
                cid, op.addr, op.pc, now,
                overlappable=op.overlappable, dependent=op.dependent,
            )
            core.now = now + 1 + stall
        elif tag == TAG_STORE:
            thread.instrs += 1
            core.now = now + 1 + chip.store(cid, op.addr, op.pc, now)
        else:
            self._execute_sync_op(core, thread, op, tag)

    def _execute_sync_op(self, core: _CoreRuntime, thread: SoftwareThread,
                         op, tag: int) -> None:
        """Execute a synchronization/scheduling op (shared between the
        reference loop and the fast-forward block)."""
        cid = core.core_id
        if tag == TAG_LOCK_ACQUIRE:
            self._lock_acquire(core, thread, self.sync.lock(op.lock_id))
        elif tag == TAG_LOCK_RELEASE:
            self._lock_release(core, thread, self.sync.lock(op.lock_id))
        elif tag == TAG_BARRIER_WAIT:
            self._barrier_wait(core, thread, self.sync.barrier(op.barrier_id))
        elif tag == TAG_YIELD_CPU:
            core.now += self.chip.drain(cid, core.now)
            thread.state = READY
            thread.ready_time = core.now
            thread.block_reason = BLOCK_PREEMPT
            core.queue.append(thread)
            core.current = None
            if self.trace is not None:
                self.trace.on_run_end(thread.tid, core.now, "preempted")
            if self.bus is not None:
                self.bus.emit(ThreadDescheduled(
                    thread.tid, cid, core.now, "preempted"
                ))
        elif tag == TAG_FUTEX_WAIT:
            core.now += self.chip.drain(cid, core.now)
            self.sync.futex_queue(op.addr).append(thread)
            thread.state = BLOCKED
            thread.block_start = core.now
            thread.block_reason = BLOCK_SYNC
            thread.n_yields += 1
            core.current = None
            if self.trace is not None:
                self.trace.on_run_end(thread.tid, core.now, "blocked")
            if self.bus is not None:
                self.bus.emit(ThreadDescheduled(
                    thread.tid, cid, core.now, "blocked"
                ))
        elif tag == TAG_FUTEX_WAKE:
            queue = self.sync.futex_queue(op.addr)
            if op.wake_all:
                while queue:
                    self._wake(queue.popleft(), core.now)
            elif queue:
                self._wake(queue.popleft(), core.now)
        else:  # pragma: no cover - op classes are closed
            raise self._error(SimulationError(f"unknown op {op!r}"))

    def _finish_thread(self, core: _CoreRuntime, thread: SoftwareThread) -> None:
        core.now += self.chip.drain(core.core_id, core.now)
        thread.state = FINISHED
        thread.end_time = core.now
        core.current = None
        self._n_finished += 1
        if self.trace is not None:
            self.trace.on_run_end(thread.tid, core.now, "finished")
        if self.bus is not None:
            self.bus.emit(ThreadDescheduled(
                thread.tid, core.core_id, core.now, "finished"
            ))

    # ------------------------------------------------------------------
    # synchronization state machines
    # ------------------------------------------------------------------

    def _charge_sync_instrs(self, thread: SoftwareThread, n: int) -> None:
        thread.instrs += n
        thread.sync_instrs += n

    def _lock_acquire(
        self, core: _CoreRuntime, thread: SoftwareThread, lock: LockState
    ) -> None:
        cid = core.core_id
        core.now += self.chip.drain(cid, core.now)
        t_start = core.now
        # Test-and-set: load the lock word; if free, claim it with a store.
        self._charge_sync_instrs(thread, 1)
        core.now += 1 + self.chip.load(
            cid, lock.addr, sync_pc.PC_LOCK_TEST, core.now,
            overlappable=False, dependent=True,
        )
        if lock.is_free:
            self._claim_lock(core, thread, lock)
        else:
            lock.n_contended += 1
            thread.spin = SpinContext("lock", lock, core.now)
        thread.gt_sync_cycles += core.now - t_start

    def _claim_lock(
        self, core: _CoreRuntime, thread: SoftwareThread, lock: LockState
    ) -> None:
        self._charge_sync_instrs(thread, 1)
        core.now += 1 + self.chip.store(
            core.core_id, lock.addr, sync_pc.PC_LOCK_TEST + 4, core.now
        )
        if thread.spin is not None:
            lock.total_wait_cycles += core.now - thread.spin.contention_start
            if self.bus is not None:
                self.bus.emit(SpinSegment(
                    thread.tid, core.core_id,
                    thread.spin.segment_start, core.now, "acquired",
                ))
        lock.holder = thread
        lock.hold_start = core.now
        lock.n_acquires += 1
        thread.n_lock_acquires += 1
        thread.spin = None

    def _lock_release(
        self, core: _CoreRuntime, thread: SoftwareThread, lock: LockState
    ) -> None:
        if lock.holder is not thread:
            raise self._error(SimulationError(
                f"thread {thread.tid} releasing lock {lock.lock_id} held by "
                f"{lock.holder.tid if lock.holder else None}"
            ))
        cid = core.core_id
        core.now += self.chip.drain(cid, core.now)
        t_start = core.now
        self._charge_sync_instrs(thread, 1)
        core.now += 1 + self.chip.store(
            cid, lock.addr, sync_pc.PC_LOCK_TEST + 8, core.now
        )
        lock.total_hold_cycles += core.now - lock.hold_start
        lock.holder = None
        if lock.waiters:
            waiter = lock.waiters.popleft()
            if lock.fifo_handoff:
                # Direct handoff: ownership passes to the woken waiter,
                # so barging spinners cannot steal the lock.
                lock.holder = waiter
            self._wake(waiter, core.now)
        thread.gt_sync_cycles += core.now - t_start

    def _barrier_wait(
        self, core: _CoreRuntime, thread: SoftwareThread, barrier: BarrierState
    ) -> None:
        cid = core.core_id
        core.now += self.chip.drain(cid, core.now)
        t_start = core.now
        thread.n_barrier_waits += 1
        if self.barrier_observer is not None:
            self.barrier_observer.on_arrival(
                barrier.barrier_id, thread.tid, core.now
            )
        # Atomic fetch-and-increment of the arrival counter.
        self._charge_sync_instrs(thread, 2)
        core.now += 1 + self.chip.load(
            cid, barrier.count_addr, sync_pc.PC_BARRIER_ARRIVE, core.now,
            overlappable=False, dependent=True,
        )
        core.now += 1 + self.chip.store(
            cid, barrier.count_addr, sync_pc.PC_BARRIER_ARRIVE + 4, core.now
        )
        my_generation = barrier.generation
        if barrier.arrive():
            # Last party: bump the generation word and release everyone.
            self._charge_sync_instrs(thread, 1)
            core.now += 1 + self.chip.store(
                cid, barrier.gen_addr, sync_pc.PC_BARRIER_ARRIVE + 8, core.now
            )
            while barrier.waiters:
                self._wake(barrier.waiters.popleft(), core.now)
            if self.barrier_observer is not None:
                self.barrier_observer.on_release(
                    barrier.barrier_id, core.now
                )
        else:
            thread.spin = SpinContext(
                "barrier", barrier, core.now, my_generation=my_generation
            )
        thread.gt_sync_cycles += core.now - t_start

    def _spin_iteration(self, core: _CoreRuntime, thread: SoftwareThread) -> None:
        ctx = thread.spin
        assert ctx is not None
        cid = core.core_id
        sync_cfg = self.machine.sync
        is_lock = ctx.kind == "lock"
        if is_lock:
            spin_addr = ctx.obj.addr
            pc_load = sync_pc.PC_LOCK_SPIN_LOAD
            pc_branch = sync_pc.PC_LOCK_SPIN_BRANCH
        else:
            spin_addr = ctx.obj.gen_addr
            pc_load = sync_pc.PC_BARRIER_SPIN_LOAD
            pc_branch = sync_pc.PC_BARRIER_SPIN_BRANCH

        n_loop = sync_cfg.spin_iter_instrs
        thread.spin_instrs += n_loop + 1
        thread.instrs += n_loop + 1
        chip = self.chip
        core.now += -(-n_loop // self._width) + chip.compute(cid, n_loop, core.now)
        core.now += 1 + chip.load(
            cid, spin_addr, pc_load, core.now, overlappable=False, dependent=True
        )
        if self.accountant.enabled:
            version, _ = chip.directory.load_value(spin_addr)
            self.accountant.on_backward_branch(cid, pc_branch, version, core.now)
        ctx.iters += 1

        if is_lock:
            if ctx.obj.is_free:
                self._claim_lock(core, thread, ctx.obj)
                return
            if ctx.obj.holder is thread:
                # FIFO direct handoff granted while we were waking up.
                ctx.obj.total_wait_cycles += core.now - ctx.contention_start
                ctx.obj.hold_start = core.now
                ctx.obj.n_acquires += 1
                thread.n_lock_acquires += 1
                if self.bus is not None:
                    self.bus.emit(SpinSegment(
                        thread.tid, cid, ctx.segment_start, core.now,
                        "acquired",
                    ))
                thread.spin = None
                return
        else:
            if ctx.obj.generation != ctx.my_generation:
                if self.bus is not None:
                    self.bus.emit(SpinSegment(
                        thread.tid, cid, ctx.segment_start, core.now,
                        "released",
                    ))
                thread.spin = None
                return
        if ctx.iters >= self._spin_threshold:
            self._yield_thread(core, thread)

    def _yield_thread(self, core: _CoreRuntime, thread: SoftwareThread) -> None:
        ctx = thread.spin
        assert ctx is not None
        if self.accountant.enabled:
            self.accountant.on_spin_truncated(
                core.core_id, core.now - ctx.episode_start
            )
        core.now += self.chip.drain(core.core_id, core.now)
        if self.bus is not None:
            # this drain runs inside the spin step's extent, so it is
            # part of gt_spin_cycles — the segment ends after it
            self.bus.emit(SpinSegment(
                thread.tid, core.core_id,
                ctx.segment_start, core.now, "yielded",
            ))
        waiters = ctx.obj.waiters
        waiters.append(thread)
        thread.state = BLOCKED
        thread.block_start = core.now
        thread.block_reason = BLOCK_SYNC
        thread.n_yields += 1
        core.current = None
        if self.trace is not None:
            self.trace.on_run_end(thread.tid, core.now, "blocked")
        if self.bus is not None:
            self.bus.emit(ThreadDescheduled(
                thread.tid, core.core_id, core.now, "blocked"
            ))

    def _wake(self, thread: SoftwareThread, now: int) -> None:
        thread.state = READY
        thread.ready_time = now + self.machine.sched.wakeup_latency_cycles
        self.cores[thread.core_id].queue.append(thread)

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The full SimState tree: engine loop state, per-core runtime
        state, thread cursors/counters, sync primitives, the whole
        memory hierarchy, and (when accounting) the accountant.

        Thread op streams (Python generators) are represented by each
        thread's ``ops_taken`` cursor; :meth:`load_state_dict` replays
        the cursor against a deterministically rebuilt program.  Never
        mutates the simulation, so it is safe to call mid-run.
        """
        state = {
            "n_finished": self._n_finished,
            "steps": self._steps,
            "last_progress": list(self._last_progress),
            "last_progress_time": self._last_progress_time,
            "warmed": self._warmed,
            "threads": [thread.state_dict() for thread in self.threads],
            "cores": [
                {
                    "now": core.now,
                    "busy_cycles": core.busy_cycles,
                    "current": (
                        None if core.current is None else core.current.tid
                    ),
                    "queue": [thread.tid for thread in core.queue],
                }
                for core in self.cores
            ],
            "sync": self.sync.state_dict(),
            "chip": self.chip.state_dict(),
        }
        if self.accountant.enabled:
            state["accountant"] = self.accountant.state_dict()
        scheduler_state = getattr(self._scheduler, "state_dict", None)
        if scheduler_state is not None:
            state["scheduler"] = scheduler_state()
        return state

    def _resolve_sync(self, kind: str, obj_id: int):
        if kind == "lock":
            return self.sync.lock(obj_id)
        return self.sync.barrier(obj_id)

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` tree onto a *fresh* simulation.

        The simulation must have been built from the same machine
        config and a freshly constructed, identical program (generators
        are stateful: a program whose bodies were already consumed
        cannot be reused).  Each thread's op stream is replayed to its
        recorded ``ops_taken`` cursor; a stream that exhausts early
        means the program does not match the checkpoint.
        """
        threads = self.threads
        if len(state["threads"]) != len(threads):
            raise CheckpointError(
                f"checkpoint has {len(state['threads'])} threads, "
                f"program has {len(threads)}"
            )
        for thread, thread_state in zip(threads, state["threads"]):
            target = thread_state["ops_taken"]
            if thread_state["state"] != FINISHED:
                body = thread.body
                for _ in range(target):
                    if next(body, _EXHAUSTED) is _EXHAUSTED:
                        raise CheckpointError(
                            f"thread {thread.tid} op stream exhausted before "
                            f"replaying {target} ops — the rebuilt program "
                            "does not match the checkpoint"
                        )
        self.sync.load_state_dict(state["sync"], threads)
        for thread, thread_state in zip(threads, state["threads"]):
            thread.load_state_dict(thread_state, self._resolve_sync)
        for core, core_state in zip(self.cores, state["cores"]):
            core.now = core_state["now"]
            core.busy_cycles = core_state["busy_cycles"]
            current = core_state["current"]
            core.current = None if current is None else threads[current]
            core.queue.clear()
            core.queue.extend(threads[tid] for tid in core_state["queue"])
        self.chip.load_state_dict(state["chip"])
        if "accountant" in state:
            if not self.accountant.enabled:
                raise CheckpointError(
                    "checkpoint carries accounting state but this "
                    "simulation has no accountant"
                )
            self.accountant.load_state_dict(state["accountant"])
        elif self.accountant.enabled:
            raise CheckpointError(
                "checkpoint lacks accounting state required by this "
                "simulation's accountant"
            )
        scheduler_load = getattr(self._scheduler, "load_state_dict", None)
        if scheduler_load is not None and "scheduler" in state:
            scheduler_load(state["scheduler"])
        self._n_finished = state["n_finished"]
        self._steps = state["steps"]
        self._last_progress = tuple(state["last_progress"])
        self._last_progress_time = state["last_progress_time"]
        self._warmed = state["warmed"]
        self._ff_limit = _INFINITY


def simulate(
    machine: MachineConfig,
    program: Program,
    accountant=NULL_ACCOUNTANT,
    max_cycles: int | None = None,
    livelock_window: int | None = None,
    on_timeout: str = "raise",
    fast_forward: bool = True,
    bus=None,
    checkpoint=None,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(machine, program, accountant,
                      fast_forward=fast_forward, bus=bus).run(
        max_cycles=max_cycles,
        livelock_window=livelock_window,
        on_timeout=on_timeout,
        checkpoint=checkpoint,
    )
