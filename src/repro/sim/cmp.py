"""The simulated chip-multiprocessor memory system.

One :class:`Chip` owns the private L1 data caches, the shared
(non-inclusive) LLC, the coherence directory, main memory, and per-core
miss-overlap state.  The LLC is non-inclusive: evicting an LLC line
leaves L1 copies intact (the directory tracks them independently), and
an LLC miss that hits in a peer L1 is served by a cache-to-cache
transfer instead of DRAM — this avoids the inclusion-victim feedback
where streaming threads would wipe every core's hot L1 data through the
shared cache.  The execution engine calls :meth:`Chip.load`, :meth:`Chip.store`
and :meth:`Chip.compute` as the running thread's ops demand; each call
returns the number of cycles the core should advance (stall cycles; the
dispatch cost of instructions is charged by the engine itself).

Out-of-order behaviour is captured with an interval model:

* cache hits whose latency fits the core's hiding capability cost no
  stall (the paper assumes "a balanced out-of-order processor core can
  hide (most) L1 data cache misses very well", Section 4.5);
* ``overlappable`` LLC misses do not stall immediately — they stay
  outstanding while the core keeps dispatching up to a ROB's worth of
  younger instructions (memory-level parallelism), and the pipeline
  drains when the ROB fills, a dependent operation arrives, or a
  synchronization boundary is reached;
* on a drain, each outstanding miss is charged the interval during
  which it blocked the ROB head (in-order retirement), which is the
  paper's accounting gate: "we only account interference cycles in case
  a miss blocks the ROB head and causes the ROB to fill up".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.accounting.interface import NULL_ACCOUNTANT
from repro.config import MachineConfig
from repro.observability.events import MissBlocked
from repro.sim.cache import SetAssocCache
from repro.sim.coherence import CoherenceDirectory
from repro.sim.partition import WayPartitionedCache
from repro.sim.memory import DramAccessResult, MainMemory

#: Maximum outstanding misses per core (MSHR count).
MSHR_LIMIT = 8

#: Extra latency of a cache-to-cache transfer over an LLC hit.
C2C_EXTRA_LATENCY = 12


@dataclass
class CoreStats:
    """Raw per-core event counters."""

    instrs: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    llc_load_misses: int = 0
    c2c_transfers: int = 0
    dram_accesses: int = 0
    stall_cycles: int = 0
    llc_load_miss_stall: int = 0
    coherency_misses: int = 0
    busy_cycles: int = 0


class _OutstandingMiss:
    __slots__ = ("end_time", "classification", "dram_result", "is_load",
                 "ora_conflict")

    def __init__(
        self,
        end_time: int,
        classification: str | None,
        dram_result: DramAccessResult,
        is_load: bool,
        ora_conflict: bool,
    ) -> None:
        self.end_time = end_time
        self.classification = classification
        self.dram_result = dram_result
        self.is_load = is_load
        self.ora_conflict = ora_conflict


class _CoreMemState:
    """Per-core in-flight miss window (interval-model MLP)."""

    __slots__ = ("outstanding", "insts_since_first")

    def __init__(self) -> None:
        self.outstanding: list[_OutstandingMiss] = []
        self.insts_since_first = 0


class Chip:
    """Memory hierarchy shared by ``n_cores`` cores."""

    def __init__(
        self,
        machine: MachineConfig,
        accountant=NULL_ACCOUNTANT,
        bus=None,
        cache_factory=None,
    ) -> None:
        self.machine = machine
        self.accountant = accountant
        #: optional observability EventBus; consulted only on the
        #: blocked-miss path (never per access), and only constructs an
        #: event when a MissBlocked handler is actually subscribed
        self.bus = bus
        self.n_cores = machine.n_cores
        #: ``cache_factory(config) -> cache`` builds the L1/LLC tag
        #: stores; engine backends substitute interface-compatible
        #: stores here (the vectorized engine passes its flat-array
        #: store).  Way-partitioned LLCs keep their dedicated class.
        factory = SetAssocCache if cache_factory is None else cache_factory
        self.l1d = [factory(machine.l1d) for _ in range(self.n_cores)]
        if machine.llc_quotas is not None:
            self.llc = WayPartitionedCache(machine.llc, machine.llc_quotas)
        else:
            self.llc = factory(machine.llc)
        self.directory = CoherenceDirectory(self.n_cores)
        self.memory = MainMemory(machine.dram)
        self.stats = [CoreStats() for _ in range(self.n_cores)]
        self._mem_state = [_CoreMemState() for _ in range(self.n_cores)]
        self._l1_geometry = self.l1d[0].geometry
        self._llc_geometry = self.llc.geometry
        self._l1_line_shift = self._l1_geometry._line_shift
        self._llc_line_shift = self._llc_geometry._line_shift
        self._llc_set_mask = self._llc_geometry._set_mask
        self._l1_stall = max(0, machine.l1d.hit_latency - machine.l1d.hidden_latency)
        self._llc_stall = max(0, machine.llc.hit_latency - machine.llc.hidden_latency)

    # ------------------------------------------------------------------
    # public per-op entry points (called by the engine)
    # ------------------------------------------------------------------

    def compute(self, core_id: int, n_instrs: int, now: int) -> int:
        """Advance a compute chunk; may drain the miss window (ROB full)."""
        stats = self.stats[core_id]
        stats.instrs += n_instrs
        state = self._mem_state[core_id]
        stall = 0
        if state.outstanding:
            state.insts_since_first += n_instrs
            if state.insts_since_first >= self.machine.core.rob_size:
                stall = self._drain(core_id, now)
        return stall

    def load(
        self,
        core_id: int,
        addr: int,
        pc: int,
        now: int,
        *,
        overlappable: bool = True,
        dependent: bool = False,
    ) -> int:
        """Execute one load; returns stall cycles charged to the core."""
        stats = self.stats[core_id]
        stats.instrs += 1
        stats.loads += 1

        accountant = self.accountant
        if accountant.enabled:
            version, writer = self.directory.load_value(addr)
            accountant.on_retired_load(core_id, pc, addr, version, writer, now)

        line = addr >> self._l1_line_shift
        if self.l1d[core_id].lookup(line):
            stats.l1_hits += 1
            stall = self._track_inflight(core_id, 1, now)
            if dependent:
                stall += self.machine.l1d.hit_latency
            else:
                stall += self._l1_stall
            stats.stall_cycles += stall
            return stall
        stats.l1_misses += 1
        return self._miss(
            core_id, addr, line, now, is_load=True,
            overlappable=overlappable, dependent=dependent,
        )

    def store(self, core_id: int, addr: int, pc: int, now: int) -> int:
        """Execute one store; stores retire via the store buffer, so a
        store miss never stalls the core directly, but it occupies the
        miss window (it still holds a ROB slot) and memory resources."""
        stats = self.stats[core_id]
        stats.instrs += 1
        stats.stores += 1

        self.directory.record_store(addr, core_id)
        line = addr >> self._l1_line_shift
        victims = self.directory.write_invalidate(line, core_id)
        if victims:
            for victim_core in victims:
                self.l1d[victim_core].invalidate(line)

        if self.l1d[core_id].lookup(line):
            stats.l1_hits += 1
            self.l1d[core_id].mark_dirty(line)
            stall = self._track_inflight(core_id, 1, now)
            stats.stall_cycles += stall
            return stall
        stats.l1_misses += 1
        return self._miss(
            core_id, addr, line, now, is_load=False,
            overlappable=True, dependent=False,
        )

    def warm_line(self, core_id: int, addr: int) -> None:
        """Untimed warmup access: pre-fill the LLC, the core's L1 and the
        accounting ATD state without advancing time or counting events.

        Used to start measurement from a steady cache state, mirroring
        the paper's methodology of measuring only the parallel fraction
        (after the sequential initialization has populated the caches).
        """
        line = addr >> self._l1_line_shift
        directory = self.directory
        victim = self.llc.warm_fill(line, owner=core_id)
        if victim is not None:
            victim_line = victim[0]
            for victim_core in directory.drop_line(victim_line):
                self.l1d[victim_core].invalidate(victim_line)
        accountant = self.accountant
        if accountant.enabled:
            accountant.warm_llc_access(
                core_id, line,
                (addr >> self._llc_line_shift) & self._llc_set_mask,
            )
        l1_victim = self.l1d[core_id].fill(line)
        if l1_victim is not None:
            directory.remove_sharer(l1_victim[0], core_id)
        directory.add_sharer(line, core_id)

    def drain(self, core_id: int, now: int) -> int:
        """Force completion of all outstanding misses (sync boundary,
        context switch, or end of thread)."""
        return self._drain(core_id, now)

    def has_outstanding(self, core_id: int) -> bool:
        return bool(self._mem_state[core_id].outstanding)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _track_inflight(self, core_id: int, n_instrs: int, now: int) -> int:
        """Charge ROB occupancy for an instruction executed while misses
        are outstanding; drains if the ROB fills."""
        state = self._mem_state[core_id]
        if not state.outstanding:
            return 0
        state.insts_since_first += n_instrs
        if state.insts_since_first >= self.machine.core.rob_size:
            return self._drain(core_id, now)
        return 0

    def _miss(
        self,
        core_id: int,
        addr: int,
        line: int,
        now: int,
        *,
        is_load: bool,
        overlappable: bool,
        dependent: bool,
    ) -> int:
        stats = self.stats[core_id]
        coherency_miss = self.directory.consume_coherency_miss(line, core_id)
        if coherency_miss:
            stats.coherency_misses += 1

        set_index = (addr >> self._llc_line_shift) & self._llc_set_mask
        shared_hit = self.llc.lookup(line)
        classification = self.accountant.classify_llc_access(
            core_id, line, set_index, shared_hit, is_load
        )

        l1_latency = self.machine.l1d.hit_latency
        llc_latency = self.machine.llc.hit_latency

        if shared_hit:
            stats.llc_hits += 1
            self._fill_l1(core_id, line, dirty=not is_load)
            stall = self._track_inflight(core_id, 1, now)
            if dependent:
                stall += l1_latency + llc_latency
            elif is_load:
                stall += self._llc_stall
            if coherency_miss and self.accountant.enabled:
                self.accountant.on_coherency_miss(core_id, stall)
            stats.stall_cycles += stall
            return stall

        # LLC miss.  Non-inclusive hierarchy: a peer L1 may still hold
        # the line; if so it is served by a cache-to-cache transfer at
        # LLC-like latency instead of going to memory.
        peers = self.directory.sharers_of(line)
        if peers and any(peer != core_id for peer in peers):
            stats.llc_hits += 1
            stats.c2c_transfers += 1
            self.llc.fill(line, owner=core_id)
            self._fill_l1(core_id, line, dirty=not is_load)
            stall = self._track_inflight(core_id, 1, now)
            if dependent:
                stall += l1_latency + llc_latency + C2C_EXTRA_LATENCY
            elif is_load:
                stall += self._llc_stall
            if coherency_miss and self.accountant.enabled:
                self.accountant.on_coherency_miss(core_id, stall)
            stats.stall_cycles += stall
            return stall

        stats.llc_misses += 1
        if is_load:
            stats.llc_load_misses += 1
        stats.dram_accesses += 1

        stall_before = 0
        if not overlappable or dependent:
            # In-order consumer: older misses must retire first.
            stall_before = self._drain(core_id, now)
            now += stall_before

        dram = self.memory.access(addr, core_id, now + l1_latency + llc_latency)
        ora_conflict = self.accountant.note_dram_access(core_id, dram)
        latency = l1_latency + llc_latency + dram.latency
        self._fill_llc(core_id, line, now)
        self._fill_l1(core_id, line, dirty=not is_load)

        state = self._mem_state[core_id]
        if overlappable and not dependent:
            if len(state.outstanding) >= MSHR_LIMIT:
                stall_before = self._drain(core_id, now)
                now += stall_before
                dram_end = now + latency
            else:
                dram_end = now + latency
            if not state.outstanding:
                state.insts_since_first = 0
            state.outstanding.append(
                _OutstandingMiss(dram_end, classification, dram, is_load,
                                 ora_conflict)
            )
            state.insts_since_first += 1
            stats.stall_cycles += stall_before
            return stall_before

        # Blocking miss: full latency stalls the core.
        blocked = latency
        self._account_blocked(
            core_id, blocked, classification, dram, is_load, ora_conflict,
            start=now,
        )
        total = stall_before + blocked
        stats.stall_cycles += total
        return total

    def _drain(self, core_id: int, now: int) -> int:
        state = self._mem_state[core_id]
        if not state.outstanding:
            return 0
        t = now
        for miss in state.outstanding:
            blocked = miss.end_time - t
            if blocked > 0:
                self._account_blocked(
                    core_id, blocked, miss.classification, miss.dram_result,
                    miss.is_load, miss.ora_conflict, start=t,
                )
                t = miss.end_time
        state.outstanding.clear()
        state.insts_since_first = 0
        stall = t - now
        self.stats[core_id].stall_cycles += stall
        return stall

    def _account_blocked(
        self,
        core_id: int,
        blocked: int,
        classification: str | None,
        dram: DramAccessResult,
        is_load: bool,
        ora_conflict: bool,
        start: int = 0,
    ) -> None:
        stats = self.stats[core_id]
        if is_load:
            stats.llc_load_miss_stall += blocked
        if self.accountant.enabled:
            self.accountant.on_miss_blocked(
                core_id, blocked, classification, dram, is_load, ora_conflict
            )
        bus = self.bus
        if bus is not None and MissBlocked in bus:
            # same attribution as the accountant's on_miss_blocked, so
            # trace-track sums reconcile with the negative-memory stall
            interference = dram.bus_wait_other + dram.bank_wait_other
            if ora_conflict:
                interference += dram.page_extra_cycles
            if interference > blocked:
                interference = blocked
            bus.emit(MissBlocked(
                core_id, start, start + blocked, interference, is_load
            ))

    def _fill_l1(self, core_id: int, line: int, *, dirty: bool) -> None:
        victim = self.l1d[core_id].fill(line, dirty=dirty)
        self.directory.add_sharer(line, core_id)
        if victim is not None:
            victim_line, victim_dirty = victim
            self.directory.remove_sharer(victim_line, core_id)
            if victim_dirty:
                # Dirty L1 victims write back into the LLC (allocating
                # there if the non-inclusive LLC no longer has the line).
                if self.llc.contains(victim_line):
                    self.llc.mark_dirty(victim_line)
                else:
                    self.llc.fill(victim_line, dirty=True, owner=core_id)

    def _fill_llc(self, core_id: int, line: int, now: int) -> None:
        victim = self.llc.fill(line, owner=core_id)
        if victim is None:
            return
        victim_line, victim_dirty = victim
        # Non-inclusive LLC: L1 copies survive the eviction (the
        # directory keeps tracking them for coherence and C2C serving).
        # Dirty victims write back to memory (fire-and-forget traffic).
        if victim_dirty:
            self.memory.writeback(
                victim_line * self.machine.llc.line_bytes, core_id, now
            )

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The whole memory hierarchy: caches, directory, DRAM, per-core
        stats, and the in-flight miss windows (MLP state)."""
        return {
            "l1d": [cache.state_dict() for cache in self.l1d],
            "llc": self.llc.state_dict(),
            "directory": self.directory.state_dict(),
            "memory": self.memory.state_dict(),
            "stats": [asdict(stats) for stats in self.stats],
            "mem_state": [
                {
                    "insts_since_first": state.insts_since_first,
                    "outstanding": [
                        {
                            "end_time": miss.end_time,
                            "classification": miss.classification,
                            "is_load": miss.is_load,
                            "ora_conflict": miss.ora_conflict,
                            "dram": asdict(miss.dram_result),
                        }
                        for miss in state.outstanding
                    ],
                }
                for state in self._mem_state
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        for cache, cache_state in zip(self.l1d, state["l1d"]):
            cache.load_state_dict(cache_state)
        self.llc.load_state_dict(state["llc"])
        self.directory.load_state_dict(state["directory"])
        self.memory.load_state_dict(state["memory"])
        for index, stats_state in enumerate(state["stats"]):
            self.stats[index] = CoreStats(**stats_state)
        for mem_state, saved in zip(self._mem_state, state["mem_state"]):
            mem_state.insts_since_first = saved["insts_since_first"]
            mem_state.outstanding = [
                _OutstandingMiss(
                    end_time=miss["end_time"],
                    classification=miss["classification"],
                    dram_result=DramAccessResult(**miss["dram"]),
                    is_load=miss["is_load"],
                    ora_conflict=miss["ora_conflict"],
                )
                for miss in saved["outstanding"]
            ]
