"""Flat-array set-associative tag store (vectorized-engine runtime).

PR 5 flattened cache *serialization* into per-set parallel arrays
(``[set_index, [lines...], [dirty...]]`` triples).  This module finishes
the job for the runtime side: :class:`FlatSetAssocCache` keeps each set
as two parallel position-indexed arrays — a tag array and a dirty-bit
array — whose position order *is* the replacement order (eviction
candidate at index 0, most recently inserted/used at the end).  That is
exactly the on-disk layout, so ``state_dict()`` serializes by slicing
instead of walking ``OrderedDict`` items, and checkpoints round-trip
losslessly between this store and the reference
:class:`~repro.sim.cache.SetAssocCache` in either direction.

The flat layout hard-codes the front-eviction rule shared by the
``lru`` and ``fifo`` policies (they differ only in promote-on-hit).
Policies that need more than a position order — seeded ``random`` draws
an RNG per eviction over the mapping view — are not representable as a
plain position array, so :meth:`FlatSetAssocCache.supports` reports
which configs the flat store can stand in for; the vectorized engine
falls back to the reference store otherwise.

Why arrays and not numpy: per-op numpy indexing on 4–16-element sets is
~18x slower than C-level list scans (measured in the PR that added this
file); numpy earns its keep in the engine's *bulk* kernels (warm-stream
materialization), not in single-line probes.
"""

from __future__ import annotations

from repro.components.registry import resolve
from repro.config import CacheConfig
from repro.sim.address import CacheGeometry

#: replacement policies whose victim is always the front of the
#: position order (what a flat array can encode)
FLAT_POLICIES = ("lru", "fifo")


class FlatSetAssocCache:
    """Tag-only set-associative cache over flat per-set arrays.

    Drop-in interface-compatible with
    :class:`~repro.sim.cache.SetAssocCache` (same methods, counters and
    ``state_dict`` format) for ``lru``/``fifo`` replacement.  Each set
    is a pair of parallel lists: ``tags[i]`` is the line address at
    replacement position ``i`` (0 = eviction candidate), ``dirty[i]``
    its dirty bit.
    """

    __slots__ = ("geometry", "assoc", "generation", "n_hits", "n_misses",
                 "n_evictions", "_tags", "_dirty", "_set_mask", "_sparse",
                 "_promote_on_hit")

    def __init__(self, config: CacheConfig, *, sparse: bool = False) -> None:
        if config.replacement not in FLAT_POLICIES:
            raise ValueError(
                f"FlatSetAssocCache encodes front-eviction policies "
                f"{FLAT_POLICIES}, not {config.replacement!r}; use "
                f"SetAssocCache (see FlatSetAssocCache.supports)"
            )
        self.geometry = CacheGeometry.from_config(config)
        self.assoc = config.assoc
        self._set_mask = config.n_sets - 1
        self._sparse = sparse
        if sparse:
            # sparse users (ATDs) touch 1-in-sample_period sets; sets
            # materialize on first touch, in touch order (the order the
            # state_dict triples serialize in — same as the reference
            # sparse store's defaultdict insertion order)
            self._tags: dict[int, list[int]] = {}
            self._dirty: dict[int, list[bool]] = {}
        else:
            self._tags = [[] for _ in range(config.n_sets)]
            self._dirty = [[] for _ in range(config.n_sets)]
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.generation = 0
        policy = resolve("replacement", config.replacement)(config)
        self._promote_on_hit = policy.promote_on_hit

    @staticmethod
    def supports(config: CacheConfig) -> bool:
        """Whether the flat layout reproduces this config exactly."""
        return config.replacement in FLAT_POLICIES

    # ------------------------------------------------------------------
    # set access helpers
    # ------------------------------------------------------------------

    def _set(self, index: int) -> tuple[list[int], list[bool]]:
        if self._sparse:
            tags = self._tags.get(index)
            if tags is None:
                tags = self._tags[index] = []
                self._dirty[index] = []
            return tags, self._dirty[index]
        return self._tags[index], self._dirty[index]

    def set_index_of(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # ------------------------------------------------------------------
    # probes and fills (reference-identical semantics)
    # ------------------------------------------------------------------

    def lookup(self, line_addr: int, *, update_lru: bool = True) -> bool:
        tags, dirty = self._set(line_addr & self._set_mask)
        # MRU fast path: repeated touches of the hottest line (spin
        # loads, streaming reuse) skip the position scan entirely
        if tags and tags[-1] == line_addr:
            self.n_hits += 1
            return True
        if line_addr in tags:
            if update_lru and self._promote_on_hit:
                pos = tags.index(line_addr)
                tags.append(tags.pop(pos))
                dirty.append(dirty.pop(pos))
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        if self._sparse:
            tags = self._tags.get(line_addr & self._set_mask)
            return tags is not None and line_addr in tags
        return line_addr in self._tags[line_addr & self._set_mask]

    def fill(
        self, line_addr: int, *, dirty: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        tags, bits = self._set(line_addr & self._set_mask)
        if tags and tags[-1] == line_addr:
            if dirty:
                bits[-1] = True
            return None
        if line_addr in tags:
            # re-fill: promote to MRU position, sticky dirty bit
            pos = tags.index(line_addr)
            was_dirty = bits.pop(pos)
            tags.append(tags.pop(pos))
            bits.append(was_dirty or dirty)
            return None
        victim = None
        if len(tags) >= self.assoc:
            victim = (tags.pop(0), bits.pop(0))
            self.n_evictions += 1
        tags.append(line_addr)
        bits.append(dirty)
        return victim

    def warm_fill(
        self, line_addr: int, *, promote: bool = False, owner: int = 0
    ) -> tuple[int, bool] | None:
        tags, bits = self._set(line_addr & self._set_mask)
        if line_addr in tags:
            if promote and self._promote_on_hit:
                pos = tags.index(line_addr)
                if pos != len(tags) - 1:
                    tags.append(tags.pop(pos))
                    bits.append(bits.pop(pos))
            return None
        victim = None
        if len(tags) >= self.assoc:
            victim = (tags.pop(0), bits.pop(0))
            self.n_evictions += 1
        tags.append(line_addr)
        bits.append(False)
        return victim

    def mark_dirty(self, line_addr: int) -> None:
        tags, bits = self._set(line_addr & self._set_mask)
        if line_addr in tags:
            bits[tags.index(line_addr)] = True

    def invalidate(self, line_addr: int) -> bool:
        tags, bits = self._set(line_addr & self._set_mask)
        if line_addr in tags:
            pos = tags.index(line_addr)
            del tags[pos]
            del bits[pos]
            return True
        return False

    def reset(self) -> None:
        if self._sparse:
            self._tags.clear()
            self._dirty.clear()
        else:
            for tags in self._tags:
                if tags:
                    tags.clear()
            for bits in self._dirty:
                if bits:
                    bits.clear()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.generation += 1

    def occupancy(self) -> int:
        if self._sparse:
            return sum(len(tags) for tags in self._tags.values())
        return sum(len(tags) for tags in self._tags)

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.n_hits,
            "misses": self.n_misses,
            "evictions": self.n_evictions,
            "occupancy": self.occupancy(),
        }

    def lines_in_set(self, set_index: int) -> list[int]:
        if self._sparse:
            return list(self._tags.get(set_index, ()))
        return list(self._tags[set_index])

    # ------------------------------------------------------------------
    # checkpointing (Snapshotable) — byte-identical to SetAssocCache
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        if self._sparse:
            sets = [
                [index, list(tags), list(self._dirty[index])]
                for index, tags in self._tags.items()
                if tags
            ]
        else:
            sets = [
                [index, list(tags), list(self._dirty[index])]
                for index, tags in enumerate(self._tags)
                if tags
            ]
        return {
            "sets": sets,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_evictions": self.n_evictions,
            "generation": self.generation,
        }

    def load_state_dict(self, state: dict) -> None:
        if self._sparse:
            self._tags.clear()
            self._dirty.clear()
        else:
            for tags in self._tags:
                if tags:
                    tags.clear()
            for bits in self._dirty:
                if bits:
                    bits.clear()
        for index, lines, dirty_bits in state["sets"]:
            tags, bits = self._set(index)
            tags.extend(lines)
            bits.extend(dirty_bits)
        self.n_hits = state["n_hits"]
        self.n_misses = state["n_misses"]
        self.n_evictions = state["n_evictions"]
        self.generation = state["generation"]
