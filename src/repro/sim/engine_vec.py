"""Vectorized engine backend: flat runtime state + event-horizon jumps.

:class:`VectorizedSimulation` is the ``engine="vectorized"`` component —
a drop-in :class:`~repro.sim.engine.Simulation` subclass whose results
(harvested ``sim.*`` metrics, speedup stacks, journals, checkpoints)
are *exactly* equal to the reference engine's, but which gets there
faster on three fronts:

1. **Flat runtime state.**  The L1s, the LLC and the accounting ATD tag
   stores run on :class:`~repro.sim.cache_flat.FlatSetAssocCache` —
   per-set parallel position arrays whose layout is the PR-5 checkpoint
   format itself — whenever the configured replacement policy is
   front-evicting (``lru``/``fifo``).  ``state_dict()`` output is
   byte-identical to the reference stores, so checkpoints cross
   backends freely.

2. **Fused warmup kernel.**  Cache warmup is the dominant phase of a
   single cell (55–75% of wall on the dev container).  The per-thread
   warm address lists are materialized and round-robin-interleaved with
   numpy, line/set indices are computed as bulk array ops, and the
   per-line ``warm_line`` chain (LLC warm-fill -> inclusive drop ->
   ATD warm -> L1 fill -> directory bookkeeping) is inlined into one
   loop over the flat arrays.  Warmup invariants make the inlining
   exact: no stores happen during warmup, so every L1 line is clean and
   the coherence invalid-tag sets stay empty.

3. **Spin event-horizon batching.**  A spinning thread re-executes an
   identical (compute, load) iteration whose cost is a constant
   ``c = ceil(spin_iter_instrs/width) + 1 + l1_hit_latency`` cycles, and
   nothing another core does can be observed before the scheduling
   horizon (the second-earliest core's clock).  The engine therefore
   computes the number of iterations to the core's *next interesting
   event* — the horizon, the spin-exit/yield threshold, the watchdog
   stride boundary, or ``max_cycles`` — and jumps there in one closed
   -form step, applying the per-iteration counter and spin-detector
   effects k-fold.  Contention windows (lock handoff, barrier release,
   outstanding misses, a non-empty run queue) fall back to the
   reference per-iteration path, as does any non-spin work (which the
   reference block-fast-forward already handles).

``run(pause_at=...)`` (the :class:`~repro.session.SimulationKernel`
step boundary) is inherited unchanged from the reference engine: the
pause check sits at the top of the scheduling loop, *outside* every
batched jump, so a spin-horizon jump may overshoot the pause target —
exactly like the reference block fast-forward — without ever changing
the state trajectory.  Stepped runs therefore stay byte-identical
across backends, and a session may hop backends mid-run through
snapshot/restore.

numpy is required (import-guarded: ``engine="reference"`` works without
it; requesting this engine raises :class:`~repro.errors.ConfigError`
naming the missing extra).  Note where numpy is and is not used: bulk
stream materialization vectorizes well, but per-op probes of 4–16-entry
sets are faster as C-level list scans than as numpy indexing — so the
flat stores are position-ordered Python lists, and numpy does the bulk
math around them.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _require_numpy
    _np = None

from repro.accounting.accountant import CycleAccountant
from repro.errors import ConfigError
from repro.sim.cache_flat import FlatSetAssocCache
from repro.sim.cmp import Chip
from repro.sim.coherence import CoherenceDirectory
from repro.sim.engine import _INFINITY, _WATCHDOG_STRIDE, Simulation
from repro.sync import primitives as sync_pc

#: what to ``pip install`` to get this backend
NUMPY_EXTRA = "vectorized"


def _require_numpy() -> None:
    if _np is None:
        raise ConfigError(
            "engine 'vectorized' requires numpy, which is not installed; "
            f"install the '{NUMPY_EXTRA}' extra "
            f"(pip install 'repro[{NUMPY_EXTRA}]') or pick "
            "engine='reference'",
            field="engine",
        )


def _flat_or_reference(config):
    """Cache factory: flat arrays when the policy allows, else reference."""
    if FlatSetAssocCache.supports(config):
        return FlatSetAssocCache(config)
    from repro.sim.cache import SetAssocCache

    return SetAssocCache(config)


class VectorizedSimulation(Simulation):
    """Reference-identical engine on flat arrays with horizon batching."""

    ENGINE_NAME = "vectorized"

    def __init__(self, *args, **kwargs) -> None:
        _require_numpy()
        super().__init__(*args, **kwargs)
        accountant = self.accountant
        if (
            accountant.enabled
            and isinstance(accountant, CycleAccountant)
            and FlatSetAssocCache.supports(self.machine.llc)
        ):
            accountant.replace_tag_stores(
                lambda config: FlatSetAssocCache(config, sparse=True)
            )
        # Per-iteration spin cost is config-constant: one compute chunk
        # of spin_iter_instrs, one dependent L1-hit load.
        n_loop = self.machine.sync.spin_iter_instrs
        self._spin_iter_cost = (
            -(-n_loop // self._width) + 1 + self.machine.l1d.hit_latency
        )

    def _build_chip(self, machine, accountant, bus) -> Chip:
        return Chip(
            machine, accountant, bus=bus, cache_factory=_flat_or_reference
        )

    # ------------------------------------------------------------------
    # fused warmup kernel
    # ------------------------------------------------------------------

    def _warm_caches(self) -> None:
        warmup = self.program.warmup
        if not warmup:
            return
        chip = self.chip
        accountant = self.accountant
        acct_enabled = accountant.enabled
        # The fused path inlines the exact per-line effects of
        # Chip.warm_line over flat stores and the standard directory /
        # accountant, starting from cold state; any substitution (or a
        # non-cold chip) falls back to the reference loop.
        if (
            type(chip.llc) is not FlatSetAssocCache
            or any(type(l1) is not FlatSetAssocCache for l1 in chip.l1d)
            or type(chip.directory) is not CoherenceDirectory
            or (acct_enabled and type(accountant) is not CycleAccountant)
            or chip.llc.occupancy()
            or any(l1.occupancy() for l1 in chip.l1d)
            or chip.directory._sharers
        ):
            super()._warm_caches()
            return

        np = _np
        n_cores = self.machine.n_cores
        streams = [np.asarray(addrs, dtype=np.int64) for addrs in warmup]
        if any(s.size and int(s.min()) < 0 for s in streams):
            super()._warm_caches()  # -1 is the interleave pad sentinel
            return
        max_len = max((s.size for s in streams), default=0)
        if max_len == 0:
            return
        # Round-robin interleave across threads (column-major over a
        # padded matrix), exactly like the reference iterator dance.
        matrix = np.full((len(streams), max_len), -1, dtype=np.int64)
        for tid, stream in enumerate(streams):
            matrix[tid, : stream.size] = stream
        addr_stream = matrix.T.ravel()
        core_stream = np.tile(
            np.arange(len(streams), dtype=np.int64) % n_cores, max_len
        )
        alive = addr_stream >= 0
        addr_stream = addr_stream[alive]
        core_stream = core_stream[alive]

        # Bulk address math (the per-line work numpy can lift out).
        lines = addr_stream >> chip._l1_line_shift

        llc = chip.llc
        llc_mask = llc._set_mask
        llc_assoc = llc.assoc
        llc_evictions = 0
        l1_caches = chip.l1d
        l1_tags = [l1._tags for l1 in l1_caches]
        l1_mask = l1_caches[0]._set_mask
        l1_assoc = l1_caches[0].assoc
        l1_evictions = [0] * n_cores

        # The loop below works in dense line-id space: np.unique remaps
        # the (large, sparse) line addresses to 0..n_distinct-1, so the
        # per-access inner loop touches only plain lists — no hashing.
        # The directory's sharer map collapses to one bitmask int per
        # line id (the map mirrors L1 contents exactly during warmup:
        # fills add, evictions remove, nothing else runs), rebuilt as a
        # dict afterwards.  ``order`` records each id's latest
        # absent->present transition so the rebuilt dict reproduces the
        # reference dict's key insertion order (state_dict serializes
        # it); invalid-tag discards are elided — those sets stay empty
        # until the first store.
        uniq, lid_arr = np.unique(lines, return_inverse=True)
        lines_of = uniq.tolist()
        l1set_of = (uniq & l1_mask).tolist()
        owners = [0] * len(lines_of)
        in_llc = bytearray(len(lines_of))
        order = [0] * len(lines_of)
        seq = 1
        bits = [1 << c for c in range(n_cores)]

        # During warmup the LLC never promotes (warm_fill is called with
        # promote=False) and never dirties, so its per-set evolution is
        # pure FIFO-insert: a fixed-size ring per set replaces the
        # pop(0)/append churn with one O(1) slot write, and the slot
        # being overwritten is exactly the front-eviction victim.  The
        # rings are converted back to position-ordered lists afterwards.
        # ``in_llc`` turns the O(assoc) row-membership scan into a flag
        # probe, and the owner bitmask doubles as the O(1) L1 hit test.
        n_llc_sets = llc_mask + 1
        llc_rows = [[-1] * llc_assoc for _ in range(n_llc_sets)]
        llc_ptrs = [0] * n_llc_sets

        for cid, lid, lset, l1set in zip(
            core_stream.tolist(), lid_arr.tolist(),
            (lines & llc_mask).tolist(), (lines & l1_mask).tolist(),
        ):
            bitc = bits[cid]
            mine = owners[lid]
            if not in_llc[lid]:
                in_llc[lid] = 1
                row = llc_rows[lset]
                ptr = llc_ptrs[lset]
                victim = row[ptr]
                row[ptr] = lid
                llc_ptrs[lset] = ptr + 1 if ptr + 1 < llc_assoc else 0
                if victim >= 0:
                    in_llc[victim] = 0
                    llc_evictions += 1
                    # inclusive drop: every L1 copy of the victim goes
                    mask = owners[victim]
                    if mask:
                        owners[victim] = 0
                        vset = l1set_of[victim]
                        while mask:
                            bit = mask & -mask
                            l1_tags[bit.bit_length() - 1][vset].remove(
                                victim
                            )
                            mask ^= bit
            # L1 fill (clean): promote a resident line to MRU, else
            # insert, evicting the front and dropping its owner bit.
            # Dirty bits cannot be set during warmup, so the parallel
            # dirty arrays are rebuilt wholesale afterwards.  (The
            # inclusive drop above never touches this access's line —
            # the LLC victim is a different, resident line — so ``mine``
            # read up front stays valid.)
            if mine & bitc:
                tags = l1_tags[cid][l1set]
                if tags[-1] != lid:
                    tags.append(tags.pop(tags.index(lid)))
            else:
                tags = l1_tags[cid][l1set]
                if len(tags) >= l1_assoc:
                    vlid = tags.pop(0)
                    l1_evictions[cid] += 1
                    owners[vlid] -= bitc  # bit always set (mirror)
                tags.append(lid)
                if mine:
                    owners[lid] = mine | bitc
                else:
                    owners[lid] = bitc
                    order[lid] = seq
                    seq += 1

        # Ring -> position order: slot ptr is the oldest live entry of a
        # full set; a set still filling holds slots [0, ptr).
        llc_store_tags = llc._tags
        llc_store_dirty = llc._dirty
        for lset, row in enumerate(llc_rows):
            ptr = llc_ptrs[lset]
            if row[ptr] < 0:
                ordered = row[:ptr]
            else:
                ordered = row[ptr:] + row[:ptr]
            if ordered:
                llc_store_tags[lset] = [lines_of[i] for i in ordered]
                llc_store_dirty[lset] = [False] * len(ordered)
        llc.n_evictions += llc_evictions
        for cid, count in enumerate(l1_evictions):
            l1 = l1_caches[cid]
            l1.n_evictions += count
            l1_dirty = l1._dirty
            store_tags = l1_tags[cid]
            for set_index, tags in enumerate(store_tags):
                if tags:
                    store_tags[set_index] = [lines_of[i] for i in tags]
                    l1_dirty[set_index] = [False] * len(tags)

        # Owner bitmasks -> sharer sets, in reference insertion order.
        sharers = chip.directory._sharers
        live = sorted(
            (order[lid], lid) for lid, mask in enumerate(owners) if mask
        )
        for _, lid in live:
            mask = owners[lid]
            holders = set()
            while mask:
                bit = mask & -mask
                holders.add(bit.bit_length() - 1)
                mask ^= bit
            sharers[lines_of[lid]] = holders

        if acct_enabled:
            self._warm_atds(accountant, core_stream, addr_stream)

    def _warm_atds(self, accountant, core_stream, addr_stream) -> None:
        """ATD side of warmup, as a second pass over the sampled subset.

        ATD state depends only on its own tag array, so it can run
        separately from the LLC/L1/directory loop — and only 1 in
        ``atd_sample_period`` sets is sampled, so filtering the stream
        down with numpy first makes this pass short.
        """
        chip = self.chip
        atd_sets = (addr_stream >> chip._llc_line_shift) & chip._llc_set_mask
        oracle = accountant.oracle_atds
        period = self.machine.accounting.atd_sample_period
        sampled = atd_sets % period == period // 2
        if oracle is not None or not all(
            type(atd._tags) is FlatSetAssocCache for atd in accountant.atds
        ):
            # oracle ATDs sample every set — no filtering win, and the
            # per-access call handles both directories exactly
            warm_llc_access = accountant.warm_llc_access
            for cid, line, sset in zip(
                core_stream.tolist(),
                (addr_stream >> chip._l1_line_shift).tolist(),
                atd_sets.tolist(),
            ):
                warm_llc_access(cid, line, sset)
            return
        lines = (addr_stream >> chip._l1_line_shift)[sampled]
        cores = core_stream[sampled]
        ssets = atd_sets[sampled]
        atd_tag_dicts = [atd._tags._tags for atd in accountant.atds]
        assoc = accountant.atds[0]._tags.assoc
        promote = accountant.atds[0]._tags._promote_on_hit
        evictions = [0] * len(atd_tag_dicts)
        # inlined sparse FlatSetAssocCache.warm_fill(promote=True):
        # LRU promotes on a warm hit, FIFO does not
        for cid, line, sset in zip(
            cores.tolist(), lines.tolist(), ssets.tolist()
        ):
            store = atd_tag_dicts[cid]
            row = store.get(sset)
            if row is None:
                store[sset] = [line]
            elif line in row:
                if promote and row[-1] != line:
                    row.append(row.pop(row.index(line)))
            else:
                if len(row) >= assoc:
                    row.pop(0)
                    evictions[cid] += 1
                row.append(line)
        for cid, count in enumerate(evictions):
            store = accountant.atds[cid]._tags
            store.n_evictions += count
            dirty = store._dirty
            for sset, row in store._tags.items():
                dirty[sset] = [False] * len(row)

    # ------------------------------------------------------------------
    # spin event-horizon batching
    # ------------------------------------------------------------------

    def _fast_forward_block(
        self, core, max_cycles, livelock_window, steps
    ) -> int:
        thread = core.current
        if thread is not None and thread.spin is not None:
            return self._spin_horizon_jump(
                core, thread, max_cycles, livelock_window, steps
            )
        return super()._fast_forward_block(
            core, max_cycles, livelock_window, steps
        )

    def _spin_horizon_jump(
        self, core, thread, max_cycles, livelock_window, steps
    ) -> int:
        """Jump a quiescent spin to the core's next interesting event.

        Every batched iteration is one the reference loop would
        inevitably execute next: the core stays strictly earliest while
        its clock is below the horizon, only this core runs (so the
        lock/barrier exit condition cannot turn true mid-batch), the
        spin load hits L1 with no outstanding misses (constant cost and
        no memory-system mutation beyond counters), and the batch stops
        short of the yield threshold, any watchdog-stride step, and
        ``max_cycles`` so those paths execute through the reference
        code on exactly the reference step/cycle.  Anything else —
        return to the per-iteration loop.
        """
        if core.queue:
            return steps
        cid = core.core_id
        chip = self.chip
        if chip.has_outstanding(cid):
            return steps
        ctx = thread.spin
        obj = ctx.obj
        if ctx.kind == "lock":
            if obj.is_free or obj.holder is thread:
                return steps
            spin_addr = obj.addr
            pc_load = sync_pc.PC_LOCK_SPIN_LOAD
        else:
            if obj.generation != ctx.my_generation:
                return steps
            spin_addr = obj.gen_addr
            pc_load = sync_pc.PC_BARRIER_SPIN_LOAD
        l1 = chip.l1d[cid]
        line = spin_addr >> chip._l1_line_shift
        if not l1.contains(line):
            return steps

        cost = self._spin_iter_cost
        now = core.now
        # the threshold-reaching iteration yields; leave it (and one
        # spare is fine — k must stay >= 2 to beat the reference loop)
        k = self._spin_threshold - 1 - ctx.iters
        limit = self._ff_limit
        if limit != _INFINITY:
            k_horizon = (int(limit) - now + cost - 1) // cost
            if k_horizon < k:
                k = k_horizon
        if livelock_window is not None:
            k_stride = _WATCHDOG_STRIDE - 1 - (steps % _WATCHDOG_STRIDE)
            if k_stride < k:
                k = k_stride
        if max_cycles is not None:
            if now > max_cycles:
                return steps
            k_cycles = (max_cycles - now) // cost + 1
            if k_cycles < k:
                k = k_cycles
        if k < 2:
            return steps

        accountant = self.accountant
        if accountant.enabled:
            if type(accountant) is not CycleAccountant:
                return steps
            detector = accountant.spin_detectors[cid]
            batch_loads = getattr(detector, "on_repeated_loads", None)
            if batch_loads is None:
                return steps
            version, _writer = chip.directory.load_value(spin_addr)
            # applied first: a table mismatch must abort before any
            # engine state is touched (the reference path then runs)
            if not batch_loads(pc_load, spin_addr, version, k):
                return steps

        n_per_iter = self.machine.sync.spin_iter_instrs + 1
        delta = k * cost
        thread.instrs += k * n_per_iter
        thread.spin_instrs += k * n_per_iter
        thread.gt_spin_cycles += delta
        ctx.iters += k
        core.now = now + delta
        core.busy_cycles += delta
        stats = chip.stats[cid]
        stats.busy_cycles += delta
        stats.instrs += k * n_per_iter
        stats.loads += k
        stats.l1_hits += k
        stats.stall_cycles += k * self.machine.l1d.hit_latency
        # the spin line is already MRU (the previous iteration's load
        # promoted it), so k further lookups only bump the hit counter
        l1.n_hits += k
        return steps + k
