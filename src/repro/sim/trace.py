"""Execution tracing: thread-state timelines of a simulated run.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.engine.Simulation`
records every interval in which a thread occupies a core, labelled with
how the interval ended (blocked, preempted, yielded, finished).  The
trace can be rendered as an ASCII per-core timeline (quick diagnosis of
convoys, idle cores, stragglers) or exported in the Chrome trace-event
format (``chrome://tracing`` / Perfetto) for interactive inspection.

Tracing is optional and adds no cost when absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

END_BLOCKED = "blocked"
END_PREEMPTED = "preempted"
END_FINISHED = "finished"


@dataclass(frozen=True)
class RunInterval:
    """One scheduling interval: a thread running on a core."""

    thread_id: int
    core_id: int
    start: int
    end: int
    end_reason: str

    @property
    def duration(self) -> int:
        return self.end - self.start


class TraceRecorder:
    """Collects scheduling intervals from the engine."""

    def __init__(self) -> None:
        self.intervals: list[RunInterval] = []
        self._open: dict[int, tuple[int, int]] = {}  # tid -> (core, start)

    # -- engine hooks ---------------------------------------------------

    def on_run_start(self, thread_id: int, core_id: int, now: int) -> None:
        self._open[thread_id] = (core_id, now)

    def on_run_end(self, thread_id: int, now: int, reason: str) -> None:
        entry = self._open.pop(thread_id, None)
        if entry is None:
            return
        core_id, start = entry
        if now < start:
            now = start
        self.intervals.append(
            RunInterval(thread_id, core_id, start, now, reason)
        )

    # -- queries ----------------------------------------------------------

    def intervals_of_thread(self, thread_id: int) -> list[RunInterval]:
        return [iv for iv in self.intervals if iv.thread_id == thread_id]

    def intervals_of_core(self, core_id: int) -> list[RunInterval]:
        return [iv for iv in self.intervals if iv.core_id == core_id]

    def busy_cycles_of_core(self, core_id: int) -> int:
        return sum(iv.duration for iv in self.intervals_of_core(core_id))

    def run_cycles_of_thread(self, thread_id: int) -> int:
        return sum(iv.duration for iv in self.intervals_of_thread(thread_id))

    @property
    def end_time(self) -> int:
        return max((iv.end for iv in self.intervals), default=0)

    def core_utilization(self, n_cores: int) -> list[float]:
        """Fraction of wall time each core spent running a thread."""
        total = self.end_time
        if total == 0:
            return [0.0] * n_cores
        return [self.busy_cycles_of_core(c) / total for c in range(n_cores)]

    # -- exports ----------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON: one 'process' per core, complete
        ('X') events per scheduling interval, microsecond-for-cycle."""
        events = []
        for iv in self.intervals:
            events.append({
                "name": f"thread {iv.thread_id}",
                "cat": "run",
                "ph": "X",
                "pid": iv.core_id,
                "tid": iv.thread_id,
                "ts": iv.start,
                "dur": iv.duration,
                "args": {"end": iv.end_reason},
            })
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ns"})

    def render_timeline(self, n_cores: int, width: int = 72) -> str:
        """ASCII Gantt chart: one row per core, a column per time slice;
        the cell shows the thread id running for most of that slice
        ('.' when the core is idle)."""
        total = self.end_time
        if total == 0:
            return "(empty trace)"
        slice_len = max(1, total // width)
        lines = [f"timeline: {total} cycles, {slice_len} cycles/column"]
        for core in range(n_cores):
            occupancy = [(-1, 0)] * width  # (tid, covered cycles)
            cells: list[dict[int, int]] = [dict() for _ in range(width)]
            for iv in self.intervals_of_core(core):
                first = min(width - 1, iv.start // slice_len)
                last = min(width - 1, max(iv.start, iv.end - 1) // slice_len)
                for column in range(first, last + 1):
                    lo = max(iv.start, column * slice_len)
                    hi = min(iv.end, (column + 1) * slice_len)
                    if hi > lo:
                        cells[column][iv.thread_id] = (
                            cells[column].get(iv.thread_id, 0) + hi - lo
                        )
            row = []
            for column in range(width):
                if not cells[column]:
                    row.append(".")
                else:
                    tid = max(cells[column], key=cells[column].get)
                    row.append(_thread_glyph(tid))
            lines.append(f"core {core:2d} |{''.join(row)}|")
        return "\n".join(lines)


_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _thread_glyph(thread_id: int) -> str:
    if 0 <= thread_id < len(_GLYPHS):
        return _GLYPHS[thread_id]
    return "#"
