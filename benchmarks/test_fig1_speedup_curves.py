"""Figure 1 — speedup as a function of the number of cores.

Paper: blackscholes scales almost linearly to ~16x, while facesim and
cholesky flatten out around 5-5.5x at 16 threads.  The reproduction
must show the same separation: one near-linear scaler and two that
saturate near a third of linear.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.rendering import render_speedup_curve
from repro.experiments.scenarios import speedup_curves
from repro.workloads.suite import by_name


def test_fig1_speedup_curves(benchmark, cache):
    curves = benchmark.pedantic(
        speedup_curves, args=(cache,), rounds=1, iterations=1
    )
    print_artifact(
        "Figure 1: speedup vs. number of threads",
        render_speedup_curve(curves),
    )

    blackscholes = curves["blackscholes_medium"]
    facesim = curves["facesim_medium"]
    cholesky = curves["cholesky"]

    # Shape: monotone scaling for all three.
    for curve in (blackscholes, facesim, cholesky):
        counts = sorted(curve)
        values = [curve[n] for n in counts]
        assert all(b >= a * 0.85 for a, b in zip(values, values[1:]))

    # blackscholes is near-linear: >= 14x at 16 threads (paper: 15.94).
    assert blackscholes[16] > 14.0
    # facesim and cholesky saturate around 4.5-6.5x (paper: 5.50, 5.02).
    assert 4.0 < facesim[16] < 7.0
    assert 4.0 < cholesky[16] < 7.0
    # The gap between the good scaler and the saturating ones is large.
    assert blackscholes[16] > 2 * max(facesim[16], cholesky[16])
    # ... and at 16 threads facesim and cholesky are close to each other
    # (the paper's point: similar speedups, different reasons).
    assert abs(facesim[16] - cholesky[16]) < 1.5
