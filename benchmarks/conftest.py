"""Shared state for the figure-reproduction benches.

One :class:`ExperimentCache` spans the whole bench session, so figures
that reuse the same runs (1, 4, 5, 6, 8 all share the 16-thread suite
sweep) only simulate each (benchmark, N, machine) point once.

``REPRO_SCALE`` (default 1.0) scales the workloads down for quick
smoke runs of the harness.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import ExperimentCache, default_scale


@pytest.fixture(scope="session")
def cache() -> ExperimentCache:
    return ExperimentCache(scale=default_scale())


def print_artifact(title: str, body: str) -> None:
    """Print one reproduced table/figure under a banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
