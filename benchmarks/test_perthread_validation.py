"""Extension: per-thread validation of Equation 2's estimates.

The paper validates the *aggregate* estimated speedup (Figure 4); the
accounting actually estimates every thread's isolated time T̂_i first.
This bench validates those directly against per-thread isolated runs —
a stronger check that also quantifies how much per-thread error cancels
in the aggregate.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.experiments.perthread import render_per_thread, validate_per_thread
from repro.workloads.suite import by_name

BENCHMARKS = ("dedup_small", "facesim_small", "heartwall")


def test_perthread_validation(benchmark, cache):
    def run():
        return {
            name: validate_per_thread(by_name(name), 16, scale=cache.scale)
            for name in BENCHMARKS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    body = "\n\n".join(
        f"--- {name} ---\n" + render_per_thread(v)
        for name, v in results.items()
    )
    print_artifact("Extension: per-thread T̂_i validation (16 threads)", body)

    for name, validation in results.items():
        # Per-thread estimates land in the right range.
        assert validation.mean_abs_error < 0.20, name
        # The aggregate benefits from cancellation: it is never worse
        # than the mean per-thread error.
        assert abs(validation.aggregate_error) <= (
            validation.mean_abs_error + 1e-9
        ), name
        for thread in validation.threads:
            assert thread.estimated_cycles > 0
            assert thread.isolated_cycles > 0
