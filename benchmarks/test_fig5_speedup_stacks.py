"""Figure 5 — speedup stacks for blackscholes, facesim and cholesky.

Paper: blackscholes shows no significant scaling bottleneck; facesim's
main delimiters are yielding, negative LLC interference and memory
interference; cholesky is dominated by spinning, followed by yielding
and memory interference, with the largest positive-sharing component
of the suite; imbalance is ~0 because stacks cover the whole parallel
fraction.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.components import Component
from repro.core.rendering import render_stack_series
from repro.experiments.scenarios import stack_series
from repro.workloads.suite import FIG5_BENCHMARKS


def _all_series(cache):
    return {name: stack_series(cache, name) for name in FIG5_BENCHMARKS}


def test_fig5_speedup_stacks(benchmark, cache):
    series = benchmark.pedantic(
        _all_series, args=(cache,), rounds=1, iterations=1
    )
    body = "\n\n".join(
        render_stack_series(stacks, title=f"--- {name} ---")
        for name, stacks in series.items()
    )
    print_artifact(
        "Figure 5: speedup stacks for 2-16 threads", body
    )

    for stacks in series.values():
        for stack in stacks:
            stack.validate_consistency()

    black = series["blackscholes_medium"][-1]   # 16 threads
    facesim = series["facesim_medium"][-1]
    cholesky = series["cholesky"][-1]

    # blackscholes: no significant delimiters.
    assert not black.ranked_delimiters(significance=0.5)

    # facesim: yielding first; LLC and memory interference present.
    face_ranked = facesim.ranked_delimiters(significance=0.3)
    assert face_ranked[0][0] == Component.YIELDING
    face_components = {comp for comp, __ in face_ranked}
    assert Component.NET_NEGATIVE_LLC in face_components
    assert Component.NEGATIVE_MEMORY in face_components

    # cholesky: spinning is the dominant delimiter (unlike facesim).
    chol_ranked = cholesky.ranked_delimiters(significance=0.3)
    assert chol_ranked[0][0] == Component.SPINNING
    assert cholesky.spinning > facesim.spinning

    # cholesky has a clear positive-sharing component; its impact is
    # compensated by negative interference (net >= 0 at 2MB).
    assert cholesky.positive_llc > 0.1
    assert cholesky.net_negative_llc > -0.2

    # Imbalance is negligible everywhere (measured between divergence
    # and convergence of the threads).
    for stacks in series.values():
        for stack in stacks:
            assert stack.imbalance < 0.35

    # Stacks grow with the thread count (height == N).
    for stacks in series.values():
        assert [s.n_threads for s in stacks] == [2, 4, 8, 16]
