"""Ablations of the accounting architecture's design choices.

The paper makes several design decisions; these benches quantify them:

* **spin detector** — Tian et al. (load-watch, chosen for its simpler
  hardware) versus Li et al. (backward branches), Section 4.3;
* **ATD set sampling** — the hardware monitors only a few LLC sets and
  extrapolates (Section 4.1); sparser sampling trades accuracy for
  hardware cost;
* **coherency accounting** — the paper deliberately does not account
  coherency misses, arguing out-of-order cores hide them (Section 4.5),
  but describes a tag-hit-on-invalid detector; we implement it as an
  optional extension and measure what it would add;
* **spin-then-yield budget** — how long the synchronization library
  spins before blocking shifts time between the spinning and yielding
  components (Sections 4.3-4.4).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import print_artifact
from repro.accounting.hardware_cost import HardwareCostParams, estimate_cost
from repro.config import AccountingConfig, MachineConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import default_scale
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name


def _run(spec, machine, scale):
    return run_experiment(
        spec.full_name, machine,
        build_program(spec, machine.n_cores, scale=scale),
        build_program(spec, 1, scale=scale),
    )


def test_ablation_spin_detector(benchmark, cache):
    """Tian vs Li on the spin-dominated benchmark."""
    spec = by_name("cholesky")
    scale = cache.scale

    def run_both():
        results = {}
        for detector in ("tian", "li"):
            machine = replace(
                MachineConfig(n_cores=16),
                accounting=AccountingConfig(spin_detector=detector),
            )
            results[detector] = _run(spec, machine, scale)
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = []
    for detector, result in results.items():
        stack = result.stack
        lines.append(
            f"{detector:5s}: spin={stack.spinning:5.2f} "
            f"yield={stack.yielding:5.2f} "
            f"est={stack.estimated_speedup:5.2f} "
            f"err={stack.estimation_error * 100:+5.1f}%"
        )
    print_artifact("Ablation: spin detector (cholesky, 16 threads)",
                   "\n".join(lines))

    tian = results["tian"].stack
    li = results["li"].stack
    # Both detectors find a substantial spinning component.
    assert tian.spinning > 1.0
    assert li.spinning > 1.0
    # They agree within a factor of two (different mechanisms, same
    # phenomenon) and both keep the estimate in a sane range.
    ratio = tian.spinning / li.spinning
    assert 0.4 < ratio < 2.5
    assert abs(li.estimation_error) < 0.35


def test_ablation_atd_sampling(benchmark, cache):
    """Accuracy vs hardware cost of ATD set sampling."""
    spec = by_name("facesim_small")
    scale = cache.scale
    periods = (1, 8, 64)

    def run_sweep():
        out = {}
        for period in periods:
            machine = replace(
                MachineConfig(n_cores=16),
                accounting=AccountingConfig(atd_sample_period=period),
            )
            out[period] = _run(spec, machine, scale)
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = []
    for period, result in results.items():
        stack = result.stack
        n_sets = MachineConfig().llc.n_sets // period
        cost = estimate_cost(
            MachineConfig(n_cores=16),
            HardwareCostParams(atd_sampled_sets=min(n_sets, 2048)),
        )
        lines.append(
            f"period {period:3d} ({n_sets:4d} sets): "
            f"cache={stack.net_negative_llc:5.2f} "
            f"err={stack.estimation_error * 100:+5.1f}%  "
            f"atd={cost.atd_bytes}B/core"
        )
    print_artifact("Ablation: ATD sampling period (facesim_small)",
                   "\n".join(lines))

    full = results[1].stack
    for period, result in results.items():
        stack = result.stack
        # The extrapolated cache component stays within ~1.5 speedup
        # units of the full-tag-directory ground truth even at the
        # sparsest sampling, and the overall estimate stays accurate.
        assert stack.net_negative_llc == pytest.approx(
            full.net_negative_llc, abs=1.5
        )
        assert abs(stack.estimation_error) < 0.2


def test_ablation_coherency_accounting(benchmark, cache):
    """The Section 4.5 optional coherency-miss accounting."""
    spec = by_name("cholesky")
    scale = cache.scale

    def run_both():
        out = {}
        for enabled in (False, True):
            machine = replace(
                MachineConfig(n_cores=16),
                accounting=AccountingConfig(account_coherency=enabled),
            )
            out[enabled] = _run(spec, machine, scale)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    off, on = results[False].stack, results[True].stack
    print_artifact(
        "Ablation: coherency accounting (cholesky)",
        f"off: coherency={off.coherency:5.2f} "
        f"err={off.estimation_error * 100:+5.1f}%\n"
        f"on : coherency={on.coherency:5.2f} "
        f"err={on.estimation_error * 100:+5.1f}%",
    )

    # Disabled by default (the paper's choice): component is zero.
    assert off.coherency == 0.0
    # Enabled: a sharing-heavy benchmark shows real coherency stalls.
    assert on.coherency > 0.05
    # Accounting them lowers the (over-)estimated speedup, moving the
    # estimate toward the actual value for this over-estimating case.
    assert on.estimated_speedup < off.estimated_speedup
    assert abs(on.estimation_error) <= abs(off.estimation_error) + 0.01


def test_ablation_llc_replacement(benchmark, cache):
    """LLC replacement policy under cache interference.

    The paper's machine uses LRU.  The interference components are a
    property of sharing, not of the policy — they must appear under
    FIFO and random replacement too, with LRU no worse than random for
    the reuse-heavy workload."""
    spec = by_name("facesim_small")
    scale = cache.scale
    policies = ("lru", "fifo", "random")

    def run_sweep():
        out = {}
        for policy in policies:
            base = MachineConfig(n_cores=16)
            machine = replace(
                base, llc=replace(base.llc, replacement=policy),
            )
            out[policy] = _run(spec, machine, scale)
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{policy:6s}: S={r.stack.actual_speedup:5.2f} "
        f"cache={r.stack.net_negative_llc:5.2f} "
        f"err={r.stack.estimation_error * 100:+5.1f}%"
        for policy, r in results.items()
    ]
    print_artifact("Ablation: LLC replacement policy (facesim_small)",
                   "\n".join(lines))

    for policy, result in results.items():
        # interference is present and the estimate stays sane under
        # every policy (the ATD mirrors whatever policy the LLC uses
        # in its own LRU approximation)
        assert result.stack.net_negative_llc > 0.2, policy
        assert abs(result.stack.estimation_error) < 0.2, policy
    # LRU keeps at least as much of the working set as random
    assert (results["lru"].stack.actual_speedup
            >= results["random"].stack.actual_speedup - 0.4)


def test_ablation_spin_budget(benchmark, cache):
    """Spin-then-yield budget: spinning trades against yielding."""
    base = by_name("cholesky")
    scale = cache.scale
    budgets = (24, 180, 1200)

    def run_sweep():
        out = {}
        for budget in budgets:
            spec = replace(base, spin_threshold=budget)
            out[budget] = _run(spec, MachineConfig(n_cores=16), scale)
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"budget {budget:5d}: spin={r.stack.spinning:5.2f} "
        f"yield={r.stack.yielding:5.2f} S={r.stack.actual_speedup:5.2f}"
        for budget, r in results.items()
    ]
    print_artifact("Ablation: spin budget (cholesky)", "\n".join(lines))

    spins = [results[b].stack.spinning for b in budgets]
    yields = [results[b].stack.yielding for b in budgets]
    # Longer spin budgets shift waiting time from yielding to spinning.
    assert spins[0] < spins[-1]
    assert yields[0] > yields[-1]
