"""Section 4.7 — hardware cost of the accounting architecture.

Paper: 952 bytes per core for interference accounting, 217 bytes per
core for the Tian et al. spin table, i.e. ~1.1KB per core and ~18KB in
total for a 16-core CMP.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.accounting.hardware_cost import (
    PAPER_INTERFERENCE_BYTES_PER_CORE,
    PAPER_SPIN_TABLE_BYTES_PER_CORE,
    estimate_cost,
)
from repro.config import MachineConfig


def test_hw_cost(benchmark):
    cost = benchmark.pedantic(
        estimate_cost, args=(MachineConfig(n_cores=16),),
        rounds=3, iterations=10,
    )
    body = "\n".join([
        f"ATD (sampled sets)      {cost.atd_bytes:>6d} B/core",
        f"ORA (8 banks)           {cost.ora_bytes:>6d} B/core",
        f"event counters          {cost.counter_bytes:>6d} B/core",
        f"interference subtotal   {cost.interference_bytes_per_core:>6d} B/core   (paper: 952)",
        f"spin load table         {cost.spin_table_bytes:>6d} B/core   (paper: 217)",
        f"per core                {cost.per_core_kb:>6.2f} KB       (paper: ~1.1KB)",
        f"16-core total           {cost.total_kb:>6.2f} KB       (paper: ~18KB)",
    ])
    print_artifact("Section 4.7: accounting hardware cost", body)

    assert cost.interference_bytes_per_core == PAPER_INTERFERENCE_BYTES_PER_CORE
    assert cost.spin_table_bytes == PAPER_SPIN_TABLE_BYTES_PER_CORE
    assert 1.0 <= cost.per_core_kb <= 1.25
    assert 17.0 <= cost.total_kb <= 19.0
