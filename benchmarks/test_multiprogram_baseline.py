"""The multi-program accounting baseline (Eyerman et al. [7]).

The paper builds on a per-thread cycle accounting architecture designed
for multi-program workloads — independent single-threaded programs
co-running on a CMP, where only negative interference exists.  This
bench reproduces that baseline's headline capability: estimating each
program's *isolated* execution time from the co-run alone (the
quality-of-service use case of Section 8), validated against actual
isolated runs.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.config import MachineConfig
from repro.experiments.multiprogram import (
    render_multiprogram,
    run_multiprogram,
)
from repro.workloads.suite import by_name

MIX = ("facesim_small", "canneal_small", "radix", "blackscholes_small")


def test_multiprogram_baseline(benchmark, cache):
    specs = [by_name(name) for name in MIX]

    def run():
        return run_multiprogram(
            specs, MachineConfig(n_cores=4), scale=cache.scale
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Baseline [7]: multi-program isolated-time estimation",
        render_multiprogram(result),
    )

    by_name_map = {p.name: p for p in result.programs}

    # Co-running hurts the memory-hungry programs, not the cache-
    # resident compute-bound one.
    assert by_name_map["canneal_small"].slowdown > 1.15
    assert by_name_map["blackscholes_small"].slowdown < 1.08

    # The accounting recovers isolated times within a few percent —
    # the accuracy class the [7] baseline reports.
    assert result.mean_abs_error < 0.08
    for program in result.programs:
        assert abs(program.error) < 0.12, program
