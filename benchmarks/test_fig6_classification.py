"""Figure 6 — the benchmark classification tree (Section 7.2).

Paper observations the reproduction must match:

* only a few benchmarks scale well: 5 of 28 reach >= 10x at 16 threads;
* the poorest performer (ferret_small) is below 3x;
* yielding is the most significant delimiter — largest component for
  23 of 28 benchmarks;
* scaling improves with input size (swaptions small -> medium);
* cholesky is the spinning-dominated benchmark.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.rendering import render_tree
from repro.experiments.scenarios import classification_tree
from repro.workloads.suite import SUITE, by_name


def test_fig6_classification(benchmark, cache):
    tree = benchmark.pedantic(
        classification_tree, args=(cache,), rounds=1, iterations=1
    )
    print_artifact("Figure 6: classification tree (16 threads)", render_tree(tree))

    assert len(tree.leaves) == 28
    by_class = tree.by_class()
    leaves = {leaf.name: leaf for leaf in tree.leaves}

    # "only few benchmarks scale well: 5 out of the 28"
    assert 3 <= len(by_class.get("good", [])) <= 7
    # moderate and poor each hold roughly half of the rest
    assert len(by_class.get("moderate", [])) >= 8
    assert len(by_class.get("poor", [])) >= 8

    # the poorest performer shows a speedup below ~3x (paper: ferret 2.94)
    worst = min(tree.leaves, key=lambda leaf: leaf.speedup)
    assert worst.speedup < 3.3
    assert worst.name in ("ferret_small", "bodytrack_small")

    # yielding dominates: largest component for >= 18 benchmarks
    # (paper: 23 of 28)
    assert tree.count_with_dominant("yielding") >= 18

    # cholesky is spin-dominated
    assert leaves["cholesky"].top_components[0] == "spinning"

    # weak scaling: swaptions improves dramatically with input size
    assert (
        leaves["swaptions_medium"].speedup
        > leaves["swaptions_small"].speedup + 5.0
    )

    # per-benchmark scaling classes match the paper's rows
    mismatches = [
        (spec.full_name, leaves[spec.full_name].scaling, spec.expected_class)
        for spec in SUITE
        if leaves[spec.full_name].scaling != spec.expected_class
    ]
    assert len(mismatches) <= 3, mismatches

    # dominant components match the paper's first-column labels for at
    # least 24 of the 28 benchmarks
    matching_top = sum(
        1 for spec in SUITE
        if (not spec.expected_top and not leaves[spec.full_name].top_components)
        or (
            spec.expected_top
            and leaves[spec.full_name].top_components[:1]
            == spec.expected_top[:1]
        )
    )
    assert matching_top >= 24
