"""Figure 9 — cholesky's LLC interference vs LLC size (2/4/8/16 MB).

Paper: as the LLC grows, negative interference decreases (fewer
capacity misses) while positive interference remains approximately
constant (a program property), so the net component shrinks and even
turns negative — cache sharing becomes a net performance win.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.analysis import expect_monotone_negative
from repro.core.rendering import render_interference
from repro.experiments.scenarios import llc_size_sweep


def test_fig9_llc_size_sweep(benchmark, cache):
    points = benchmark.pedantic(
        llc_size_sweep, args=(cache,), rounds=1, iterations=1
    )
    print_artifact(
        "Figure 9: cholesky LLC interference vs LLC size",
        render_interference([p.interference for p in points]),
    )

    assert [p.llc_mb for p in points] == [2.0, 4.0, 8.0, 16.0]
    first = points[0].interference
    last = points[-1].interference

    # Negative interference decreases with LLC size (monotone trend).
    assert expect_monotone_negative(points)
    assert last.negative < 0.5 * max(first.negative, 0.2)

    # Positive interference roughly constant: within a factor ~2.5 of
    # the 2MB value at every size, never collapsing to zero.
    for p in points:
        pos = p.interference.positive
        assert pos > 0.25 * first.positive
        assert pos < 2.5 * max(first.positive, 0.1)

    # The net component shrinks with LLC size and ends lower than it
    # started; at 16MB cache sharing is a net win (net <= 0) or at
    # least nearly so.
    assert last.net < first.net
    assert last.net < 0.15
