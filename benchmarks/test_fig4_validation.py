"""Figure 4 + Section 6 — actual vs estimated speedup, all benchmarks.

Paper: average absolute error of 3.0%, 3.4%, 2.8% and 5.1% for 2, 4, 8
and 16 threads, with outliers up to ~22% (fluidanimate_medium 22.0%,
swaptions_small 21.3%, lu.ncont 16.2%, srad 14.8%), largely explained
by unaccounted parallelization overhead (~26% extra instructions for
swaptions_small, ~18% for fluidanimate_medium).

Reproduction targets (shape-level): errors of the same order per thread
count; the accounting identifies scaling degree benchmark by benchmark;
the same mechanism produces the overhead-driven outliers.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.rendering import render_validation_table
from repro.experiments.scenarios import validation_sweep


def test_fig4_validation(benchmark, cache):
    summary = benchmark.pedantic(
        validation_sweep, args=(cache,), rounds=1, iterations=1
    )
    table = render_validation_table(summary.rows)
    error_lines = "\n".join(
        f"  {n:2d} threads: mean |error| = {err * 100:.1f}%   (paper: {paper}%)"
        for (n, err), paper in zip(
            summary.error_by_threads.items(), ("3.0", "3.4", "2.8", "5.1")
        )
    )
    print_artifact(
        "Figure 4: actual vs estimated speedup (all benchmarks, 2-16 threads)",
        table + "\n\n" + error_lines,
    )

    # 28 benchmarks x 4 thread counts.
    assert len(summary.rows) == 28 * 4

    # Error magnitudes in the paper's regime at every thread count.
    for n_threads, error in summary.error_by_threads.items():
        assert error < 0.10, f"{n_threads}-thread error {error:.1%}"

    # The 16-thread error lands near the paper's 5.1%.
    assert summary.error_by_threads[16] < 0.085

    # The estimate identifies the degree of scaling: estimated and
    # actual speedups correlate strongly across the suite at 16 threads.
    rows16 = [r for r in summary.rows if r.n_threads == 16]
    ranked_actual = sorted(rows16, key=lambda r: r.actual_speedup)
    ranked_est = sorted(rows16, key=lambda r: r.estimated_speedup)
    # Spearman-style check: good scalers estimated as good.
    top5_actual = {r.name for r in ranked_actual[-5:]}
    top8_est = {r.name for r in ranked_est[-8:]}
    assert len(top5_actual & top8_est) >= 4

    # Section 6: parallelization overhead is measurable and matches the
    # configured magnitudes for the two outlier benchmarks.
    overheads = summary.overheads
    assert overheads["swaptions_small"] > 0.20   # paper: ~26%
    assert overheads["fluidanimate_medium"] > 0.14  # paper: ~18%
    # ... and those two have above-median estimation error (the paper's
    # explanation for its outliers).
    errors16 = {r.name: r.abs_error for r in rows16}
    median = sorted(errors16.values())[len(errors16) // 2]
    assert errors16["swaptions_small"] >= median * 0.9
