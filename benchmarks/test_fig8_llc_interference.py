"""Figure 8 — negative, positive and net LLC interference (16 cores).

Paper: for all seven benchmarks with a non-negligible positive
component (cholesky, lu.cont, canneal small/large, bfs, lu.ncont,
needle), negative interference exceeds positive interference, so the
net component hurts performance at the default 2MB LLC.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.core.rendering import render_interference
from repro.experiments.scenarios import interference_breakdown
from repro.workloads.suite import FIG8_BENCHMARKS


def test_fig8_interference_breakdown(benchmark, cache):
    rows = benchmark.pedantic(
        interference_breakdown, args=(cache,), rounds=1, iterations=1
    )
    print_artifact(
        "Figure 8: negative / positive / net LLC interference",
        render_interference(rows),
    )

    assert [row.name for row in rows] == list(FIG8_BENCHMARKS)

    # Every benchmark in the figure has a visible positive component.
    for row in rows:
        assert row.positive > 0.1, f"{row.name}: positive {row.positive:.2f}"

    # Paper: negative exceeds positive for all of them at 2MB -> the
    # net component is positive (harmful) or at worst ~neutral.
    harmful = sum(1 for row in rows if row.net > -0.05)
    assert harmful >= 6, [
        (row.name, round(row.net, 2)) for row in rows
    ]

    # Magnitudes are in the paper's ballpark (fractions of a speedup
    # unit up to ~2 units, not tens).
    for row in rows:
        assert 0 < row.negative < 4.0
        assert row.positive < 2.5
