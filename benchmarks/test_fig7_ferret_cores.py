"""Figure 7 — ferret with 16 threads on 2/4/8/16 cores.

Paper: for the 16-thread version of ferret, performance saturates at 8
cores (16 cores is no better, even slightly worse because the scheduler
gets less efficient with more cores), and spawning more software
threads than cores improves performance over threads == cores.
"""

from __future__ import annotations

from benchmarks.conftest import print_artifact
from repro.experiments.scenarios import ferret_core_sweep


def test_fig7_ferret_core_sweep(benchmark, cache):
    matched, oversubscribed = benchmark.pedantic(
        ferret_core_sweep, args=(cache,), rounds=1, iterations=1
    )
    lines = [f"{'cores':>6s}{'threads=cores':>16s}{'16 threads':>14s}"]
    for m, o in zip(matched, oversubscribed):
        lines.append(f"{m.n_cores:>6d}{m.speedup:>16.2f}{o.speedup:>14.2f}")
    print_artifact("Figure 7: ferret, threads vs cores", "\n".join(lines))

    over = {p.n_cores: p.speedup for p in oversubscribed}
    match = {p.n_cores: p.speedup for p in matched}

    # Oversubscribed performance saturates: 16 cores is not meaningfully
    # better than 8 (paper: slightly worse at 16 cores).
    assert over[16] <= over[8] * 1.10
    # ... and 8 cores is already close to the best the 16-thread version
    # ever achieves.
    assert over[8] >= 0.85 * max(over.values())

    # More software threads than cores helps: the 16-thread version
    # beats threads == cores at every sub-16 core count.
    assert over[2] >= match[2] * 0.95
    assert over[4] >= match[4] * 0.95
    assert over[8] >= match[8] * 0.95

    # The 16-thread curve rises with the core count up to saturation.
    assert over[2] < over[4] < over[8] <= over[16] * 1.05

    # ferret saturates around ~3x: "the speedup number is an
    # approximation of the average number of active threads".
    assert 2.3 < max(over.values()) < 4.0

    # All speedups positive and bounded by core count.
    for n_cores, speedup in over.items():
        assert 0 < speedup <= n_cores + 0.5
