"""Extension: cache partitioning as the stack-guided remedy.

Section 7.1's architect-facing workflow: the speedup stack shows a
large negative-LLC component → "processor designers can put more
resources towards avoiding negative interference, for example through
novel cache partitioning algorithms."  This bench closes that loop:

1. a pollution scenario (one streaming thread, three cache-resident
   victims, a thrash-prone LLC) produces a large negative-LLC
   component in the stack;
2. the stack's what-if projection predicts the gain of removing it;
3. statically partitioning the LLC ways (streamer confined to 1 way)
   is applied as the fix;
4. the component vanishes and the victims' measured improvement is
   real — the stack's guidance was actionable.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import print_artifact
from repro.accounting.accountant import CycleAccountant
from repro.config import MB, CacheConfig, MachineConfig
from repro.core.components import Component
from repro.core.stack import build_stack
from repro.core.whatif import remove_component
from repro.sim.engine import Simulation
from repro.workloads.program import Compute, Load, Program


def _streamer(base, iters):
    def body():
        for k in range(iters):
            yield Compute(10)
            yield Load(base + k * 128)
    return body()


def _reuser(base, iters, lines=6144):
    def body():
        for k in range(iters):
            yield Compute(20)
            yield Load(base + ((k * 37) % lines) * 64)
    return body()


def _program(scale: float) -> Program:
    stream_iters = max(2000, int(30000 * scale))
    reuse_iters = max(8000, int(120000 * scale))
    bodies = [_streamer(0x4_0000_0000, stream_iters)]
    warmup = [[]]
    for tid in range(1, 4):
        base = 0x1000_0000 + tid * 0x400_0000 + tid * 13 * 4096
        bodies.append(_reuser(base, reuse_iters))
        warmup.append([base + i * 64 for i in range(6144)])
    return Program("pollution", bodies, warmup=warmup)


def _run(machine, scale):
    accountant = CycleAccountant(machine)
    result = Simulation(machine, _program(scale), accountant).run()
    stack = build_stack("pollution", accountant.report(result))
    return result, stack


def test_partitioning_remedy(benchmark, cache):
    # A thrash-prone LLC (random replacement) makes the streaming
    # thread's pollution bite; the paper's 16-way LRU is so protective
    # that single-stream pollution barely registers (itself a finding).
    llc = CacheConfig(size_bytes=2 * MB, assoc=16, hit_latency=30,
                      hidden_latency=30, replacement="random")
    shared_machine = replace(MachineConfig(n_cores=4), llc=llc)
    partitioned_machine = replace(
        shared_machine, llc_quotas=(1, 5, 5, 5)
    )

    def run_both():
        return _run(shared_machine, cache.scale), _run(
            partitioned_machine, cache.scale
        )

    (shared_result, shared_stack), (part_result, part_stack) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    projection = remove_component(shared_stack, Component.NET_NEGATIVE_LLC)
    victims_shared = max(t.end_time for t in shared_result.threads[1:])
    victims_part = max(t.end_time for t in part_result.threads[1:])
    body = "\n".join([
        f"shared LLC:      negative-LLC component = "
        f"{shared_stack.negative_llc:5.2f}, victims finish at "
        f"{victims_shared}",
        f"what-if:         removing the cache component projects "
        f"+{projection.gain:.2f} speedup units",
        f"partitioned LLC: negative-LLC component = "
        f"{part_stack.negative_llc:5.2f}, victims finish at "
        f"{victims_part}  ({victims_shared / victims_part:.1f}x sooner)",
    ])
    print_artifact("Extension: stack-guided cache partitioning", body)

    # 1. the stack diagnoses the pollution
    assert shared_stack.negative_llc > 1.0
    # 2. the remedy removes the component
    assert part_stack.negative_llc < 0.2
    # 3. ... and the victims genuinely run faster
    assert victims_part < 0.6 * victims_shared
    # 4. the projection pointed in the right direction with a
    #    meaningful magnitude
    assert projection.gain > 0.5
