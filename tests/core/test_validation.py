"""Validation metrics (Equation 6)."""

from __future__ import annotations

import pytest

from repro.core.stack import SpeedupStack
from repro.core.validation import (
    ValidationRow,
    errors_by_thread_count,
    mean_absolute_error,
    validation_row,
)


def row(name="b", n=16, actual=5.0, estimated=5.5) -> ValidationRow:
    return ValidationRow(name, n, actual, estimated)


class TestErrorMetric:
    def test_signed_error(self):
        assert row(actual=5.0, estimated=5.8).error == pytest.approx(0.05)
        assert row(actual=5.8, estimated=5.0).error == pytest.approx(-0.05)

    def test_abs_error(self):
        assert row(actual=5.8, estimated=5.0).abs_error == pytest.approx(0.05)

    def test_normalized_by_n(self):
        small = row(n=4, actual=2.0, estimated=2.4)
        big = row(n=16, actual=2.0, estimated=2.4)
        assert small.error == pytest.approx(0.1)
        assert big.error == pytest.approx(0.025)


class TestAggregation:
    def test_mean_absolute_error(self):
        rows = [row(estimated=5.8), row(estimated=4.2)]
        assert mean_absolute_error(rows) == pytest.approx(0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([])

    def test_errors_by_thread_count(self):
        rows = [
            row(n=2, actual=1.0, estimated=1.1),
            row(n=2, actual=1.0, estimated=0.9),
            row(n=16, actual=8.0, estimated=9.6),
        ]
        grouped = errors_by_thread_count(rows)
        assert grouped[2] == pytest.approx(0.05)
        assert grouped[16] == pytest.approx(0.1)
        assert list(grouped) == [2, 16]


class TestFromStack:
    def test_extracts_point(self):
        stack = SpeedupStack(
            name="s", n_threads=4, tp_cycles=100,
            negative_llc=0, negative_memory=0, positive_llc=0,
            spinning=0, yielding=1.0, imbalance=0,
            actual_speedup=2.5,
        )
        point = validation_row(stack)
        assert point.actual_speedup == 2.5
        assert point.estimated_speedup == pytest.approx(3.0)

    def test_requires_reference(self):
        stack = SpeedupStack(
            name="s", n_threads=4, tp_cycles=100,
            negative_llc=0, negative_memory=0, positive_llc=0,
            spinning=0, yielding=0, imbalance=0,
        )
        with pytest.raises(ValueError):
            validation_row(stack)
