"""Speedup stacks: the Equation 2-5 algebra and its invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting.report import AccountingReport, ThreadComponents
from repro.core.components import Component
from repro.core.stack import SpeedupStack, build_stack

UNITS = st.floats(min_value=0.0, max_value=0.2, allow_nan=False)


def make_stack(**overrides) -> SpeedupStack:
    values = dict(
        name="t", n_threads=4, tp_cycles=10_000,
        negative_llc=0.5, negative_memory=0.25, positive_llc=0.2,
        spinning=0.4, yielding=0.8, imbalance=0.1, coherency=0.0,
    )
    values.update(overrides)
    return SpeedupStack(**values)


class TestAlgebra:
    def test_base_speedup_eq5(self):
        stack = make_stack()
        assert stack.total_overhead == pytest.approx(2.05)
        assert stack.base_speedup == pytest.approx(4 - 2.05)

    def test_estimated_speedup_eq4(self):
        stack = make_stack()
        assert stack.estimated_speedup == pytest.approx(4 - 2.05 + 0.2)

    def test_net_negative_llc(self):
        stack = make_stack()
        assert stack.net_negative_llc == pytest.approx(0.3)

    def test_segments_sum_to_n(self):
        stack = make_stack()
        assert sum(stack.segments().values()) == pytest.approx(4.0)
        stack.validate_consistency()

    def test_error_eq6(self):
        stack = make_stack(actual_speedup=2.0)
        expected = (stack.estimated_speedup - 2.0) / 4
        assert stack.estimation_error == pytest.approx(expected)

    def test_error_none_without_reference(self):
        assert make_stack().estimation_error is None

    def test_superlinear_possible(self):
        """Positive interference can push the estimate above N when all
        other overheads are small (noted as rare in Section 2)."""
        stack = make_stack(
            negative_llc=0.0, negative_memory=0.0, spinning=0.0,
            yielding=0.0, imbalance=0.0, positive_llc=0.5,
        )
        assert stack.estimated_speedup > 4.0
        assert stack.net_negative_llc < 0


class TestRanking:
    def test_ranked_delimiters_order(self):
        stack = make_stack()
        ranked = stack.ranked_delimiters()
        assert ranked[0][0] == Component.YIELDING
        values = [v for __, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_significance_filter(self):
        stack = make_stack()
        ranked = stack.ranked_delimiters(significance=0.35)
        kept = {comp for comp, __ in ranked}
        assert Component.IMBALANCE not in kept
        assert Component.YIELDING in kept

    def test_delimiters_exclude_base_and_positive(self):
        delimiters = make_stack().delimiters()
        assert Component.BASE_SPEEDUP not in delimiters
        assert Component.POSITIVE_LLC not in delimiters


class TestBuildFromReport:
    def _report(self) -> AccountingReport:
        threads = [
            ThreadComponents(
                thread_id=tid, negative_llc=500.0, negative_memory=250.0,
                positive_llc=100.0, spinning=400.0, yielding=800.0,
                imbalance=float(50 * tid),
            )
            for tid in range(2)
        ]
        return AccountingReport(n_threads=2, tp_cycles=10_000, threads=threads)

    def test_component_normalization(self):
        stack = build_stack("x", self._report())
        # aggregate cycles / Tp
        assert stack.negative_llc == pytest.approx(1000 / 10_000)
        assert stack.imbalance == pytest.approx(50 / 10_000)

    def test_actual_speedup_attached(self):
        stack = build_stack("x", self._report(), ts_cycles=15_000)
        assert stack.actual_speedup == pytest.approx(1.5)
        assert stack.ts_cycles == 15_000

    def test_estimated_matches_report(self):
        report = self._report()
        stack = build_stack("x", report)
        assert stack.estimated_speedup == pytest.approx(
            report.estimated_speedup
        )

    def test_consistency_invariant(self):
        build_stack("x", self._report()).validate_consistency()


class TestPropertyInvariants:
    @settings(max_examples=100, deadline=None)
    @given(UNITS, UNITS, UNITS, UNITS, UNITS, UNITS,
           st.integers(min_value=2, max_value=64))
    def test_segments_always_sum_to_n(
        self, neg, mem, pos, spin, yld, imb, n
    ):
        stack = SpeedupStack(
            name="p", n_threads=n, tp_cycles=1000,
            negative_llc=neg * n, negative_memory=mem * n,
            positive_llc=pos * n, spinning=spin * n, yielding=yld * n,
            imbalance=imb * n,
        )
        assert sum(stack.segments().values()) == pytest.approx(n)

    @settings(max_examples=100, deadline=None)
    @given(UNITS, UNITS, UNITS)
    def test_estimate_decomposition(self, neg, pos, yld):
        """estimated == base + positive, and base == N - overheads."""
        stack = SpeedupStack(
            name="p", n_threads=8, tp_cycles=1000,
            negative_llc=neg, negative_memory=0.0, positive_llc=pos,
            spinning=0.0, yielding=yld, imbalance=0.0,
        )
        assert stack.estimated_speedup == pytest.approx(
            stack.base_speedup + stack.positive_llc
        )
        assert stack.base_speedup == pytest.approx(8 - neg - yld)
