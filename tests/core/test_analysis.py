"""LLC interference analysis (Figures 8 and 9)."""

from __future__ import annotations

import pytest

from repro.config import MB
from repro.core.analysis import (
    LlcInterference,
    LlcSizeSweepPoint,
    expect_monotone_negative,
    llc_interference,
)
from repro.core.stack import SpeedupStack


def stack(neg: float, pos: float) -> SpeedupStack:
    return SpeedupStack(
        name="s", n_threads=16, tp_cycles=1000,
        negative_llc=neg, negative_memory=0, positive_llc=pos,
        spinning=0, yielding=0, imbalance=0,
    )


class TestBreakdown:
    def test_net(self):
        b = LlcInterference("x", negative=1.4, positive=1.0)
        assert b.net == pytest.approx(0.4)

    def test_net_can_be_negative(self):
        """Net < 0: cache sharing is a net win (Figure 9, 16MB point)."""
        b = LlcInterference("x", negative=0.3, positive=1.0)
        assert b.net < 0

    def test_from_stack(self):
        b = llc_interference(stack(neg=2.0, pos=0.5))
        assert b.negative == 2.0
        assert b.positive == 0.5
        assert b.name == "s"

    def test_name_override(self):
        assert llc_interference(stack(1, 0), name="y").name == "y"


class TestSweep:
    def _points(self, negatives, positive=1.0):
        return [
            LlcSizeSweepPoint(
                llc_bytes=(2 ** k) * MB,
                interference=LlcInterference(f"{2**k}MB", neg, positive),
            )
            for k, neg in enumerate(negatives, start=1)
        ]

    def test_monotone_check_accepts_decreasing(self):
        assert expect_monotone_negative(self._points([2.0, 1.2, 0.6, 0.3]))

    def test_monotone_check_rejects_increase(self):
        assert not expect_monotone_negative(self._points([1.0, 2.0, 0.5, 0.2]))

    def test_order_independent(self):
        points = self._points([2.0, 1.0, 0.5, 0.2])
        assert expect_monotone_negative(list(reversed(points)))

    def test_llc_mb(self):
        point = self._points([1.0])[0]
        assert point.llc_mb == pytest.approx(2.0)
