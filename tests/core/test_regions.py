"""Region-based speedup stacks (Section 4.6 refinement)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.core.regions import RegionObserver, run_region_experiment
from repro.workloads.program import BarrierWait, Compute, Load, Program
from repro.workloads.spec import BenchmarkSpec, build_program


def phased_program(n_threads: int, skews: list[list[int]]) -> Program:
    """One barrier per phase; thread t computes skews[phase][t] instrs."""
    def body(tid):
        for phase, work in enumerate(skews):
            yield Compute(work[tid])
            yield Load(0x100_0000 + (tid << 22) + phase * 64)
            yield BarrierWait(phase)

    return Program("phased", [body(t) for t in range(n_threads)])


class TestRegionDetection:
    def test_one_region_per_barrier(self, machine4):
        program = phased_program(4, [[100] * 4, [200] * 4, [300] * 4])
        result = run_region_experiment(machine4, program)
        assert len(result.regions) == 3
        # regions tile the run: contiguous, increasing
        for earlier, later in zip(result.regions, result.regions[1:]):
            assert earlier.end == later.start
        assert result.regions[0].start == 0

    def test_arrivals_recorded_for_every_thread(self, machine4):
        program = phased_program(4, [[100] * 4])
        result = run_region_experiment(machine4, program)
        assert set(result.regions[0].arrivals) == {0, 1, 2, 3}

    def test_no_barriers_no_regions(self, machine4):
        def body(tid):
            yield Compute(500)

        program = Program("flat", [body(t) for t in range(4)])
        result = run_region_experiment(machine4, program)
        assert result.regions == []
        assert result.stacks == []


class TestBarrierImbalance:
    def test_balanced_phase_small_imbalance(self, machine4):
        program = phased_program(4, [[1000] * 4])
        result = run_region_experiment(machine4, program)
        stack = result.stacks[0]
        assert stack.imbalance < 1.0

    def test_skewed_phase_quantified(self, machine4):
        # thread 3 does 10x the work: others wait ~90% of the region
        program = phased_program(4, [[2000, 2000, 2000, 20000]])
        result = run_region_experiment(machine4, program)
        stack = result.stacks[0]
        # 3 threads waiting most of the region: imbalance close to 3
        assert 2.0 < stack.imbalance < 3.2
        # the straggler itself has no barrier wait
        region = result.regions[0]
        waits = [region.barrier_imbalance(t) for t in range(4)]
        assert waits[3] < min(waits[:3])

    def test_imbalance_not_double_counted_as_yield(self, machine4):
        """Across regions, barrier waits show as imbalance, not yield."""
        skews = [[2000, 2000, 2000, 20000]] * 3
        program = phased_program(4, skews)
        result = run_region_experiment(machine4, program)
        for stack in result.stacks[1:]:
            # each region's yield must be far below its imbalance: the
            # wait is attributed once
            assert stack.yielding < 0.5 * stack.imbalance

    def test_rotating_straggler(self, machine4):
        """The slow thread changes per phase; each region blames the
        right one."""
        skews = [
            [20000, 2000, 2000, 2000],
            [2000, 20000, 2000, 2000],
        ]
        program = phased_program(4, skews)
        result = run_region_experiment(machine4, program)
        region0, region1 = result.regions
        assert region0.barrier_imbalance(0) < region0.barrier_imbalance(1)
        assert region1.barrier_imbalance(1) < region1.barrier_imbalance(0)


class TestRegionStacks:
    def test_stacks_consistent(self, machine4):
        spec = BenchmarkSpec(
            name="r", total_kinstrs=60, mem_per_kinstr=60, private_ws_kb=16,
            n_phases=4, imbalance=0.5, par_overhead=0.0,
        )
        result = run_region_experiment(machine4, build_program(spec, 4))
        assert len(result.stacks) == 4  # 3 inter-phase + final barrier
        for stack in result.stacks:
            stack.validate_consistency()
            assert stack.base_speedup > 0

    def test_observer_standalone(self):
        """The observer's bookkeeping works without an engine."""
        from repro.accounting.accountant import CycleAccountant

        machine = MachineConfig(n_cores=2)
        observer = RegionObserver(CycleAccountant(machine), 2)
        observer.on_arrival(0, 0, 100)
        observer.on_arrival(0, 1, 400)
        observer.on_release(0, 420)
        region = observer.regions[0]
        assert region.duration == 420
        assert region.barrier_imbalance(0) == 320
        assert region.barrier_imbalance(1) == 20
        assert region.barrier_imbalance(9) == 0  # unknown thread
