"""Component enum and stacking order."""

from __future__ import annotations

from repro.core.components import Component, STACK_ORDER, TREE_LABELS


class TestComponents:
    def test_all_components_in_stack_order(self):
        assert set(STACK_ORDER) == set(Component)

    def test_base_is_bottom(self):
        assert STACK_ORDER[0] == Component.BASE_SPEEDUP

    def test_positive_above_base(self):
        """Actual speedup = base + positive, so positive sits directly
        on top of base (Figure 2)."""
        assert STACK_ORDER[1] == Component.POSITIVE_LLC

    def test_delimiter_flags(self):
        assert not Component.BASE_SPEEDUP.is_delimiter
        assert not Component.POSITIVE_LLC.is_delimiter
        assert Component.YIELDING.is_delimiter
        assert Component.NET_NEGATIVE_LLC.is_delimiter

    def test_labels_unique(self):
        labels = [comp.label for comp in Component]
        assert len(set(labels)) == len(labels)

    def test_tree_labels_match_figure6(self):
        """The paper's tree calls LLC interference 'cache' and memory
        subsystem interference 'memory'."""
        assert TREE_LABELS[Component.NET_NEGATIVE_LLC] == "cache"
        assert TREE_LABELS[Component.NEGATIVE_MEMORY] == "memory"
        assert TREE_LABELS[Component.SPINNING] == "spinning"
        assert TREE_LABELS[Component.YIELDING] == "yielding"

    def test_string_enum_round_trip(self):
        assert Component("yielding") is Component.YIELDING
