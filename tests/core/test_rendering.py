"""Text renderers: every figure renderer produces sane output."""

from __future__ import annotations

from repro.core.analysis import LlcInterference
from repro.core.classification import ClassificationTree, classify_stack
from repro.core.rendering import (
    render_interference,
    render_speedup_curve,
    render_stack,
    render_stack_series,
    render_tree,
    render_validation_table,
)
from repro.core.stack import SpeedupStack
from repro.core.validation import ValidationRow


def stack(name="bench", n=16, actual=None) -> SpeedupStack:
    return SpeedupStack(
        name=name, n_threads=n, tp_cycles=1000,
        negative_llc=1.2, negative_memory=0.8, positive_llc=0.4,
        spinning=0.6, yielding=3.0, imbalance=0.2,
        actual_speedup=actual,
    )


class TestRenderStack:
    def test_contains_all_significant_components(self):
        text = render_stack(stack(actual=9.5))
        assert "base speedup" in text
        assert "yielding" in text
        assert "net negative LLC interference" in text
        assert "actual speedup" in text
        assert "error" in text

    def test_without_reference(self):
        text = render_stack(stack())
        assert "estimated speedup" in text
        assert "actual" not in text

    def test_zero_components_hidden(self):
        zero = SpeedupStack(
            name="z", n_threads=4, tp_cycles=10,
            negative_llc=0, negative_memory=0, positive_llc=0,
            spinning=0, yielding=0, imbalance=0,
        )
        text = render_stack(zero)
        assert "spinning" not in text
        assert "base speedup" in text


class TestRenderSeries:
    def test_columns_per_stack(self):
        stacks = [stack(n=2), stack(n=4), stack(n=8)]
        text = render_stack_series(stacks, title="demo")
        assert text.startswith("demo")
        header = text.splitlines()[2]
        assert "2" in header and "4" in header and "8" in header


class TestRenderCurve:
    def test_curve_rows(self):
        text = render_speedup_curve(
            {"bench": {1: 1.0, 2: 1.9, 4: 3.5, 8: 6.0}}
        )
        assert "bench" in text
        assert "8 threads" in text
        lines = [l for l in text.splitlines() if "threads" in l]
        assert len(lines) == 4


class TestRenderValidation:
    def test_table(self):
        rows = [ValidationRow("a", 16, 5.0, 5.4), ValidationRow("b", 2, 1.5, 1.4)]
        text = render_validation_table(rows)
        assert "benchmark" in text
        assert "a" in text and "b" in text
        assert "%" in text


class TestRenderTree:
    def test_tree_blanks_repeated_prefixes(self):
        tree = ClassificationTree()
        tree.add(classify_stack(stack("one", actual=6.0)))
        tree.add(classify_stack(stack("two", actual=6.5)))
        text = render_tree(tree)
        # "moderate" appears once as a class label (plus header word no)
        body = text.splitlines()[1:]
        count = sum(1 for line in body if line.startswith("moderate"))
        assert count == 1
        assert "one" in text and "two" in text


class TestRenderInterference:
    def test_bars(self):
        text = render_interference([
            LlcInterference("cholesky", 1.4, 1.0),
            LlcInterference("needle", 0.3, 0.9),
        ])
        assert "cholesky" in text
        assert "neg cache interference" in text
        assert "net interference" in text
        # needle's net is negative: rendered with a sign marker
        assert "-" in text
