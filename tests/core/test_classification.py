"""Figure 6 classification: scaling classes and the tree."""

from __future__ import annotations

import pytest

from repro.core.classification import (
    ClassificationTree,
    ClassifiedBenchmark,
    classify_stack,
    scaling_class,
)
from repro.core.stack import SpeedupStack


def stack(name="b", yielding=0.0, spinning=0.0, neg_llc=0.0, mem=0.0,
          positive=0.0, imbalance=0.0, actual=None) -> SpeedupStack:
    return SpeedupStack(
        name=name, n_threads=16, tp_cycles=1000,
        negative_llc=neg_llc, negative_memory=mem, positive_llc=positive,
        spinning=spinning, yielding=yielding, imbalance=imbalance,
        actual_speedup=actual,
    )


class TestScalingClass:
    def test_paper_thresholds(self):
        assert scaling_class(10.0) == "good"
        assert scaling_class(15.9) == "good"
        assert scaling_class(9.99) == "moderate"
        assert scaling_class(5.0) == "moderate"
        assert scaling_class(4.99) == "poor"
        assert scaling_class(1.0) == "poor"


class TestClassifyStack:
    def test_ranked_labels(self):
        leaf = classify_stack(
            stack(yielding=4.0, mem=2.0, neg_llc=1.0, actual=5.5),
            suite="parsec",
        )
        assert leaf.scaling == "moderate"
        assert leaf.top_components == ("yielding", "memory", "cache")
        assert leaf.suite == "parsec"

    def test_insignificant_components_dropped(self):
        leaf = classify_stack(stack(yielding=4.0, mem=0.1, actual=5.5))
        assert leaf.top_components == ("yielding",)

    def test_perfect_scaler_has_no_components(self):
        leaf = classify_stack(stack(actual=15.8))
        assert leaf.scaling == "good"
        assert leaf.top_components == ()

    def test_imbalance_excluded_from_tree(self):
        leaf = classify_stack(stack(imbalance=5.0, yielding=1.0, actual=8.0))
        assert "imbalance" not in leaf.top_components

    def test_falls_back_to_estimate_without_reference(self):
        leaf = classify_stack(stack(yielding=12.0))
        assert leaf.speedup == pytest.approx(4.0)
        assert leaf.scaling == "poor"

    def test_path_padded(self):
        leaf = classify_stack(stack(yielding=4.0, actual=6.0))
        assert leaf.path == ("moderate", "yielding", "", "")


class TestTree:
    def _tree(self) -> ClassificationTree:
        tree = ClassificationTree()
        tree.add(classify_stack(stack("a", actual=15.0)))
        tree.add(classify_stack(stack("b", yielding=6.0, actual=6.0)))
        tree.add(classify_stack(stack("c", yielding=8.0, mem=2.0, actual=4.0)))
        tree.add(classify_stack(stack("d", spinning=7.0, actual=5.5)))
        return tree

    def test_by_class(self):
        grouped = self._tree().by_class()
        assert {leaf.name for leaf in grouped["good"]} == {"a"}
        assert {leaf.name for leaf in grouped["moderate"]} == {"b", "d"}
        assert {leaf.name for leaf in grouped["poor"]} == {"c"}

    def test_sorted_order_good_first(self):
        ordered = self._tree().sorted_leaves()
        assert ordered[0].name == "a"
        assert ordered[-1].scaling == "poor"

    def test_dominant_counts(self):
        counts = self._tree().dominant_component_counts()
        assert counts == {"yielding": 2, "spinning": 1}
        assert self._tree().count_with_dominant("yielding") == 2
        assert self._tree().count_with_dominant("cache") == 0
