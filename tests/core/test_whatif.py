"""What-if projection of bottleneck removal."""

from __future__ import annotations

import pytest

from repro.core.components import Component
from repro.core.stack import SpeedupStack
from repro.core.whatif import (
    advice,
    optimization_opportunities,
    project,
    remove_component,
)


def stack(yielding=3.0, spinning=1.0, neg_llc=0.5, positive=0.2,
          actual=5.0) -> SpeedupStack:
    return SpeedupStack(
        name="w", n_threads=16, tp_cycles=1000,
        negative_llc=neg_llc, negative_memory=0.5, positive_llc=positive,
        spinning=spinning, yielding=yielding, imbalance=0.1,
        actual_speedup=actual,
    )


class TestProject:
    def test_full_removal_adds_component(self):
        s = stack()
        result = remove_component(s, Component.YIELDING)
        assert result.gain == pytest.approx(3.0)
        assert result.projected_speedup == pytest.approx(8.0)

    def test_partial_reduction(self):
        result = project(stack(), {Component.YIELDING: 0.5})
        assert result.gain == pytest.approx(1.5)

    def test_combined_reductions(self):
        result = project(
            stack(), {Component.YIELDING: 1.0, Component.SPINNING: 1.0}
        )
        assert result.gain == pytest.approx(4.0)

    def test_capped_at_n(self):
        s = stack(yielding=14.0, actual=1.5)
        result = remove_component(s, Component.YIELDING)
        assert result.projected_speedup == 15.5

        s2 = stack(yielding=15.0, actual=2.0)
        result = remove_component(s2, Component.YIELDING)
        assert result.projected_speedup == 16.0

    def test_net_negative_llc_uses_net_value(self):
        s = stack(neg_llc=1.0, positive=0.4)
        result = remove_component(s, Component.NET_NEGATIVE_LLC)
        assert result.gain == pytest.approx(0.6)

    def test_baseline_falls_back_to_estimate(self):
        s = stack(actual=None)
        result = remove_component(s, Component.YIELDING)
        assert result.baseline_speedup == pytest.approx(s.estimated_speedup)

    def test_invalid_component_rejected(self):
        with pytest.raises(ValueError):
            project(stack(), {Component.BASE_SPEEDUP: 1.0})

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            project(stack(), {Component.YIELDING: 1.5})

    def test_relative_gain(self):
        result = remove_component(stack(), Component.YIELDING)
        assert result.relative_gain == pytest.approx(3.0 / 5.0)


class TestOpportunities:
    def test_ranked_by_gain(self):
        ranked = optimization_opportunities(stack())
        gains = [o.gain for o in ranked]
        assert gains == sorted(gains, reverse=True)
        assert ranked[0].component == Component.YIELDING

    def test_significance_filters_noise(self):
        ranked = optimization_opportunities(stack(), significance=2.0)
        assert [o.component for o in ranked] == [Component.YIELDING]

    def test_perfect_scaler_empty(self):
        s = SpeedupStack(
            name="p", n_threads=16, tp_cycles=100,
            negative_llc=0, negative_memory=0, positive_llc=0,
            spinning=0, yielding=0, imbalance=0, actual_speedup=15.8,
        )
        assert optimization_opportunities(s) == []


class TestAdvice:
    def test_bottleneck_named(self):
        text = advice(stack())
        assert "yielding" in text
        assert "8.00x" in text  # projected

    def test_clean_scaler(self):
        s = SpeedupStack(
            name="clean", n_threads=16, tp_cycles=100,
            negative_llc=0, negative_memory=0, positive_llc=0,
            spinning=0, yielding=0, imbalance=0, actual_speedup=15.8,
        )
        assert "no significant scaling bottleneck" in advice(s)

    def test_every_component_has_a_hint(self):
        for comp in (Component.SPINNING, Component.NET_NEGATIVE_LLC,
                     Component.NEGATIVE_MEMORY, Component.IMBALANCE,
                     Component.COHERENCY):
            kwargs = dict(yielding=0.0, spinning=0.0, neg_llc=0.0)
            s = SpeedupStack(
                name="h", n_threads=16, tp_cycles=1000,
                negative_llc=3.0 if comp == Component.NET_NEGATIVE_LLC else 0,
                negative_memory=3.0 if comp == Component.NEGATIVE_MEMORY else 0,
                positive_llc=0.0,
                spinning=3.0 if comp == Component.SPINNING else 0,
                yielding=0.0,
                imbalance=3.0 if comp == Component.IMBALANCE else 0,
                coherency=3.0 if comp == Component.COHERENCY else 0,
                actual_speedup=10.0,
            )
            assert comp.label in advice(s)
