"""Per-core CPI stacks."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.core.cpi import CpiStack, cpi_stacks, render_cpi_stacks
from repro.sim.engine import simulate

from tests.conftest import compute_only_program, lock_step_program


class TestCpiStacks:
    def test_compute_bound_cpi_near_base(self, machine4):
        result = simulate(machine4, compute_only_program(4))
        stacks = cpi_stacks(result)
        for stack in stacks:
            assert stack.base == pytest.approx(0.25)  # 4-wide
            assert stack.cpi == pytest.approx(0.25, abs=0.05)

    def test_idle_core_zeroed(self, machine4):
        result = simulate(machine4, compute_only_program(2))
        stacks = cpi_stacks(result)
        assert stacks[2].instrs == 0
        assert stacks[2].total == 0.0

    def test_lock_program_shows_idle(self, machine4):
        result = simulate(machine4, lock_step_program(4, iters=40))
        stacks = cpi_stacks(result)
        # blocked threads leave their cores idle
        assert any(s.idle > 0 for s in stacks)

    def test_components_sum(self, machine4):
        result = simulate(machine4, lock_step_program(4))
        for stack in cpi_stacks(result):
            assert stack.total == pytest.approx(
                sum(stack.components().values())
            )
            assert stack.cpi <= stack.total

    def test_memory_component_from_dram(self):
        from repro.workloads.program import Compute, Load, Program

        def body(tid):
            for k in range(200):
                yield Compute(10)
                # fresh line every time: steady DRAM misses
                yield Load(0x100_0000 + (tid << 24) + k * 4096,
                           overlappable=False)

        machine = MachineConfig(n_cores=2)
        result = simulate(machine, Program("m", [body(0), body(1)]))
        stacks = cpi_stacks(result)
        assert stacks[0].memory > stacks[0].base


class TestRendering:
    def test_table(self, machine4):
        result = simulate(machine4, lock_step_program(4))
        text = render_cpi_stacks(cpi_stacks(result))
        lines = text.splitlines()
        assert len(lines) == 5
        assert "memory" in lines[0]
        assert "idle" in lines[0]
