"""Journal concurrency guarantees under parallel execution.

Two properties keep the journal sound when cells run on worker
processes:

1. every write goes through the parent — a :class:`SweepJournal` hard
   refuses to ``save()`` from any process other than the one that
   created it, so a worker cannot race the parent on the file;
2. the parent serializes appends — after *every* record the on-disk
   journal is one complete, parseable JSON document with fully-formed
   cell records (two completing cells can never interleave).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.experiments.runner import RunPolicy
from repro.parallel import cells_from_sweep, run_parallel_sweep
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

OK_RECORD_KEYS = {"status", "attempts", "total_cycles", "truncated"}
FAILED_RECORD_KEYS = {"status", "attempts", "error", "error_type", "snapshot"}


def _save_in_child(journal, queue):
    try:
        journal.record_ok("smuggled", 2, attempts=1, total_cycles=1)
    except RuntimeError as exc:
        queue.put(str(exc))
    else:
        queue.put(None)


def test_journal_refuses_foreign_process_writes(tmp_path):
    journal = SweepJournal(str(tmp_path / "journal.json"))
    journal.record_ok("own", 2, attempts=1, total_cycles=10)

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    child = ctx.Process(target=_save_in_child, args=(journal, queue))
    child.start()
    error = queue.get(timeout=30)
    child.join(timeout=30)
    assert error is not None and "owning (parent) process" in error
    # the smuggled record never reached the file
    cells = json.loads((tmp_path / "journal.json").read_text())["cells"]
    assert list(cells) == ["own:2"]


def test_journal_same_process_writes_still_work(tmp_path):
    journal = SweepJournal(str(tmp_path / "journal.json"))
    journal.record_ok("a", 2, attempts=1, total_cycles=5)
    journal.record_failure("b", 4, attempts=2, error="x", error_type="E")
    assert journal.completed("a", 2)
    assert journal.failed_keys == ["b:4"]


class _SnapshottingJournal(SweepJournal):
    """Journal that snapshots the on-disk bytes after every save."""

    def __init__(self, path):
        self.disk_states = []
        super().__init__(path)

    def save(self):
        super().save()
        with open(self.path, "rb") as handle:
            self.disk_states.append(handle.read())


def test_parallel_journal_states_never_interleave(tmp_path):
    """After each of N cells completes, the journal on disk is a
    complete JSON document whose records all have every field — no
    torn or interleaved writes at any intermediate point."""
    cells = sweep_cells(("cholesky", "blackscholes_small"), (2, 4))
    journal = _SnapshottingJournal(str(tmp_path / "journal.json"))
    run_parallel_sweep(
        cells_from_sweep(cells, scale=0.2),
        jobs=2,
        policy=RunPolicy(on_error="skip", max_cycles=2_000_000),
        journal=journal,
    )
    assert len(journal.disk_states) == len(cells)
    for step, state in enumerate(journal.disk_states, start=1):
        doc = json.loads(state)  # parse failure == torn write
        assert len(doc["cells"]) == step
        for key, record in doc["cells"].items():
            expected = (
                OK_RECORD_KEYS if record["status"] == "ok"
                else FAILED_RECORD_KEYS
            )
            assert set(record) == expected, (step, key)


def test_worker_processes_never_touch_the_journal_file(tmp_path):
    """The journal file is created by the parent only: a journal-less
    parallel sweep leaves the directory empty."""
    cells = sweep_cells(("cholesky",), (2,))
    before = set(os.listdir(tmp_path))
    run_parallel_sweep(
        cells_from_sweep(cells, scale=0.2),
        jobs=2,
        policy=RunPolicy(on_error="skip", max_cycles=2_000_000),
        journal=SweepJournal(None),
    )
    assert set(os.listdir(tmp_path)) == before
