"""Warm-worker cache correctness and crash-mid-chunk recovery.

The warm caches in :mod:`repro.parallel.worker` only earn their keep if
they are *invisible*: a worker that has already run other benchmarks
and other machines must produce exactly the result a cold worker
produces.  These tests run warm/cold differentials in-process (same
cache instance the pool workers use), then exercise the spill protocol
end to end: a worker killed mid-chunk must lose only its in-flight
cell — completed cells are journaled from the spill, never re-executed.
"""

from __future__ import annotations

import json

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import BatchRunner, RunPolicy
from repro.observability.metrics import MetricsRegistry
from repro.parallel import (
    WORKER_CRASH,
    ChunkingPolicy,
    cells_from_sweep,
    reset_worker_caches,
    run_cell_task,
    run_parallel_sweep,
    worker_caches,
)
from repro.parallel.transport import read_spill
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

POLICY = RunPolicy(on_error="skip", max_cycles=2_000_000)
SCALE = 0.2

#: an LLC half the default size: different stacks, so cross-machine
#: cache bleed would be loud
SMALL_LLC = MachineConfig().with_llc_size(1024 * 1024)


@pytest.fixture(autouse=True)
def cold_caches():
    """Every test starts and ends with cold process-wide caches."""
    reset_worker_caches()
    yield
    reset_worker_caches()


def _cold_run(cell):
    reset_worker_caches()
    return run_cell_task(cell, POLICY)


def test_warm_worker_mixed_benchmarks_match_cold():
    """A worker that has run other benchmarks produces byte-identical
    results for the next one: the ST-reference memo and trace decode it
    warmed up must key on the benchmark, not leak across it."""
    cells = cells_from_sweep(
        sweep_cells(("cholesky", "blackscholes_small"), (2, 4)),
        scale=SCALE,
    )
    cold = [_cold_run(cell) for cell in cells]
    reset_worker_caches()
    warm = [run_cell_task(cell, POLICY) for cell in cells]
    assert warm == cold
    # the warm pass really did share one runner across all four cells
    assert len(worker_caches()._runners) == 1


def test_warm_worker_mixed_machines_match_cold():
    """Two machines interleaved through one worker stay isolated: the
    runner cache keys on machine_json, so the small-LLC cell can never
    see the default machine's warm cache arrays (or vice versa)."""
    sweep = sweep_cells(("cholesky",), (2,))
    default_cell = cells_from_sweep(sweep, scale=SCALE)[0]
    small_cell = cells_from_sweep(sweep, scale=SCALE, machine=SMALL_LLC)[0]
    cold_default = _cold_run(default_cell)
    cold_small = _cold_run(small_cell)
    # a smaller LLC must actually change the result, or this test
    # could not detect bleed at all
    assert cold_small.stack != cold_default.stack
    reset_worker_caches()
    interleaved = [
        run_cell_task(default_cell, POLICY),
        run_cell_task(small_cell, POLICY),
        run_cell_task(default_cell, POLICY),
    ]
    assert interleaved[0] == cold_default
    assert interleaved[1] == cold_small
    assert interleaved[2] == cold_default
    assert len(worker_caches()._runners) == 2


def test_crash_mid_chunk_spills_completed_cells(tmp_path, monkeypatch):
    """Kill a worker halfway through a whole-sweep chunk: every cell it
    completed before dying is recovered from the spill (journaled, not
    re-executed), only the in-flight victim fails, and the cells behind
    it requeue and finish."""
    benchmarks = ("cholesky", "blackscholes_small", "facesim_small")
    sweep = sweep_cells(benchmarks, (2, 4))
    serial_journal = tmp_path / "serial.json"
    # both sides collect metrics (they become journal entries, so the
    # byte comparison needs them on the serial side too)
    serial_report = BatchRunner(
        policy=POLICY, scale=SCALE,
        journal=SweepJournal(str(serial_journal)),
        metrics=MetricsRegistry(),
    ).run_sweep(sweep)
    assert not serial_report.failures

    # sweep order is benchmark-major: the victim at index 3 leaves three
    # completed cells in the spill and two more queued behind it
    victim = "blackscholes_small:4"
    assert [f"{s.full_name}:{n}" for s, n in sweep][3] == victim
    monkeypatch.setenv("REPRO_TEST_KILL_CELL", victim)
    journal = tmp_path / "journal.json"
    metrics = MetricsRegistry()
    crashed = run_parallel_sweep(
        cells_from_sweep(sweep, scale=SCALE),
        jobs=2,
        policy=POLICY,
        journal=SweepJournal(str(journal)),
        metrics=metrics,
        chunking=ChunkingPolicy(chunk_cells=len(sweep)),
    )
    assert [o.key for o in crashed.failures] == [victim]
    assert crashed.failures[0].error_type == WORKER_CRASH
    assert len(crashed.completed) == len(sweep) - 1
    # the three pre-victim cells came back via the spill, not a re-run
    assert metrics.counter("runtime.cells_recovered_from_spill").value == 3

    monkeypatch.delenv("REPRO_TEST_KILL_CELL")
    resumed = run_parallel_sweep(
        cells_from_sweep(sweep, scale=SCALE),
        jobs=2,
        policy=POLICY,
        journal=SweepJournal(str(journal)),
        resume=True,
        metrics=MetricsRegistry(),
        chunking=ChunkingPolicy(chunk_cells=len(sweep)),
    )
    statuses = {o.key: o.status for o in resumed.outcomes}
    assert statuses.pop(victim) == "ok"
    assert set(statuses.values()) == {"resumed"}
    assert journal.read_bytes() == serial_journal.read_bytes()


def test_spilled_cells_not_reexecuted(tmp_path, monkeypatch):
    """The over-retry regression: completed cells of a crashed chunk
    must be journaled from the spill with their original attempt
    counts — not re-run (which would also double any side effects)."""
    sweep = sweep_cells(("cholesky", "facesim_small"), (2, 4))
    victim = f"{sweep[-1][0].full_name}:{sweep[-1][1]}"
    monkeypatch.setenv("REPRO_TEST_KILL_CELL", victim)
    metrics = MetricsRegistry()
    report = run_parallel_sweep(
        cells_from_sweep(sweep, scale=SCALE),
        jobs=1,
        policy=POLICY,
        journal=SweepJournal(str(tmp_path / "journal.json")),
        metrics=metrics,
        chunking=ChunkingPolicy(chunk_cells=len(sweep)),
    )
    # all three survivors recovered from the spill of the single chunk:
    # with chunk_cells=len(sweep) nothing was left to requeue, so a
    # re-execution would have left this counter below 3
    assert metrics.counter("runtime.cells_recovered_from_spill").value == 3
    assert metrics.counter("runtime.cells_ok").value == 3
    assert [o.key for o in report.failures] == [victim]
    assert all(o.attempts == 1 for o in report.completed)


def test_read_spill_tolerates_torn_lines(tmp_path):
    """A worker killed mid-write leaves a truncated last line; recovery
    keeps every complete line and drops the torn one."""
    cells = cells_from_sweep(sweep_cells(("cholesky",), (2,)), scale=SCALE)
    result = run_cell_task(cells[0], POLICY)
    spill = tmp_path / "chunk.jsonl"
    with open(spill, "w") as handle:
        from repro.parallel.transport import append_spill

        append_spill(handle, 0, result)
        full_line = json.dumps({"index": 1, "result": {"name": "x"}})
        handle.write(full_line[: len(full_line) // 2])  # torn mid-write
    recovered = read_spill(str(spill))
    assert list(recovered) == [0]
    assert recovered[0] == result


def test_read_spill_missing_file(tmp_path):
    assert read_spill(str(tmp_path / "nope.jsonl")) == {}
