"""Differential tests: parallel sweeps must be indistinguishable from serial.

The contract of ``repro.parallel`` is *bit-for-bit* equivalence with the
serial :class:`~repro.experiments.runner.BatchRunner` path at any
``--jobs`` level **and any chunk shape**: identical speedup-stack
components (the Eq. 4 decomposition), identical Eq. 4 / Eq. 6 scalar
metrics, and byte-identical journal files — healthy, under injected
faults, and across a worker kill + ``--resume`` cycle.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import BatchRunner, RunPolicy
from repro.parallel import (
    WORKER_CRASH,
    CellSpec,
    ChunkingPolicy,
    cells_from_sweep,
    run_parallel_sweep,
)
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

#: 6-cell sweep: three benchmarks at two thread counts, scaled down so
#: each full sweep stays in the single-second range
BENCHMARKS = ("cholesky", "blackscholes_small", "facesim_small")
THREADS = (2, 4)
SCALE = 0.2
POLICY = RunPolicy(on_error="skip", max_cycles=2_000_000)

FAULT_PLAN = {"cholesky:2": "deadlock", "blackscholes_small:2": "mem-spike"}

#: the chunk shapes each differential sweep is repeated under:
#: single-cell chunks (maximum dispatch overhead, the old one-task-per-
#: cell behaviour), 3-cell chunks (uneven split of the 6-cell sweep),
#: one whole-sweep chunk (a single worker runs everything warm), and
#: the default adaptive plan
CHUNK_SHAPES = (1, 3, len(BENCHMARKS) * len(THREADS), None)


def _cells():
    return sweep_cells(BENCHMARKS, THREADS)


def _serial(journal_path, fault_plan=None):
    runner = BatchRunner(
        policy=POLICY, scale=SCALE,
        journal=SweepJournal(str(journal_path)),
        fault_plan=dict(fault_plan or {}),
    )
    return runner.run_sweep(_cells())


def _parallel(
    journal_path, jobs, fault_plan=None, resume=False, chunk_cells=None
):
    return run_parallel_sweep(
        cells_from_sweep(_cells(), scale=SCALE,
                         fault_kinds=dict(fault_plan or {})),
        jobs=jobs,
        policy=POLICY,
        journal=SweepJournal(str(journal_path)),
        resume=resume,
        chunking=(
            ChunkingPolicy(chunk_cells=chunk_cells)
            if chunk_cells is not None else None
        ),
    )


def _assert_equivalent(serial_report, parallel_report):
    """Every observable of every cell must match exactly (no tolerance:
    both sides are integer-cycle deterministic)."""
    assert (
        [(o.key, o.status) for o in serial_report.outcomes]
        == [(o.key, o.status) for o in parallel_report.outcomes]
    )
    for ser, par in zip(serial_report.outcomes, parallel_report.outcomes):
        if ser.status == "ok":
            s_res, p_res = ser.result, par.result
            # full Eq. 4 decomposition: SpeedupStack is a frozen
            # dataclass, == compares every component field
            assert s_res.stack == p_res.stack, ser.key
            assert s_res.stack.segments() == p_res.stack.segments()
            # Eq. 4 estimate and Eq. 6 estimation error
            assert s_res.stack.estimated_speedup == p_res.stack.estimated_speedup
            assert s_res.stack.actual_speedup == p_res.stack.actual_speedup
            assert s_res.stack.estimation_error == p_res.stack.estimation_error
            # Section 6 instruction-overhead proxy
            assert (s_res.parallelization_overhead
                    == p_res.parallelization_overhead), ser.key
            # the per-thread accounting behind the stack
            assert (s_res.report.component_totals()
                    == p_res.report.component_totals()), ser.key
        else:
            assert ser.error == par.error, ser.key
            assert ser.error_type == par.error_type, ser.key
            assert ser.attempts == par.attempts, ser.key


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("serial") / "journal.json"
    report = _serial(path)
    return report, path.read_bytes()


@pytest.mark.parametrize("chunk_cells", CHUNK_SHAPES)
@pytest.mark.parametrize("jobs", [2, 4])
def test_differential_healthy(serial_run, tmp_path, jobs, chunk_cells):
    serial_report, serial_journal = serial_run
    journal = tmp_path / "journal.json"
    parallel_report = _parallel(journal, jobs=jobs, chunk_cells=chunk_cells)
    _assert_equivalent(serial_report, parallel_report)
    assert journal.read_bytes() == serial_journal


@pytest.mark.parametrize("chunk_cells", CHUNK_SHAPES)
def test_differential_with_faults(tmp_path, chunk_cells):
    """Fault-injected cells fail identically in both execution modes,
    and the healthy cells around them are untouched — chunking must not
    leak a fault into the other cells sharing the chunk's worker."""
    s_journal = tmp_path / "serial.json"
    p_journal = tmp_path / "parallel.json"
    serial_report = _serial(s_journal, fault_plan=FAULT_PLAN)
    parallel_report = _parallel(
        p_journal, jobs=2, fault_plan=FAULT_PLAN, chunk_cells=chunk_cells
    )
    assert [o.key for o in serial_report.failures] == ["cholesky:2"]
    assert serial_report.failures[0].error_type == "DeadlockError"
    # mem-spike degrades but does not fail the cell
    assert {o.key for o in serial_report.completed} >= {
        "blackscholes_small:2"
    }
    _assert_equivalent(serial_report, parallel_report)
    assert p_journal.read_bytes() == s_journal.read_bytes()


def test_worker_kill_then_resume(serial_run, tmp_path, monkeypatch):
    """A hard worker death fails exactly the victim cell; ``--resume``
    re-runs only that cell and converges on the serial journal bytes."""
    serial_report, serial_journal = serial_run
    journal = tmp_path / "journal.json"
    victim = "facesim_small:4"
    monkeypatch.setenv("REPRO_TEST_KILL_CELL", victim)
    crashed = _parallel(journal, jobs=2)
    assert [o.key for o in crashed.failures] == [victim]
    assert crashed.failures[0].error_type == WORKER_CRASH
    entry = json.loads(journal.read_text())["cells"][victim]
    assert entry["status"] == "failed"
    assert entry["error_type"] == WORKER_CRASH
    # every non-victim cell survived the pool break
    assert len(crashed.completed) == len(serial_report.outcomes) - 1

    monkeypatch.delenv("REPRO_TEST_KILL_CELL")
    resumed = _parallel(journal, jobs=2, resume=True)
    statuses = {o.key: o.status for o in resumed.outcomes}
    assert statuses.pop(victim) == "ok"
    assert set(statuses.values()) == {"resumed"}
    _assert_equivalent(
        serial_report,
        # splice the resumed victim into the crash run's ok cells for a
        # full-sweep comparison
        _spliced(crashed, resumed, victim),
    )
    # journal dict order is insertion order and record_ok overwrites the
    # victim's entry in place, so the bytes converge on serial's exactly
    assert journal.read_bytes() == serial_journal


def _spliced(crashed, resumed, victim):
    """Crash-run report with the victim's outcome replaced by its
    resumed re-run (same shape as one clean sweep)."""
    from repro.experiments.runner import SweepReport

    fixed = {o.key: o for o in resumed.outcomes if o.status == "ok"}
    report = SweepReport()
    for outcome in crashed.outcomes:
        report.outcomes.append(fixed.get(outcome.key, outcome))
    return report


def test_cellspec_rejects_unknown_fault():
    spec, n_threads = _cells()[0]
    with pytest.raises(ValueError, match="unknown fault kind"):
        CellSpec(spec=spec, n_threads=n_threads, fault="gamma-ray")


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_parallel_sweep([], jobs=0)
