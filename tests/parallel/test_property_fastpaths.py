"""Property tests for the engine fast paths and stack invariants.

The instruction-block fast-forward is a pure wall-clock optimization:
with it on or off, every simulated quantity — cycles, per-thread end
times, instruction counts, and every accounted stack component — must
be bit-identical.  Hypothesis drives both configurations over random
programs; any divergence is an unsound fast path, not noise.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.accounting.accountant import CycleAccountant
from repro.config import MachineConfig
from repro.core.stack import build_stack
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
    YieldCpu,
)
from repro.sim.engine import Simulation

_ACTION = st.sampled_from(
    ["compute", "load", "store", "cs", "barrier", "yield"]
)


@st.composite
def programs(draw):
    """Small random programs mixing compute, memory, locks, barriers
    and yields (the op classes the fast-forward must break on)."""
    n_threads = draw(st.integers(min_value=1, max_value=4))
    actions = draw(st.lists(_ACTION, min_size=1, max_size=10))
    compute_n = draw(st.integers(min_value=1, max_value=300))
    n_lines = draw(st.integers(min_value=1, max_value=32))
    shared = draw(st.booleans())

    def body(tid: int):
        barrier_id = 0
        for index, action in enumerate(actions):
            if action == "compute":
                yield Compute(compute_n)
            elif action == "load":
                base = 0x100_0000 if shared else 0x100_0000 + (tid << 22)
                yield Load(base + (index % n_lines) * 64)
            elif action == "store":
                base = 0x200_0000 if shared else 0x200_0000 + (tid << 22)
                yield Store(base + (index % n_lines) * 64)
            elif action == "cs":
                yield LockAcquire(0)
                yield Compute(40)
                yield Store(0x9000_0000)
                yield LockRelease(0)
            elif action == "barrier":
                yield BarrierWait(barrier_id)
                barrier_id += 1
            elif action == "yield":
                yield YieldCpu()

    def factory() -> Program:
        return Program("fuzz-ff", [body(t) for t in range(n_threads)])

    return factory, n_threads


def _run(factory, n_threads, fast_forward, accounted):
    machine = MachineConfig(n_cores=n_threads)
    if accounted:
        accountant = CycleAccountant(machine)
        sim = Simulation(machine, factory(), accountant,
                         fast_forward=fast_forward)
    else:
        accountant = None
        sim = Simulation(machine, factory(), fast_forward=fast_forward)
    result = sim.run(max_cycles=10**8)
    report = accountant.report(result) if accounted else None
    return result, report


@settings(max_examples=30, deadline=None)
@given(programs())
def test_fast_forward_is_invisible(case):
    """Fast-forward on vs. off: identical cycles, end times, instruction
    counts, and per-core busy cycles."""
    factory, n_threads = case
    on, _ = _run(factory, n_threads, fast_forward=True, accounted=False)
    off, _ = _run(factory, n_threads, fast_forward=False, accounted=False)
    assert on.total_cycles == off.total_cycles
    assert on.thread_end_times == off.thread_end_times
    assert on.total_instrs == off.total_instrs
    assert on.total_spin_instrs == off.total_spin_instrs
    for stats_on, stats_off in zip(on.chip.stats, off.chip.stats):
        assert stats_on.busy_cycles == stats_off.busy_cycles


@settings(max_examples=15, deadline=None)
@given(programs())
def test_fast_forward_preserves_stack_components(case):
    """With the accountant attached, every Eq. 4 component is
    bit-identical under fast-forward."""
    factory, n_threads = case
    _, report_on = _run(factory, n_threads, fast_forward=True,
                        accounted=True)
    _, report_off = _run(factory, n_threads, fast_forward=False,
                         accounted=True)
    assert report_on.component_totals() == report_off.component_totals()
    stack_on = build_stack("fuzz-ff", report_on)
    stack_off = build_stack("fuzz-ff", report_off)
    assert stack_on == stack_off


@settings(max_examples=25, deadline=None)
@given(programs())
def test_stack_invariants(case):
    """Eq. 4 structural invariants on random programs: segments sum to
    N, base > 0, and no overhead segment is negative (net_negative_llc
    folds the positive-LLC credit in, so it alone may go negative)."""
    factory, n_threads = case
    _, report = _run(factory, n_threads, fast_forward=True, accounted=True)
    stack = build_stack("fuzz-ff", report)
    stack.validate_consistency()
    segments = {comp.value: v for comp, v in stack.segments().items()}
    assert abs(sum(segments.values()) - n_threads) < 1e-6
    assert segments["base_speedup"] > 0
    for name, value in segments.items():
        if name in ("base_speedup", "net_negative_llc"):
            continue
        assert value >= 0, (name, value)
    assert stack.estimated_speedup > 0
