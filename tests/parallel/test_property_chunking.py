"""Property tests for the chunk planner.

The chunking layer is the one place the warm-worker dispatcher could
silently break the byte-identical-journal contract: a cell planned into
two chunks would be journaled twice, a dropped cell never, and a
reordering would shuffle journal records.  These properties pin the
planner for *any* cell list and *any* cost estimates, not just the
shapes the differential suite happens to sweep:

* every index appears in exactly one chunk (exact partition);
* concatenating chunks reproduces the input order (canonical order
  survives the merge);
* chunk shape respects the policy (fixed sizes, cell caps, no empties);
* planning is a pure function of its inputs (identical across calls).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ChunkingPolicy,
    cells_from_sweep,
    estimate_cell_cost,
    partition_costs,
    plan_chunks,
)
from repro.workloads.suite import sweep_cells

# costs as the planner sees them: non-negative, occasionally zero
# (synthetic no-op specs) or huge (full-scale cells); NaN/inf excluded —
# estimate_cell_cost cannot produce them from frozen spec fields
costs_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=200,
)

policies = st.one_of(
    st.builds(
        ChunkingPolicy,
        chunk_cells=st.integers(min_value=1, max_value=50),
    ),
    st.builds(
        ChunkingPolicy,
        chunks_per_job=st.integers(min_value=1, max_value=8),
        max_chunk_cells=st.integers(min_value=1, max_value=50),
    ),
)

jobs_values = st.integers(min_value=1, max_value=16)


@settings(max_examples=200, deadline=None)
@given(costs=costs_lists, jobs=jobs_values, policy=policies)
def test_exact_partition_in_order(costs, jobs, policy):
    """Each index lands in exactly one chunk, and flattening the chunks
    reproduces range(n) — the property in-order journal merging needs."""
    chunks = partition_costs(costs, jobs, policy)
    flattened = [index for chunk in chunks for index in chunk]
    assert flattened == list(range(len(costs)))


@settings(max_examples=200, deadline=None)
@given(costs=costs_lists, jobs=jobs_values, policy=policies)
def test_chunk_shapes_respect_policy(costs, jobs, policy):
    chunks = partition_costs(costs, jobs, policy)
    assert all(chunk for chunk in chunks), "no empty chunks"
    if policy.chunk_cells is not None:
        # fixed mode: every chunk full except possibly the last
        assert all(
            len(chunk) == policy.chunk_cells for chunk in chunks[:-1]
        )
        if chunks:
            assert 1 <= len(chunks[-1]) <= policy.chunk_cells
    else:
        assert all(
            len(chunk) <= policy.max_chunk_cells for chunk in chunks
        )


@settings(max_examples=100, deadline=None)
@given(costs=costs_lists, jobs=jobs_values, policy=policies)
def test_planning_is_deterministic(costs, jobs, policy):
    """Same inputs, same plan — across calls and across equal policy
    instances (the planner must not read clocks, pids or dict order)."""
    first = partition_costs(costs, jobs, policy)
    second = partition_costs(list(costs), jobs, ChunkingPolicy(
        chunk_cells=policy.chunk_cells,
        chunks_per_job=policy.chunks_per_job,
        max_chunk_cells=policy.max_chunk_cells,
    ))
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    costs=costs_lists,
    jobs=jobs_values,
    chunks_per_job=st.integers(min_value=1, max_value=8),
)
def test_adaptive_mode_spreads_work(costs, jobs, chunks_per_job):
    """Adaptive chunks never exceed the cost target by more than one
    cell's cost: the greedy cut happens at the first overflow, so chunk
    cost stays under target + the overflowing cell."""
    policy = ChunkingPolicy(chunks_per_job=chunks_per_job)
    chunks = partition_costs(costs, jobs, policy)
    clamped = [max(1.0, c) for c in costs]
    if not clamped:
        assert chunks == []
        return
    target = sum(clamped) / (jobs * chunks_per_job)
    for chunk in chunks:
        chunk_cost = sum(clamped[i] for i in chunk)
        assert chunk_cost <= target + clamped[chunk[-1]] or len(chunk) == 1


def test_plan_chunks_pairs_cells_with_sweep_indices():
    """plan_chunks carries the *original* sweep indices through, so a
    resume-filtered pending list (gaps in the index sequence) still
    merges back into the right journal slots."""
    cells = cells_from_sweep(
        sweep_cells(("cholesky", "facesim_small"), (2, 4)), scale=0.2
    )
    # simulate a resume that already completed sweep indices 1 and 2
    pending = [(i, cell) for i, cell in enumerate(cells) if i not in (1, 2)]
    chunks = plan_chunks(pending, jobs=2, policy=ChunkingPolicy(chunk_cells=1))
    planned = [i for chunk in chunks for i, _ in chunk.cells]
    assert planned == [0, 3]
    assert [chunk.chunk_id for chunk in chunks] == ["c0", "c1"]


def test_plan_chunks_costs_are_estimates_sum():
    cells = cells_from_sweep(sweep_cells(("cholesky",), (2, 4)), scale=0.2)
    pending = list(enumerate(cells))
    (chunk,) = plan_chunks(
        pending, jobs=1, policy=ChunkingPolicy(chunk_cells=2)
    )
    assert chunk.est_cost == pytest.approx(
        sum(estimate_cell_cost(cell) for cell in cells)
    )
    assert chunk.keys == ("cholesky:2", "cholesky:4")


def test_policy_validation():
    with pytest.raises(ValueError):
        ChunkingPolicy(chunk_cells=0)
    with pytest.raises(ValueError):
        ChunkingPolicy(chunks_per_job=0)
    with pytest.raises(ValueError):
        ChunkingPolicy(max_chunk_cells=0)
    with pytest.raises(ValueError):
        partition_costs([1.0], jobs=0)
