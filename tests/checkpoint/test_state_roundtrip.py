"""SimState tree invariants: JSON-stability and load idempotence.

Every ``state_dict()`` tree must (1) survive a JSON encode/decode
unchanged — checkpoints live on disk as JSON — and (2) restore onto a
freshly built simulation such that the restored tree re-serializes to
the same bytes.  These two properties are what make the on-disk format
a faithful projection of the engine.
"""

from __future__ import annotations

import json

from repro.accounting.accountant import CycleAccountant
from repro.config import AccountingConfig, MachineConfig
from repro.sim.engine import Simulation
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

from tests.conftest import lock_step_program

BENCH = "cholesky"
N, SCALE = 4, 0.05


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _accounted_sim(machine, max_cycles=None):
    spec = by_name(BENCH)
    sim = Simulation(
        machine, build_program(spec, N, scale=SCALE),
        CycleAccountant(machine),
    )
    if max_cycles is None:
        result = sim.run()
    else:
        result = sim.run(max_cycles=max_cycles, on_timeout="truncate")
    return sim, result


class TestJsonStability:
    def test_finished_run(self, machine4):
        state = _accounted_sim(machine4)[0].state_dict()
        assert json.loads(canon(state)) == state

    def test_mid_run(self, machine4):
        state = _accounted_sim(machine4, max_cycles=3_000)[0].state_dict()
        assert json.loads(canon(state)) == state

    def test_state_dict_is_pure(self, machine4):
        """Serializing twice yields identical trees — no hidden
        mutation inside state_dict itself."""
        sim, _ = _accounted_sim(machine4, max_cycles=3_000)
        assert canon(sim.state_dict()) == canon(sim.state_dict())


class TestLoadIdempotence:
    def _roundtrip(self, machine):
        sim, _ = _accounted_sim(machine, max_cycles=3_000)
        state = json.loads(canon(sim.state_dict()))
        spec = by_name(BENCH)
        fresh = Simulation(
            machine, build_program(spec, N, scale=SCALE),
            CycleAccountant(machine),
        )
        fresh.load_state_dict(state)
        return canon(state), canon(fresh.state_dict())

    def test_accounted_state(self, machine4):
        saved, restored = self._roundtrip(machine4)
        assert restored == saved

    def test_li_spin_detector_state(self):
        machine = MachineConfig(
            n_cores=4, accounting=AccountingConfig(spin_detector="li"),
        )
        saved, restored = self._roundtrip(machine)
        assert restored == saved

    def test_restored_run_completes(self, machine4):
        """A restored simulation is actually runnable, not just
        re-serializable."""
        sim, _ = _accounted_sim(machine4, max_cycles=3_000)
        _, reference = _accounted_sim(machine4)
        state = json.loads(canon(sim.state_dict()))
        spec = by_name(BENCH)
        fresh = Simulation(
            machine4, build_program(spec, N, scale=SCALE),
            CycleAccountant(machine4),
        )
        fresh.load_state_dict(state)
        result = fresh.run()
        assert result.total_cycles == reference.total_cycles


class TestSyncPrimitiveState:
    def test_locks_and_barriers_roundtrip(self, machine4):
        """Mid-critical-section state (held locks, waiter queues)
        restores exactly."""
        sim = Simulation(machine4, lock_step_program(4, iters=200))
        sim.run(max_cycles=4_000, on_timeout="truncate")
        state = json.loads(canon(sim.state_dict()))
        fresh = Simulation(machine4, lock_step_program(4, iters=200))
        fresh.load_state_dict(state)
        assert canon(fresh.state_dict()) == canon(state)
        assert fresh.sync.state_dict() == sim.sync.state_dict()
