"""CLI surface of checkpointing: --version, stack --checkpoint /
--resume-from, inspect, sweep --checkpoint-dir."""

from __future__ import annotations

import pytest

from repro._version import repro_version
from repro.cli import main

SCALE = ["--scale", "0.05"]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {repro_version()}" in capsys.readouterr().out

    def test_package_dunder_matches(self):
        import repro

        assert repro.__version__ == repro_version()


class TestStackCheckpoint:
    def test_save_inspect_resume_flow(self, capsys, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        assert main(
            ["stack", "cholesky", "-n", "4", "--checkpoint", str(ckpt),
             "--checkpoint-every", "2000"] + SCALE
        ) == 0
        out = capsys.readouterr().out
        assert "speedup stack: cholesky" in out
        assert "checkpoint:" in out and "save(s)" in out
        assert ckpt.exists()

        assert main(["inspect", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint: cholesky n=4" in out
        assert "speedup stack" in out
        assert "TRUNCATED RUN" in out  # mid-run state -> partial stack

        assert main(
            ["stack", "cholesky", "--resume-from", str(ckpt)] + SCALE
        ) == 0
        out = capsys.readouterr().out
        assert "resuming cholesky n=4 from cycle" in out
        assert "speedup stack: cholesky" in out
        assert "[TRUNCATED RUN]" not in out  # the resumed run finished

    def test_checkpoint_every_requires_target(self, capsys):
        assert main(
            ["stack", "cholesky", "--checkpoint-every", "100"] + SCALE
        ) == 2
        assert "--checkpoint-every needs" in capsys.readouterr().err

    def test_resume_from_wrong_benchmark(self, capsys, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        assert main(
            ["stack", "cholesky", "-n", "2", "--checkpoint", str(ckpt),
             "--checkpoint-every", "2000"] + SCALE
        ) == 0
        capsys.readouterr()
        assert main(
            ["stack", "fft", "--resume-from", str(ckpt)] + SCALE
        ) == 2
        err = capsys.readouterr().err
        assert "belongs to cholesky" in err

    def test_resume_from_missing_file(self, capsys, tmp_path):
        assert main(
            ["stack", "cholesky",
             "--resume-from", str(tmp_path / "nope.ckpt")] + SCALE
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestInspect:
    def test_inspect_missing_file(self, capsys, tmp_path):
        assert main(["inspect", str(tmp_path / "nope.ckpt")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_inspect_non_checkpoint(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"some": "json"}\n')
        assert main(["inspect", str(path)]) == 2
        assert "not a repro checkpoint" in capsys.readouterr().err


class TestSweepCheckpointDir:
    def test_truncated_cell_leaves_resumable_checkpoint(
        self, capsys, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpts"
        journal = tmp_path / "j.json"
        assert main(
            ["sweep", "--benchmarks", "cholesky", "-n", "4",
             "--scale", "0.2", "--max-cycles", "10000",
             "--checkpoint-dir", str(ckpt_dir),
             "--journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "[truncated]" in out
        ckpt = ckpt_dir / "cholesky_n4.ckpt"
        assert ckpt.exists()
        # the kept checkpoint is inspectable
        assert main(["inspect", str(ckpt)]) == 0
        assert "cholesky n=4" in capsys.readouterr().out

    def test_clean_sweep_leaves_no_checkpoints(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        assert main(
            ["sweep", "--benchmarks", "cholesky", "-n", "2",
             "--checkpoint-dir", str(ckpt_dir),
             "--checkpoint-every", "2000"] + SCALE
        ) == 0
        capsys.readouterr()
        assert not ckpt_dir.exists() or list(ckpt_dir.iterdir()) == []
