"""Parallel sweeps with cell checkpoints: worker-kill quarantine-resume
and journal byte-equivalence with the serial path.

Checkpoint-enabled parallel sweeps must keep the ``repro.parallel``
contract: journals byte-identical to serial, and a killed worker's cell
heals on ``--resume`` with identical results.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import BatchRunner, RunPolicy
from repro.parallel import WORKER_CRASH, cells_from_sweep, run_parallel_sweep
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

BENCHMARKS = ("cholesky", "blackscholes_small")
THREADS = (2, 4)
SCALE = 0.1
VICTIM = "cholesky:4"


def _policy(tmp_path):
    return RunPolicy(
        on_error="skip",
        max_cycles=2_000_000,
        checkpoint_dir=str(tmp_path / "ckpts"),
        checkpoint_every=2_000,
    )


def _serial(tmp_path, journal_path):
    runner = BatchRunner(
        policy=_policy(tmp_path), scale=SCALE,
        journal=SweepJournal(str(journal_path)),
    )
    return runner.run_sweep(sweep_cells(BENCHMARKS, THREADS))


def _parallel(tmp_path, journal_path, resume=False):
    return run_parallel_sweep(
        cells_from_sweep(sweep_cells(BENCHMARKS, THREADS), scale=SCALE),
        jobs=2,
        policy=_policy(tmp_path),
        journal=SweepJournal(str(journal_path)),
        resume=resume,
    )


def test_checkpointed_parallel_matches_serial_journal(tmp_path):
    s_journal = tmp_path / "serial.json"
    p_journal = tmp_path / "parallel.json"
    serial = _serial(tmp_path / "s", s_journal)
    parallel = _parallel(tmp_path / "p", p_journal)
    assert (
        [(o.key, o.status) for o in serial.outcomes]
        == [(o.key, o.status) for o in parallel.outcomes]
    )
    for ser, par in zip(serial.outcomes, parallel.outcomes):
        assert ser.result.stack == par.result.stack, ser.key
    assert p_journal.read_bytes() == s_journal.read_bytes()


def test_worker_kill_then_checkpoint_resume(tmp_path, monkeypatch):
    """Kill the worker running the victim cell, then ``--resume``: the
    sweep heals and its journal converges byte-for-byte on a clean
    run's."""
    clean_journal = tmp_path / "clean.json"
    _serial(tmp_path / "clean", clean_journal)

    journal = tmp_path / "journal.json"
    monkeypatch.setenv("REPRO_TEST_KILL_CELL", VICTIM)
    crashed = _parallel(tmp_path / "kill", journal)
    assert [o.key for o in crashed.failures] == [VICTIM]
    assert crashed.failures[0].error_type == WORKER_CRASH

    monkeypatch.delenv("REPRO_TEST_KILL_CELL")
    resumed = _parallel(tmp_path / "kill", journal, resume=True)
    statuses = {o.key: o.status for o in resumed.outcomes}
    assert statuses.pop(VICTIM) == "ok"
    assert set(statuses.values()) == {"resumed"}
    assert journal.read_bytes() == clean_journal.read_bytes()


def test_fault_plan_ships_resumable_tuples():
    """Workers receive (kind, seed) fault plans — a checkpoint saved in
    a worker stays resumable because the descriptor can name the fault."""
    cells = cells_from_sweep(
        sweep_cells(("cholesky",), (2,)), scale=SCALE,
        fault_kinds={"cholesky:2": "mem-spike"},
    )
    cell = cells[0]
    assert cell.fault == "mem-spike"
    assert isinstance(cell.fault_seed, int)


def test_unknown_checkpoint_dir_parent_is_created(tmp_path):
    """checkpoint_dir need not pre-exist — the first save creates it."""
    deep = tmp_path / "does" / "not" / "exist"
    policy = RunPolicy(
        on_error="skip", max_cycles=10_000,
        checkpoint_dir=str(deep), checkpoint_every=2_000,
    )
    from repro.workloads.suite import by_name

    BatchRunner(policy=policy, scale=0.2).run_cell(by_name("cholesky"), 4)
    assert (deep / "cholesky_n4.ckpt").exists()


@pytest.mark.parametrize("jobs", [1])
def test_jobs_one_uses_serial_path_with_checkpoints(tmp_path, jobs):
    """--jobs 1 goes through the in-process runner; checkpoint config
    must not break that degenerate case."""
    journal = tmp_path / "j.json"
    report = run_parallel_sweep(
        cells_from_sweep(sweep_cells(("cholesky",), (2,)), scale=SCALE),
        jobs=jobs,
        policy=_policy(tmp_path),
        journal=SweepJournal(str(journal)),
    )
    assert [o.status for o in report.outcomes] == ["ok"]
