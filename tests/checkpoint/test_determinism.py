"""The keystone invariant, locked across every registered policy.

For any checkpoint cycle C: *run-to-completion* and *save-at-C → load
→ continue* must produce byte-identical final state trees, identical
speedup stacks, and identical scalar metrics — for every replacement
policy, DRAM page policy and spin detector, and with an injected
fault replayed on resume.  An armed checkpoint hook must also never
perturb the run it observes.
"""

from __future__ import annotations

import json

import pytest

from repro.accounting.accountant import CycleAccountant
from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    cell_descriptor,
    fault_descriptor,
    resume_simulation,
)
from repro.config import (
    AccountingConfig,
    CacheConfig,
    DramConfig,
    KB,
    MachineConfig,
)
from repro.core.rendering import render_stack
from repro.core.stack import build_stack
from repro.robustness.faults import make_fault
from repro.sim.engine import Simulation
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

BENCH = "cholesky"
N, SCALE = 4, 0.05
MAX_CYCLES = 2_000_000
EVERY = 3_000  # the scale-0.05 cell runs ~6.4k cycles -> 2 saves


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _machine(replacement="lru", page_policy="open", spin_detector="tian"):
    return MachineConfig(
        n_cores=N,
        llc=CacheConfig(
            size_bytes=256 * KB, assoc=8, hit_latency=30,
            hidden_latency=30, replacement=replacement,
        ),
        dram=DramConfig(page_policy=page_policy),
        accounting=AccountingConfig(spin_detector=spin_detector),
    )


def _run(machine, hook=None, fault_kind=None, fault_seed=0):
    """One accounted run of the keystone cell; returns (sim, result)."""
    spec = by_name(BENCH)
    program = build_program(spec, N, scale=SCALE)
    if fault_kind is not None:
        program, machine = make_fault(fault_kind, fault_seed)(
            program, machine
        )
    sim = Simulation(machine, program, CycleAccountant(machine))
    result = sim.run(
        max_cycles=MAX_CYCLES, on_timeout="truncate", checkpoint=hook,
    )
    return sim, result


def _stack_text(sim, result):
    return render_stack(
        build_stack(BENCH, sim.accountant.report(result))
    )


POLICY_MATRIX = [
    ("lru", "open", "tian"),
    ("lru", "closed", "li"),
    ("fifo", "open", "li"),
    ("fifo", "closed", "tian"),
    ("random", "open", "tian"),
    ("random", "closed", "li"),
]


@pytest.mark.parametrize(
    "replacement,page_policy,spin_detector", POLICY_MATRIX
)
def test_keystone_across_policies(
    tmp_path, replacement, page_policy, spin_detector
):
    machine = _machine(replacement, page_policy, spin_detector)
    clean_sim, clean_result = _run(machine)
    clean_state = canon(clean_sim.state_dict())

    descriptor = cell_descriptor(
        machine, BENCH, N, SCALE, max_cycles=MAX_CYCLES
    )
    hook = CheckpointHook(
        tmp_path / "cell.ckpt", descriptor,
        CheckpointPolicy(every_cycles=EVERY),
    )
    observed_sim, observed_result = _run(machine, hook=hook)
    assert hook.n_saves >= 1
    # an armed hook never perturbs the run it observes
    assert canon(observed_sim.state_dict()) == clean_state
    assert observed_result.total_cycles == clean_result.total_cycles

    # the file holds a mid-run save; loading and continuing must land
    # on the very same final state, stack, and metrics
    resumed_sim, header = resume_simulation(
        hook.path, expected_descriptor=descriptor
    )
    assert 0 < header["cycle"] < clean_result.total_cycles
    resumed_result = resumed_sim.run(
        max_cycles=MAX_CYCLES, on_timeout="truncate"
    )
    assert canon(resumed_sim.state_dict()) == clean_state
    assert resumed_result.total_cycles == clean_result.total_cycles
    assert (
        resumed_result.thread_end_times == clean_result.thread_end_times
    )
    assert _stack_text(resumed_sim, resumed_result) == _stack_text(
        clean_sim, clean_result
    )


def test_keystone_under_injected_fault(tmp_path):
    """A mem-spike fault (machine transform, seeded) is recorded in the
    descriptor and replayed on resume — the resumed run continues the
    same degraded experiment."""
    kind, seed = "mem-spike", 11
    machine = _machine()
    clean_sim, clean_result = _run(machine, fault_kind=kind, fault_seed=seed)
    clean_state = canon(clean_sim.state_dict())

    descriptor = cell_descriptor(
        machine, BENCH, N, SCALE,
        fault=fault_descriptor(kind, seed, 1),
        max_cycles=MAX_CYCLES,
    )
    hook = CheckpointHook(
        tmp_path / "cell.ckpt", descriptor,
        CheckpointPolicy(every_cycles=EVERY),
    )
    _run(machine, hook=hook, fault_kind=kind, fault_seed=seed)
    assert hook.n_saves >= 1

    resumed_sim, _header = resume_simulation(
        hook.path, expected_descriptor=descriptor
    )
    resumed_result = resumed_sim.run(
        max_cycles=MAX_CYCLES, on_timeout="truncate"
    )
    assert canon(resumed_sim.state_dict()) == clean_state
    assert resumed_result.total_cycles == clean_result.total_cycles
    assert _stack_text(resumed_sim, resumed_result) == _stack_text(
        clean_sim, clean_result
    )


def test_every_interval_checkpoint_resumes_to_same_end(tmp_path):
    """Not just the last save: *each* periodic checkpoint along the run
    is a valid resume point converging on the same final state."""
    machine = _machine()
    clean_sim, clean_result = _run(machine)
    clean_state = canon(clean_sim.state_dict())

    descriptor = cell_descriptor(
        machine, BENCH, N, SCALE, max_cycles=MAX_CYCLES
    )

    saved_paths = []

    class _ForkingHook(CheckpointHook):
        """Keeps every interval save instead of overwriting in place."""

        def save(self, sim, reason):
            self.path = tmp_path / f"c{len(saved_paths)}.ckpt"
            header = super().save(sim, reason)
            saved_paths.append(self.path)
            return header

    hook = _ForkingHook(
        tmp_path / "c.ckpt", descriptor,
        CheckpointPolicy(every_cycles=2_000),
    )
    _run(machine, hook=hook)
    assert len(saved_paths) >= 2

    for path in saved_paths:
        resumed_sim, _ = resume_simulation(
            path, expected_descriptor=descriptor
        )
        result = resumed_sim.run(
            max_cycles=MAX_CYCLES, on_timeout="truncate"
        )
        assert canon(resumed_sim.state_dict()) == clean_state, path
        assert result.total_cycles == clean_result.total_cycles
