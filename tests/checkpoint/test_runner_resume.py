"""BatchRunner checkpoint lifecycle: arm, keep-on-truncation, resume,
refuse-on-mismatch, unlink-on-success."""

from __future__ import annotations

import logging

from repro.checkpoint import read_header, save_checkpoint
from repro.core.rendering import render_stack
from repro.experiments.runner import BatchRunner, RunPolicy
from repro.workloads.suite import by_name

BENCH = "cholesky"
N, SCALE = 4, 0.2


def _policy(tmp_path, **kwargs):
    return RunPolicy(
        on_error="skip", checkpoint_dir=str(tmp_path), **kwargs
    )


class TestCellCheckpointLifecycle:
    def test_truncated_cell_keeps_its_checkpoint(self, tmp_path):
        runner = BatchRunner(
            policy=_policy(tmp_path, max_cycles=10_000), scale=SCALE
        )
        outcome = runner.run_cell(by_name(BENCH), N)
        assert outcome.result.mt_result.truncated
        ckpt = tmp_path / f"{BENCH}_n{N}.ckpt"
        assert ckpt.exists()
        header = read_header(ckpt)
        assert header["reason"] == "max_cycles"
        assert header["descriptor"]["benchmark"] == BENCH

    def test_clean_cell_unlinks_its_checkpoint(self, tmp_path):
        runner = BatchRunner(
            policy=_policy(tmp_path, checkpoint_every=2_000), scale=0.05
        )
        outcome = runner.run_cell(by_name(BENCH), N)
        assert not outcome.result.mt_result.truncated
        assert not (tmp_path / f"{BENCH}_n{N}.ckpt").exists()

    def test_rerun_resumes_and_matches_fresh_outcome(self, tmp_path, caplog):
        policy = _policy(tmp_path, max_cycles=10_000)
        first = BatchRunner(policy=policy, scale=SCALE).run_cell(
            by_name(BENCH), N
        )
        assert (tmp_path / f"{BENCH}_n{N}.ckpt").exists()
        with caplog.at_level(logging.INFO, "repro.experiments.runner"):
            second = BatchRunner(policy=policy, scale=SCALE).run_cell(
                by_name(BENCH), N
            )
        assert any("resuming" in r.message for r in caplog.records)
        # the resumed re-run reproduces the fresh run's stack exactly
        assert render_stack(second.result.stack) == render_stack(
            first.result.stack
        )
        assert (
            second.result.mt_result.total_cycles
            == first.result.mt_result.total_cycles
        )

    def test_mismatched_checkpoint_runs_fresh(self, tmp_path, caplog):
        """A checkpoint from a different experiment at the cell's path
        is ignored with a warning, never resumed."""
        path = tmp_path / f"{BENCH}_n{N}.ckpt"
        save_checkpoint(
            path, {"bogus": True}, {"benchmark": BENCH, "other": "config"},
            cycle=123, reason="interval",
        )
        runner = BatchRunner(policy=_policy(tmp_path), scale=0.05)
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            outcome = runner.run_cell(by_name(BENCH), N)
        assert any(
            "ignoring checkpoint" in r.message for r in caplog.records
        )
        assert outcome.status == "ok"
        assert not outcome.result.mt_result.truncated

    def test_no_checkpoint_dir_means_no_files(self, tmp_path):
        runner = BatchRunner(
            policy=RunPolicy(on_error="skip", max_cycles=10_000),
            scale=SCALE,
        )
        runner.run_cell(by_name(BENCH), N)
        assert list(tmp_path.iterdir()) == []


class TestPolicyPlumbing:
    def test_from_run_maps_checkpoint_fields(self):
        from repro.config import RunConfig

        run = RunConfig(checkpoint_every=500, checkpoint_dir="ckpts")
        policy = RunPolicy.from_run(run)
        assert policy.checkpoint_every == 500
        assert policy.checkpoint_dir == "ckpts"

    def test_policy_stays_hashable(self, tmp_path):
        """The parallel worker cache keys on the policy dataclass."""
        policy = _policy(tmp_path, checkpoint_every=100)
        assert hash(policy) == hash(
            _policy(tmp_path, checkpoint_every=100)
        )
