"""On-disk checkpoint format: layout, hashing, and load refusals."""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    config_hash,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.errors import CheckpointError

DESC = {"benchmark": "tiny", "n_threads": 2, "scale": 0.5}
STATE = {"threads": [{"tid": 0}], "cores": [{"now": 7}]}


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        header = save_checkpoint(
            path, STATE, DESC, cycle=42, reason="interval"
        )
        assert header["schema_version"] == SCHEMA_VERSION
        assert header["cycle"] == 42
        assert header["reason"] == "interval"
        assert header["config_hash"] == config_hash(DESC)
        loaded_header, state = load_checkpoint(
            path, expected_descriptor=DESC
        )
        assert loaded_header == header
        assert state == STATE

    def test_two_line_layout(self, tmp_path):
        """Header must be parseable without touching the payload line."""
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["descriptor"] == DESC
        assert json.loads(lines[1]) == STATE

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        assert read_header(path)["cycle"] == 1

    def test_overwrite_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        save_checkpoint(path, STATE, DESC, cycle=2, reason="max_cycles")
        assert read_header(path)["cycle"] == 2
        assert list(tmp_path.iterdir()) == [path]

    def test_version_stamped(self, tmp_path):
        from repro._version import repro_version

        path = tmp_path / "a.ckpt"
        header = save_checkpoint(path, STATE, DESC, cycle=1, reason="fault")
        assert header["repro_version"] == repro_version()


class TestConfigHash:
    def test_key_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_nested_descriptors(self):
        one = {"machine": {"cores": 4, "llc": 2}, "fault": None}
        two = {"fault": None, "machine": {"llc": 2, "cores": 4}}
        assert config_hash(one) == config_hash(two)


class TestRefusals:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_header(tmp_path / "nope.ckpt")

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_text("this is not a checkpoint\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            read_header(path)

    def test_json_but_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"version": 1, "cells": {}}\n')
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_header(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = tmp_path / "future.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        header, payload = path.read_text().splitlines()
        doc = json.loads(header)
        doc["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc) + "\n" + payload + "\n")
        with pytest.raises(CheckpointError, match="schema version"):
            read_header(path)

    def test_config_hash_mismatch(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        other = dict(DESC, n_threads=4)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            load_checkpoint(path, expected_descriptor=other)
        # the error names both hashes so the operator can diff configs
        with pytest.raises(CheckpointError, match=config_hash(other)):
            load_checkpoint(path, expected_descriptor=other)

    def test_missing_payload(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        header = path.read_text().splitlines()[0]
        path.write_text(header + "\n")
        with pytest.raises(CheckpointError, match="no state payload"):
            load_checkpoint(path)

    def test_corrupt_payload(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        header = path.read_text().splitlines()[0]
        path.write_text(header + "\n{broken\n")
        with pytest.raises(CheckpointError, match="corrupt checkpoint payload"):
            load_checkpoint(path)

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(path, STATE, DESC, cycle=1, reason="interval")
        header = path.read_text().splitlines()[0]
        path.write_text(header + "\n[1, 2, 3]\n")
        with pytest.raises(CheckpointError, match="not a state tree"):
            load_checkpoint(path)
