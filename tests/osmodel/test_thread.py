"""Software-thread and spin-context state."""

from __future__ import annotations

from repro.osmodel.thread import (
    BLOCKED,
    READY,
    SoftwareThread,
    SpinContext,
)
from repro.sync.primitives import LockState


class TestSoftwareThread:
    def test_initial_state(self):
        thread = SoftwareThread(3, iter(()))
        assert thread.tid == 3
        assert thread.state == READY
        assert thread.spin is None
        assert thread.end_time == -1
        assert thread.instrs == 0

    def test_counters_start_zero(self):
        thread = SoftwareThread(0, iter(()))
        assert thread.gt_spin_cycles == 0
        assert thread.gt_sync_cycles == 0
        assert thread.gt_yield_cycles == 0
        assert thread.n_yields == 0


class TestSpinContext:
    def test_lock_context(self):
        lock = LockState(0, 0x1000)
        ctx = SpinContext("lock", lock, now=500)
        assert ctx.kind == "lock"
        assert ctx.obj is lock
        assert ctx.iters == 0
        assert ctx.episode_start == 500

    def test_restart_resets_budget(self):
        lock = LockState(0, 0x1000)
        ctx = SpinContext("lock", lock, now=500)
        ctx.iters = 40
        ctx.restart(now=9_000)
        assert ctx.iters == 0
        assert ctx.episode_start == 9_000

    def test_barrier_context_records_generation(self):
        ctx = SpinContext("barrier", object(), now=0, my_generation=7)
        assert ctx.my_generation == 7
